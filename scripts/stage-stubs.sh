#!/usr/bin/env bash
# Stages the committed offline dependency stubs to /tmp/stubs, which is
# where .cargo/config.toml's [patch.crates-io] table points. A
# pre-staged /tmp/stubs (provided by the build environment) is left
# untouched; this only restores the directory when it is missing, so
# fresh containers can build the workspace without any network.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
if [ ! -e /tmp/stubs ]; then
    cp -r "$repo_root/third_party/stubs" /tmp/stubs
    echo "staged offline dependency stubs -> /tmp/stubs"
fi
