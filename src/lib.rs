//! Umbrella crate for the P3C+-MR reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs:
//! [`p3c_core`] (the algorithms), [`p3c_mapreduce`] (the execution engine),
//! [`p3c_datagen`] / [`p3c_eval`] (workloads and quality measures).

pub use p3c_bow as bow;
pub use p3c_core as core;
pub use p3c_datagen as datagen;
pub use p3c_dataset as dataset;
pub use p3c_eval as eval;
pub use p3c_linalg as linalg;
pub use p3c_mapreduce as mapreduce;
pub use p3c_stats as stats;
