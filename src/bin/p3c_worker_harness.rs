//! Worker host for the integration tests.
//!
//! Speaks the same argv contract as `p3c worker` (`worker --connect
//! HOST:PORT --id N`) but lives in the umbrella package, so `cargo test`
//! builds it automatically and the `tests/distributed_backend.rs` suite
//! can point `P3C_WORKER_BIN` at `CARGO_BIN_EXE_p3c_worker_harness`
//! without requiring a separately built CLI.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("worker") {
        eprintln!("usage: p3c_worker_harness worker --connect HOST:PORT [--id N]");
        exit(2);
    }
    let mut connect: Option<String> = None;
    let mut id = 0u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = it.next().cloned(),
            "--id" => {
                id = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--id needs an integer"))
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    let Some(addr) = connect else {
        die("worker needs --connect HOST:PORT");
    };
    if let Err(e) = p3c_suite::mapreduce::distrib::run_worker(&addr, id) {
        eprintln!("worker {id}: {e}");
        exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("p3c_worker_harness: {msg}");
    exit(2)
}
