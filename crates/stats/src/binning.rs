//! Histogram bin-count rules (paper Section 4.1.1).
//!
//! The original P3C uses Sturges' rule, which oversmooths on large data
//! sets; P3C+ switches to the Freedman–Diaconis rule under the paper's
//! simplifying assumption that each (normalized) attribute is roughly
//! uniform on `[0,1]`, i.e. `IQR = 1/2`, giving `bin_size = n^{-1/3}`.

use serde::{Deserialize, Serialize};

/// Which rule decides the number of histogram bins per attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinRule {
    /// Sturges' rule `⌈1 + log₂ n⌉` — the original P3C choice.
    Sturges,
    /// Freedman–Diaconis with the paper's `IQR = 1/2` assumption:
    /// `bin_size = 2 · (1/2) · n^{-1/3} = n^{-1/3}` ⇒ `⌈n^{1/3}⌉` bins.
    FreedmanDiaconis,
}

impl BinRule {
    /// Number of bins for a sample of size `n` on a `[0,1]` attribute.
    pub fn num_bins(self, n: usize) -> usize {
        match self {
            BinRule::Sturges => sturges_bins(n),
            BinRule::FreedmanDiaconis => freedman_diaconis_bins(n),
        }
    }
}

/// Sturges' rule: `⌈1 + log₂ n⌉` bins (at least 1).
pub fn sturges_bins(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    (1.0 + (n as f64).log2()).ceil() as usize
}

/// Freedman–Diaconis bins for a `[0,1]`-normalized attribute with the
/// paper's `IQR = 1/2` assumption: bin width `n^{-1/3}`, hence `⌈n^{1/3}⌉`
/// bins (at least 1).
pub fn freedman_diaconis_bins(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    (n as f64).powf(1.0 / 3.0).ceil() as usize
}

/// General Freedman–Diaconis rule for data with a known interquartile
/// range on a range of width `range`: bin width `2·IQR·n^{-1/3}`.
pub fn freedman_diaconis_bins_with_iqr(n: usize, iqr: f64, range: f64) -> usize {
    assert!(iqr > 0.0 && range > 0.0, "iqr and range must be positive");
    if n <= 1 {
        return 1;
    }
    let width = 2.0 * iqr * (n as f64).powf(-1.0 / 3.0);
    (range / width).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sturges_known_values() {
        assert_eq!(sturges_bins(1), 1);
        assert_eq!(sturges_bins(2), 2);
        assert_eq!(sturges_bins(1024), 11);
        assert_eq!(sturges_bins(10_000), 15); // ⌈1 + 13.29⌉
        assert_eq!(sturges_bins(1_000_000), 21);
    }

    #[test]
    fn fd_known_values() {
        assert_eq!(freedman_diaconis_bins(1), 1);
        assert_eq!(freedman_diaconis_bins(8), 2);
        assert_eq!(freedman_diaconis_bins(1_000), 10);
        assert_eq!(freedman_diaconis_bins(1_000_000), 100);
    }

    #[test]
    fn fd_outgrows_sturges_on_big_data() {
        // The motivation of Section 4.1.1: on large n, FD resolves far more
        // structure than Sturges.
        for &n in &[100_000usize, 1_000_000, 10_000_000] {
            assert!(freedman_diaconis_bins(n) > 2 * sturges_bins(n), "n={n}");
        }
    }

    #[test]
    fn general_fd_reduces_to_paper_simplification() {
        // IQR = 1/2 on range 1 reproduces the simplified rule.
        for &n in &[10usize, 100, 5_000, 250_047] {
            assert_eq!(
                freedman_diaconis_bins_with_iqr(n, 0.5, 1.0),
                freedman_diaconis_bins(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn rules_monotone_in_n() {
        let mut prev_s = 0;
        let mut prev_f = 0;
        for &n in &[1usize, 10, 100, 1_000, 10_000, 100_000] {
            let s = sturges_bins(n);
            let f = freedman_diaconis_bins(n);
            assert!(s >= prev_s && f >= prev_f);
            prev_s = s;
            prev_f = f;
        }
    }

    #[test]
    fn enum_dispatch() {
        assert_eq!(BinRule::Sturges.num_bins(1024), 11);
        assert_eq!(BinRule::FreedmanDiaconis.num_bins(1_000), 10);
    }
}
