//! Descriptive statistics: medians, dimension-wise medians, IQR, moments.
//!
//! The MVB (minimum volume ball) outlier detector of Section 4.2.2 is built
//! entirely from medians: the ball center is the dimension-wise median of a
//! cluster's points and its radius the median of the distances to that
//! center; the MapReduce variant (Section 5.5) additionally takes medians
//! *across split-local estimates* in the reducer.

/// Median of a slice (destructive on a copy; `select_nth_unstable`-based).
///
/// Even-length inputs average the two middle order statistics.
/// Returns `None` on empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    Some(median_in_place(&mut v))
}

/// Median that consumes its scratch buffer (avoids the copy when the caller
/// already owns the data).
pub fn median_in_place(v: &mut [f64]) -> f64 {
    assert!(!v.is_empty());
    let n = v.len();
    let mid = n / 2;
    let (_, m, _) = v.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let hi = *m;
    if n % 2 == 1 {
        hi
    } else {
        // Lower middle is the max of the left partition.
        let lo = v[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lo + hi)
    }
}

/// Dimension-wise median `Md_d(X)` of a set of d-dimensional points
/// (paper Section 5.5): component `j` of the result is the median of the
/// j-th coordinates. Returns `None` on empty input.
pub fn dimensionwise_median(points: &[&[f64]]) -> Option<Vec<f64>> {
    let first = points.first()?;
    let d = first.len();
    let mut out = Vec::with_capacity(d);
    let mut scratch = Vec::with_capacity(points.len());
    for j in 0..d {
        scratch.clear();
        scratch.extend(points.iter().map(|p| p[j]));
        out.push(median_in_place(&mut scratch));
    }
    Some(out)
}

/// First and third quartiles (linear-interpolated order statistics).
pub fn quartiles(values: &[f64]) -> Option<(f64, f64)> {
    if values.len() < 2 {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some((q(0.25), q(0.75)))
}

/// Interquartile range (Q3 − Q1) using the linearly interpolated
/// quartiles of [`quartiles`] (the "R-7" estimate at p·(n−1); not
/// nearest-rank, which would snap to sample values).
pub fn iqr(values: &[f64]) -> Option<f64> {
    quartiles(values).map(|(q1, q3)| q3 - q1)
}

/// Numerically stable online mean/variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation (square root of [`OnlineMoments::variance`]).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another accumulator (Chan's parallel formula).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_is_order_invariant() {
        let a = [5.0, 9.0, 1.0, 7.0, 3.0];
        let mut b = a;
        b.reverse();
        assert_eq!(median(&a), median(&b));
    }

    #[test]
    fn dimensionwise_median_example() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 0.0]];
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let m = dimensionwise_median(&refs).unwrap();
        assert_eq!(m, vec![1.0, 10.0]);
    }

    #[test]
    fn dimensionwise_median_empty() {
        let refs: Vec<&[f64]> = vec![];
        assert!(dimensionwise_median(&refs).is_none());
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let v: Vec<f64> = (0..101).map(|i| i as f64 / 100.0).collect();
        let r = iqr(&v).unwrap();
        assert!((r - 0.5).abs() < 1e-12, "iqr = {r}");
    }

    #[test]
    fn iqr_requires_two_values() {
        assert!(iqr(&[1.0]).is_none());
        assert!(iqr(&[]).is_none());
        assert!(quartiles(&[1.0]).is_none());
    }

    #[test]
    fn quartiles_interpolate_between_order_statistics() {
        // Three points: quartile indices fall at 0.25·2 = 0.5 and
        // 0.75·2 = 1.5, *between* order statistics. Nearest-rank would
        // return sample values (10 or 20 / 20 or 40); linear
        // interpolation gives 15 and 30, so IQR = 15.
        let v = [10.0, 20.0, 40.0];
        let (q1, q3) = quartiles(&v).unwrap();
        assert!((q1 - 15.0).abs() < 1e-12, "q1 = {q1}");
        assert!((q3 - 30.0).abs() < 1e-12, "q3 = {q3}");
        assert!((iqr(&v).unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn quartiles_of_grid() {
        let v: Vec<f64> = (0..101).map(|i| i as f64 / 100.0).collect();
        let (q1, q3) = quartiles(&v).unwrap();
        assert!((q1 - 0.25).abs() < 1e-12);
        assert!((q3 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = OnlineMoments::new();
        for &x in &data {
            m.push(x);
        }
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        // Two-pass sample variance: Σ(x−5)²/7 = 32/7.
        assert!((m.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for (i, &x) in data.iter().enumerate() {
            if i < 37 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = OnlineMoments::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineMoments::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineMoments::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }
}
