//! The Poisson support test of the cluster-core generation step.
//!
//! Equation 1 of the paper asks whether the observed support of a
//! (p+1)-signature is *significantly larger* than its expected support
//! under the uniformity assumption. The expected support plays the role of
//! the Poisson rate λ; the test rejects when `P(X ≥ observed | λ) < α`.
//!
//! Two evaluation strategies are provided:
//!
//! * **exact** — the tail probability through the regularized incomplete
//!   gamma function (`P(X ≥ k) = P(k, λ)` for integer k ≥ 1);
//! * **Gaussian σ-units** — the paper's own fix (end of Section 7.4.2) for
//!   thresholds like `1e-140` that underflow every f64 probability: the
//!   Poisson is approximated by `N(λ, √λ)` and the observation is compared
//!   in standard-deviation units against `z = Φ⁻¹(1 − α)`.
//!
//! [`PoissonTest`] precomputes `z(α)` once and uses the exact tail for
//! moderate thresholds, switching to σ-units whenever the exact
//! computation would be numerically meaningless — mirroring the paper.

use crate::normal::Normal;
use crate::special::gamma_p;
use serde::{Deserialize, Serialize};

/// Below this α the exact tail computation is abandoned for σ-units.
/// `1e-12` keeps a two-decade safety margin above f64's relative-epsilon
/// cliff near `1e-16` while covering every practically exact regime.
const EXACT_ALPHA_FLOOR: f64 = 1e-12;

/// A one-sided Poisson significance test at level α.
///
/// ```
/// use p3c_stats::PoissonTest;
///
/// let test = PoissonTest::new(1e-6);
/// // The paper's Figure 2 example: support 10 vs expectation 1.
/// assert!(test.significantly_larger(10.0, 1.0));
/// assert!(!test.significantly_larger(2.0, 1.0));
/// // Extreme thresholds work through the σ-unit transformation.
/// let strict = PoissonTest::new(1e-140);
/// assert!(strict.significantly_larger(1_000.0, 100.0));
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PoissonTest {
    alpha: f64,
    /// Precomputed Φ⁻¹(1 − α) for the σ-unit path.
    z_alpha: f64,
}

impl PoissonTest {
    /// Creates the test; α may be as small as `1e-300`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        Self {
            alpha,
            z_alpha: Normal::isf(alpha),
        }
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The σ-unit threshold `z(α)`.
    pub fn z_alpha(&self) -> f64 {
        self.z_alpha
    }

    /// Exact upper-tail probability `P(X ≥ k | λ)` for a Poisson variable.
    ///
    /// Uses the identity `P(X ≥ k) = P(k, λ)` (regularized lower incomplete
    /// gamma) for `k ≥ 1`; `k ≤ 0` has probability 1.
    pub fn tail_prob_exact(observed: f64, lambda: f64) -> f64 {
        assert!(lambda >= 0.0, "lambda must be nonnegative");
        let k = observed.ceil();
        if k <= 0.0 {
            return 1.0;
        }
        if lambda == 0.0 {
            return 0.0;
        }
        gamma_p(k, lambda)
    }

    /// Gaussian-approximated upper-tail probability via `N(λ, √λ)`.
    pub fn tail_prob_gauss(observed: f64, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return if observed > 0.0 { 0.0 } else { 1.0 };
        }
        Normal::sf((observed - lambda) / lambda.sqrt())
    }

    /// The observation expressed in standard deviations above λ.
    pub fn sigma_units(observed: f64, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return if observed > 0.0 { f64::INFINITY } else { 0.0 };
        }
        (observed - lambda) / lambda.sqrt()
    }

    /// The paper's `observed >_p expected` predicate: is `observed`
    /// significantly larger than the expected support `lambda`?
    ///
    /// For moderate α the exact Poisson tail decides; for α below
    /// `1e-12` — where cumulative probabilities are not representable —
    /// the σ-unit comparison decides, exactly as the paper prescribes.
    pub fn significantly_larger(&self, observed: f64, lambda: f64) -> bool {
        if observed <= lambda {
            return false;
        }
        if lambda <= 0.0 {
            // Any support over an expectation of zero is infinitely surprising.
            return observed > 0.0;
        }
        if self.alpha >= EXACT_ALPHA_FLOOR {
            Self::tail_prob_exact(observed, lambda) < self.alpha
        } else {
            Self::sigma_units(observed, lambda) > self.z_alpha
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tail_matches_hand_computed() {
        // P(X >= 2 | λ=1) = 1 - e^{-1}(1 + 1) ≈ 0.26424.
        let p = PoissonTest::tail_prob_exact(2.0, 1.0);
        assert!((p - (1.0 - 2.0 * (-1.0f64).exp())).abs() < 1e-12);
        // P(X >= 1 | λ) = 1 - e^{-λ}.
        for &l in &[0.5, 2.0, 5.0] {
            let p = PoissonTest::tail_prob_exact(1.0, l);
            assert!((p - (1.0 - (-l).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn papers_redundancy_example_passes() {
        // Section 4.2.1: Supp(S3) = 10 vs expected 1 at α = 1e-6 must be
        // significant, as must Supp(Si) = 50 vs expected 1.
        let t = PoissonTest::new(1e-6);
        assert!(t.significantly_larger(10.0, 1.0));
        assert!(t.significantly_larger(50.0, 1.0));
    }

    #[test]
    fn insignificant_small_deviation() {
        let t = PoissonTest::new(0.01);
        // 105 observed vs λ=100: z ≈ 0.5 — clearly not significant.
        assert!(!t.significantly_larger(105.0, 100.0));
        // But a huge deviation is.
        assert!(t.significantly_larger(200.0, 100.0));
    }

    #[test]
    fn observed_below_expected_never_significant() {
        let t = PoissonTest::new(0.5);
        assert!(!t.significantly_larger(99.0, 100.0));
        assert!(!t.significantly_larger(100.0, 100.0));
    }

    #[test]
    fn power_grows_with_scale_at_fixed_relative_deviation() {
        // The Figure 1 phenomenon: a constant 1% relative deviation becomes
        // significant once the data set is large enough.
        let t = PoissonTest::new(0.01);
        assert!(!t.significantly_larger(1.01 * 1_000.0, 1_000.0));
        assert!(t.significantly_larger(1.01 * 100_000.0, 100_000.0));
    }

    #[test]
    fn extreme_thresholds_are_usable() {
        // α = 1e-140 (Figure 5's leftmost sweep value) must neither panic
        // nor collapse to always/never significant.
        let t = PoissonTest::new(1e-140);
        let lambda: f64 = 100.0;
        // 26 sigma above: z(1e-140) ≈ 25.2, so 100 + 26·10 = 360 passes...
        assert!(t.significantly_larger(lambda + 26.0 * lambda.sqrt(), lambda));
        // ...and 24 sigma above does not.
        assert!(!t.significantly_larger(lambda + 24.0 * lambda.sqrt(), lambda));
    }

    #[test]
    fn zero_lambda_edge_cases() {
        let t = PoissonTest::new(0.01);
        assert!(t.significantly_larger(1.0, 0.0));
        assert!(!t.significantly_larger(0.0, 0.0));
        assert_eq!(PoissonTest::tail_prob_exact(0.0, 5.0), 1.0);
    }

    #[test]
    fn gauss_approximates_exact_for_large_lambda() {
        let lambda = 10_000.0;
        let observed = 10_300.0; // 3 sigma
        let exact = PoissonTest::tail_prob_exact(observed, lambda);
        let gauss = PoissonTest::tail_prob_gauss(observed, lambda);
        // Within 15% relative for a 3σ event at λ=1e4.
        assert!(
            (exact - gauss).abs() / exact < 0.15,
            "exact={exact} gauss={gauss}"
        );
    }

    #[test]
    fn sigma_units_is_linear_in_observed() {
        let s1 = PoissonTest::sigma_units(110.0, 100.0);
        let s2 = PoissonTest::sigma_units(120.0, 100.0);
        assert!((s2 - 2.0 * s1).abs() < 1e-12);
        assert!((s1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_alpha() {
        // Stricter alpha ⇒ fewer rejections.
        let loose = PoissonTest::new(1e-2);
        let strict = PoissonTest::new(1e-30);
        let lambda: f64 = 1_000.0;
        let observed = lambda + 6.0 * lambda.sqrt();
        assert!(loose.significantly_larger(observed, lambda));
        assert!(!strict.significantly_larger(observed, lambda));
    }
}
