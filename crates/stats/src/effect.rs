//! Cohen's d effect size for cluster-core supports (paper Section 4.1.2).
//!
//! The Poisson test only measures *significance*; on huge data sets even a
//! 1% relative deviation is significant (Figure 1). P3C+ therefore also
//! requires the *strength* of the deviation to exceed a threshold θ_cc.
//! With the paper's choice σ = Supp_exp, Cohen's d_cc (Equation 4) reduces
//! to the relative deviation of the observed from the expected support:
//!
//! ```text
//! d_cc = (Supp − Supp_exp) / Supp_exp
//! ```

/// Cohen's d_cc of an observed support against its expectation (Equation 4
/// with σ = `expected`): the relative deviation `(observed − expected) /
/// expected`.
///
/// An expectation of zero means any positive support is an infinitely
/// strong effect; we return `f64::INFINITY` in that case (and `0.0` when
/// the observation is also zero).
pub fn cohens_d_cc(observed: f64, expected: f64) -> f64 {
    assert!(expected >= 0.0, "expected support must be nonnegative");
    if expected == 0.0 {
        return if observed > 0.0 { f64::INFINITY } else { 0.0 };
    }
    (observed - expected) / expected
}

/// The P3C+ combined acceptance predicate for effect size: `θ_cc ≤ d_cc`.
pub fn effect_is_strong(observed: f64, expected: f64, theta_cc: f64) -> bool {
    cohens_d_cc(observed, expected) >= theta_cc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_deviation() {
        assert!((cohens_d_cc(150.0, 100.0) - 0.5).abs() < 1e-15);
        assert!((cohens_d_cc(100.0, 100.0)).abs() < 1e-15);
        assert!((cohens_d_cc(50.0, 100.0) + 0.5).abs() < 1e-15);
    }

    #[test]
    fn threshold_semantics_match_paper() {
        // Paper's tuned θ_cc = 0.35: a 35%+ excess is a strong effect.
        assert!(effect_is_strong(135.0, 100.0, 0.35));
        assert!(!effect_is_strong(134.0, 100.0, 0.35));
    }

    #[test]
    fn scale_invariance() {
        // Unlike the Poisson test, the effect size is invariant under
        // scaling both observed and expected — the whole point of adding it.
        let small = cohens_d_cc(101.0, 100.0);
        let big = cohens_d_cc(101_000.0, 100_000.0);
        assert!((small - big).abs() < 1e-12);
    }

    #[test]
    fn zero_expectation() {
        assert_eq!(cohens_d_cc(5.0, 0.0), f64::INFINITY);
        assert_eq!(cohens_d_cc(0.0, 0.0), 0.0);
        assert!(effect_is_strong(1.0, 0.0, 100.0));
    }
}
