//! Standard normal distribution: pdf, cdf, survival, and inverse cdf.
//!
//! The inverse cdf is the workhorse behind the paper's fix for extreme
//! Poisson thresholds (Section 7.4.2): a threshold like `1e-140` cannot be
//! compared against a cumulative Poisson probability in `f64`, but it *can*
//! be converted into a number of standard deviations `z = Φ⁻¹(1 − α)` and
//! compared in σ-units. `Normal::isf` supports α down to ~1e-300.

use crate::special::erfc;

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Normal;

impl Normal {
    /// Probability density at `x`.
    pub fn pdf(x: f64) -> f64 {
        (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    /// Cumulative distribution `P(X ≤ x)` (uses `erfc` for tail accuracy).
    pub fn cdf(x: f64) -> f64 {
        0.5 * erfc(-x / std::f64::consts::SQRT_2)
    }

    /// Survival function `P(X > x)`, accurate far into the upper tail.
    pub fn sf(x: f64) -> f64 {
        0.5 * erfc(x / std::f64::consts::SQRT_2)
    }

    /// Inverse cumulative distribution (quantile) function.
    ///
    /// Peter Acklam's rational approximation refined by one Halley step of
    /// Newton's method; absolute error below `1e-12` across `(0, 1)`.
    pub fn inv_cdf(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "inv_cdf requires p in (0,1), got {p}");
        // Coefficients for the central and tail rational approximations.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.024_25;
        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement step. For p astronomically close to 0 or 1
        // the cdf saturates; the raw approximation is already good there.
        let e = Self::cdf(x) - p;
        if e == 0.0 {
            return x;
        }
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        if u.is_finite() {
            x - u / (1.0 + x * u / 2.0)
        } else {
            x
        }
    }

    /// Inverse survival function: the z with `P(X > z) = alpha`.
    ///
    /// For `alpha < ~1e-16` the complementary path through `inv_cdf(1-α)`
    /// would collapse; instead we use the symmetric identity
    /// `isf(α) = -inv_cdf(α)`, which stays accurate down to `1e-300`.
    pub fn isf(alpha: f64) -> f64 {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "isf requires alpha in (0,1), got {alpha}"
        );
        -Self::inv_cdf(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((Normal::cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((Normal::cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
        assert!((Normal::cdf(-1.0) + Normal::cdf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_peak() {
        assert!((Normal::pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
    }

    #[test]
    fn inv_cdf_roundtrip() {
        for &p in &[1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-10] {
            let x = Normal::inv_cdf(p);
            assert!((Normal::cdf(x) - p).abs() < 1e-9, "p={p}, x={x}");
        }
    }

    #[test]
    fn inv_cdf_known_quantiles() {
        assert!(Normal::inv_cdf(0.5).abs() < 1e-12);
        assert!((Normal::inv_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((Normal::inv_cdf(0.995) - 2.575_829_303_548_901).abs() < 1e-8);
    }

    #[test]
    fn isf_handles_extreme_thresholds() {
        // These are the Figure 5 sweep values; all must map to finite z.
        for &alpha in &[1e-3, 1e-5, 1e-20, 1e-40, 1e-60, 1e-80, 1e-100, 1e-140] {
            let z = Normal::isf(alpha);
            assert!(z.is_finite() && z > 0.0, "alpha={alpha} -> z={z}");
            // sf(z) should approximately reproduce alpha (log-scale check).
            let back = Normal::sf(z);
            assert!(
                (back.ln() - alpha.ln()).abs() < 1e-3 * alpha.ln().abs().max(1.0),
                "alpha={alpha} back={back}"
            );
        }
    }

    #[test]
    fn isf_is_monotone_decreasing_in_alpha() {
        let zs: Vec<f64> = [1e-2, 1e-5, 1e-10, 1e-50, 1e-140]
            .iter()
            .map(|&a| Normal::isf(a))
            .collect();
        for w in zs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // z for 1e-140 is around 25.2 standard deviations.
        assert!(zs[4] > 25.0 && zs[4] < 25.5, "z(1e-140) = {}", zs[4]);
    }

    #[test]
    fn sf_is_complement_of_cdf() {
        for &x in &[-3.0, -1.0, 0.0, 0.5, 2.0, 4.0] {
            assert!((Normal::sf(x) + Normal::cdf(x) - 1.0).abs() < 1e-12);
        }
    }
}
