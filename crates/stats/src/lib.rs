//! Statistical machinery for the P3C+/P3C+-MR reproduction.
//!
//! The paper's clustering model is driven by a handful of statistical
//! devices, each implemented in its own module:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, and error
//!   functions (the numerical bedrock for every distribution below),
//! * [`normal`] — standard normal pdf/cdf and the inverse cdf used to turn
//!   extreme Poisson thresholds (down to `1e-140`) into σ-unit tests, the
//!   trick described at the end of the paper's Section 7.4.2,
//! * [`chi2`] — the χ² distribution, its critical values (outlier
//!   detection, Section 4.2.2) and the uniformity goodness-of-fit test
//!   (relevant attribute detection, Section 3.2.2),
//! * [`poisson`] — the Poisson support test of the cluster-core generation
//!   step (Equation 1), in exact and Gaussian-approximated forms,
//! * [`effect`] — Cohen's d_cc effect size (Equation 4) that P3C+ adds on
//!   top of the significance test (Section 4.1.2),
//! * [`binning`] — Sturges' rule (original P3C) and the Freedman–Diaconis
//!   rule (P3C+, Section 4.1.1),
//! * [`histogram`] — the equi-width `[0,1]` histogram with the paper's bin
//!   indexing `max(1, ⌈m·x⌉)` (Equation 8),
//! * [`descriptive`] — medians, dimension-wise medians, IQR and online
//!   moments used by the MVB estimator and the data generator.
#![warn(missing_docs)]

pub mod binning;
pub mod chi2;
pub mod descriptive;
pub mod effect;
pub mod histogram;
pub mod normal;
pub mod poisson;
pub mod special;

pub use binning::{freedman_diaconis_bins, sturges_bins, BinRule};
pub use chi2::ChiSquared;
pub use effect::cohens_d_cc;
pub use histogram::{bin_index, bin_rows, BinIndexer, Histogram};
pub use normal::Normal;
pub use poisson::PoissonTest;
