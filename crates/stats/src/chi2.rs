//! The χ² distribution and the uniformity goodness-of-fit test.
//!
//! Two P3C steps depend on it:
//!
//! * **Relevant attribute detection** (paper Section 3.2.2): the histogram
//!   of an attribute is tested against the uniform distribution; attributes
//!   whose histograms deviate significantly are candidates for relevant
//!   intervals.
//! * **Outlier detection** (Section 4.2.2): a cluster member is an outlier
//!   if its squared Mahalanobis distance exceeds the critical value of the
//!   χ² distribution with `|A_rel|` degrees of freedom at `α = 0.001`.

use crate::special::{gamma_p, gamma_q};

/// χ² distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates the distribution; `k` must be positive.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0, "χ² requires k > 0, got {k}");
        Self { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k / 2.0, x / 2.0)
        }
    }

    /// Survival function `P(X > x)` — the p-value of an observed statistic.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.k / 2.0, x / 2.0)
        }
    }

    /// Critical value: the `x` with `P(X > x) = alpha`.
    ///
    /// Solved by bisection on the monotone survival function; accuracy
    /// ~1e-10, plenty for threshold comparisons.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        // Bracket the root. sf is decreasing in x.
        let mut lo = 0.0f64;
        let mut hi = self.k.max(1.0);
        while self.sf(hi) > alpha {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.sf(mid) > alpha {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Result of a χ² goodness-of-fit test against the uniform distribution.
#[derive(Debug, Clone, Copy)]
pub struct UniformityTest {
    /// The χ² statistic Σ (observed − expected)² / expected.
    pub statistic: f64,
    /// Degrees of freedom (`bins − 1`).
    pub dof: usize,
    /// p-value of the statistic.
    pub p_value: f64,
}

impl UniformityTest {
    /// Whether uniformity is rejected at significance level `alpha`
    /// (i.e. the attribute is *non-uniform* and thus interesting).
    pub fn is_non_uniform(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// χ² goodness-of-fit test of histogram `counts` against uniformity.
///
/// `counts` are the per-bin supports of one attribute's histogram. Returns
/// `None` for histograms with fewer than two bins or zero total support,
/// where the test is undefined (callers treat those as uniform).
pub fn chi2_uniformity_test(counts: &[f64]) -> Option<UniformityTest> {
    if counts.len() < 2 {
        return None;
    }
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let expected = total / counts.len() as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| (c - expected) * (c - expected) / expected)
        .sum();
    let dof = counts.len() - 1;
    let p_value = ChiSquared::new(dof as f64).sf(statistic);
    Some(UniformityTest {
        statistic,
        dof,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        // χ²(1): cdf(1.0) ≈ 0.6826894921 (the 1σ normal mass).
        let c1 = ChiSquared::new(1.0);
        assert!((c1.cdf(1.0) - 0.682_689_492_137_086).abs() < 1e-10);
        // χ²(2) is Exp(1/2): cdf(x) = 1 - e^{-x/2}.
        let c2 = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((c2.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // Classic table values (alpha = 0.05).
        let cases = [(1.0, 3.841), (2.0, 5.991), (5.0, 11.070), (10.0, 18.307)];
        for &(k, expect) in &cases {
            let cv = ChiSquared::new(k).critical_value(0.05);
            assert!((cv - expect).abs() < 5e-3, "k={k}: {cv} vs {expect}");
        }
        // alpha = 0.001 with 10 dof — the paper's outlier detection setting.
        let cv = ChiSquared::new(10.0).critical_value(0.001);
        assert!((cv - 29.588).abs() < 5e-3, "{cv}");
    }

    #[test]
    fn critical_value_roundtrips_through_sf() {
        for &k in &[1.0, 3.0, 7.0, 50.0] {
            for &alpha in &[0.1, 0.01, 0.001] {
                let cv = ChiSquared::new(k).critical_value(alpha);
                let p = ChiSquared::new(k).sf(cv);
                assert!((p - alpha).abs() < 1e-9, "k={k} alpha={alpha}");
            }
        }
    }

    #[test]
    fn uniform_histogram_not_rejected() {
        let counts = vec![100.0; 10];
        let t = chi2_uniformity_test(&counts).unwrap();
        assert!(t.statistic.abs() < 1e-12);
        assert!((t.p_value - 1.0).abs() < 1e-9);
        assert!(!t.is_non_uniform(0.001));
    }

    #[test]
    fn spiked_histogram_rejected() {
        let mut counts = vec![100.0; 10];
        counts[3] = 1000.0;
        let t = chi2_uniformity_test(&counts).unwrap();
        assert!(t.is_non_uniform(0.001));
        assert!(t.p_value < 1e-12);
    }

    #[test]
    fn small_fluctuations_not_rejected() {
        let counts = vec![
            98.0, 103.0, 99.0, 101.0, 97.0, 102.0, 100.0, 100.0, 99.0, 101.0,
        ];
        let t = chi2_uniformity_test(&counts).unwrap();
        assert!(!t.is_non_uniform(0.001), "p={}", t.p_value);
    }

    #[test]
    fn degenerate_histograms_return_none() {
        assert!(chi2_uniformity_test(&[]).is_none());
        assert!(chi2_uniformity_test(&[5.0]).is_none());
        assert!(chi2_uniformity_test(&[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn sf_cdf_complement() {
        let c = ChiSquared::new(4.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            assert!((c.sf(x) + c.cdf(x) - 1.0).abs() < 1e-12);
        }
    }
}
