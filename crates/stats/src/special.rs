//! Special functions: log-gamma, regularized incomplete gamma, erf/erfc.
//!
//! These are classic numerical-recipes style implementations with accuracy
//! around `1e-12` over the ranges this workspace uses. They back the χ² and
//! Poisson distributions in the sibling modules.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut sum = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        sum += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + sum.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "gamma_p domain: a>0, x>=0 (a={a}, x={x})"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "gamma_q domain: a>0, x>=0 (a={a}, x={x})"
    );
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of P(a,x), converges quickly for x < a+1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a,x) (modified Lentz), for x ≥ a+1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function, via the regularized incomplete gamma (`erf(x) = P(1/2, x²)`).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function `1 − erf(x)`, accurate in the far tail.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        gamma_q(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[
            (0.5, 0.3),
            (2.0, 1.0),
            (5.0, 10.0),
            (30.0, 25.0),
            (100.0, 120.0),
        ] {
            let s = gamma_p(a, x) + gamma_q(a, x);
            assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} sum={s}");
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_q_tail_is_small_but_positive() {
        let q = gamma_q(10.0, 60.0);
        assert!(q > 0.0 && q < 1e-15);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-10);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-10);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_far_tail_has_precision() {
        // erfc(10) ≈ 2.088e-45 — must not underflow to 0 via 1-erf.
        let v = erfc(10.0);
        assert!(v > 1e-46 && v < 1e-44, "erfc(10) = {v}");
    }
}
