//! Equi-width histograms on `[0,1]` with the paper's bin indexing.
//!
//! Equation 8 assigns a value `x` to bin `max(1, ⌈m·x⌉)` (1-based). We keep
//! the same boundary semantics — bin edges belong to the *lower* bin, zero
//! belongs to bin 1 — but expose 0-based indices to Rust callers.

use serde::{Deserialize, Serialize};

/// 0-based bin index of `x ∈ [0,1]` in an `m`-bin equi-width histogram,
/// following the paper's `max(1, ⌈m·x⌉)` convention (so `x = i/m` falls in
/// bin `i-1`, and `x = 0` in bin 0). Values outside `[0,1]` are clamped.
#[inline]
pub fn bin_index(x: f64, m: usize) -> usize {
    BinIndexer::new(m).index(x)
}

/// Precomputed state for repeated [`bin_index`] calls over one histogram
/// geometry: the scan-loop form with the `m → f64` conversions hoisted
/// out of the per-value loop and a branchless index conversion (clamp +
/// truncating cast + bool bump emulating `ceil`, instead of the `ceil`
/// libm call — semantics are identical, including NaN and out-of-range
/// clamping, see the unit tests).
#[derive(Debug, Clone, Copy)]
pub struct BinIndexer {
    /// Bin count as f64 (the inverse bin width on `[0,1]`).
    mf: f64,
}

impl BinIndexer {
    /// Indexer for an `m ≥ 1` bin histogram.
    #[inline]
    pub fn new(m: usize) -> Self {
        debug_assert!(m >= 1);
        Self { mf: m as f64 }
    }

    /// Branchless [`bin_index`] of `x` (same clamping semantics).
    #[inline]
    pub fn index(&self, x: f64) -> usize {
        // Clamp the scaled value into [0, m] first (f64::max/min compile
        // to maxsd/minsd and also squash NaN to 0), then emulate ceil:
        // floor via the truncating cast, plus one when fractional.
        let t = (self.mf * x).max(0.0).min(self.mf);
        let i = t as usize;
        let one_based = i + ((i as f64) < t) as usize;
        // max(1) maps both the x ≤ 0 clamp (t = 0) and exact zero into
        // bin 1 (1-based), per the paper's max(1, ⌈m·x⌉).
        one_based.max(1) - 1
    }

    /// The scan-kernel form of [`BinIndexer::index`]: identical result
    /// for every `f64` input (pinned by a unit test), one conversion
    /// instead of two. `max(1, ⌈t⌉) − 1` maps `t ∈ (k, k+1] → k` and
    /// `t = 0 → 0`; stepping a positive `t` one ulp down and flooring
    /// computes the same map directly — clamped `t` is finite and
    /// non-negative, so the bit decrement is exactly `nextafter(t, -∞)`
    /// (it also crosses from `k` into `(k−1, k)` at exact bin edges,
    /// which is what sends edges to the lower bin), and the truncating
    /// cast is a floor for non-negative values. Used by [`bin_rows`],
    /// where the back-conversion's latency dominates the per-value
    /// chain; [`BinIndexer::index`] stays the readable reference.
    #[inline]
    pub fn index_scan(&self, x: f64) -> usize {
        let t = (self.mf * x).max(0.0).min(self.mf);
        f64::from_bits(t.to_bits() - ((t > 0.0) as u64)) as usize
    }
}

/// Bins a row-major block of values into one histogram per attribute in
/// a single streaming pass: `data` holds rows of `stride` values, and
/// value `j` of each row lands in `hists[j]` (rows must be at least as
/// wide as `hists`; `stride ≥ hists.len()`). The [`BinIndexer`] state is
/// hoisted per attribute, the row is read once (each cache line is
/// touched a single time, unlike a per-attribute strided re-scan), and
/// consecutive increments hit different histograms so the
/// store-to-load chains of repeated bins interleave. Counts are exact
/// `+1.0` increments — bit-identical to calling [`Histogram::add`]
/// value by value in any order.
pub fn bin_rows(hists: &mut [Histogram], stride: usize, data: &[f64]) {
    assert!(stride >= hists.len(), "rows narrower than histogram set");
    assert_eq!(data.len() % stride.max(1), 0, "partial trailing row");
    let indexers: Vec<BinIndexer> = hists
        .iter()
        .map(|h| BinIndexer::new(h.num_bins()))
        .collect();
    for row in data.chunks_exact(stride.max(1)) {
        for ((hist, indexer), &v) in hists.iter_mut().zip(&indexers).zip(row) {
            // `index_scan` already returns < num_bins; the redundant
            // clamp makes that provable so the increment needs no
            // bounds check (a cmov instead of a cmp+branch per value).
            let last = hist.counts.len() - 1;
            hist.counts[indexer.index_scan(v).min(last)] += 1.0;
        }
    }
}

/// A histogram over `[0,1]` with `m` equal-width bins and f64 counts
/// (counts are f64 so that partial/weighted histograms merge exactly like
/// the MapReduce jobs do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<f64>,
}

impl Histogram {
    /// Empty histogram with `m ≥ 1` bins.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "histogram needs at least one bin");
        Self {
            counts: vec![0.0; m],
        }
    }

    /// Rebuilds a histogram from persisted per-bin counts (snapshot
    /// restore). The counts are taken verbatim — exactly what
    /// [`counts`](Histogram::counts) returned when it was saved.
    ///
    /// # Panics
    /// Panics on an empty counts vector (a histogram has ≥ 1 bin).
    pub fn from_counts(counts: Vec<f64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        Self { counts }
    }

    /// Builds a histogram directly from values.
    pub fn from_values(values: impl IntoIterator<Item = f64>, m: usize) -> Self {
        let mut h = Self::new(m);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation with weight 1.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Adds one observation with the given weight.
    #[inline]
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        let i = bin_index(x, self.counts.len());
        self.counts[i] += w;
    }

    /// Adds every value with weight 1 — the scan-kernel form of
    /// [`Histogram::add`], with the [`BinIndexer`] state hoisted out of
    /// the per-value loop. Counts are bit-identical to repeated `add`.
    pub fn add_all(&mut self, values: impl IntoIterator<Item = f64>) {
        let indexer = BinIndexer::new(self.counts.len());
        for v in values {
            self.counts[indexer.index(v)] += 1.0;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Count of bin `i`.
    pub fn count(&self, i: usize) -> f64 {
        self.counts[i]
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram (same bin count) into this one —
    /// the reducer side of the histogram-building MapReduce job.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging histograms of different bin counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Subtracts another histogram (same bin count) bin-by-bin — the
    /// retract counterpart of [`Histogram::merge`] used by the
    /// incremental service's delta maintenance. Unit-weight counts are
    /// integer-valued f64 sums far below 2⁵³, where addition and
    /// subtraction are exact, so `h.merge(&d); h.subtract(&d)` restores
    /// `h` bit-for-bit.
    pub fn subtract(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "subtracting histograms of different bin counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
    }

    /// The `[lo, hi]` value range covered by bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let m = self.counts.len() as f64;
        (i as f64 / m, (i as f64 + 1.0) / m)
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        1.0 / self.counts.len() as f64
    }

    /// Index of the fullest bin, breaking ties toward the lower index;
    /// `None` when the histogram is empty of mass.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in self.counts.iter().enumerate() {
            match best {
                Some((_, b)) if c <= b => {}
                _ => best = Some((i, c)),
            }
        }
        best.filter(|&(_, c)| c > 0.0).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bin_indexing() {
        // m = 10: x=0 → bin 0; x=0.05 → ⌈0.5⌉=1 → bin 0; x=0.1 → bin 0
        // (upper edge belongs to lower bin); x=0.1000001 → bin 1; x=1 → bin 9.
        assert_eq!(bin_index(0.0, 10), 0);
        assert_eq!(bin_index(0.05, 10), 0);
        assert_eq!(bin_index(0.1, 10), 0);
        assert_eq!(bin_index(0.100_000_1, 10), 1);
        assert_eq!(bin_index(0.95, 10), 9);
        assert_eq!(bin_index(1.0, 10), 9);
    }

    #[test]
    fn branchless_index_matches_ceil_formula() {
        // The previous implementation, kept as the semantic reference.
        let ceil_form = |x: f64, m: usize| -> usize {
            let raw = (m as f64 * x).ceil();
            let one_based = raw.max(1.0).min(m as f64);
            one_based as usize - 1
        };
        for m in [1usize, 2, 7, 10, 64, 1000] {
            let indexer = BinIndexer::new(m);
            for i in -50..2050 {
                let x = i as f64 / 1000.0;
                assert_eq!(bin_index(x, m), ceil_form(x, m), "x={x}, m={m}");
                assert_eq!(indexer.index_scan(x), ceil_form(x, m), "x={x}, m={m}");
            }
            // Exact bin edges and one-ulp neighbours.
            for b in 0..=m {
                let edge = b as f64 / m as f64;
                for x in [
                    edge,
                    f64::from_bits(edge.to_bits() + 1),
                    f64::from_bits(edge.to_bits().saturating_sub(1)),
                ] {
                    assert_eq!(bin_index(x, m), ceil_form(x, m), "x={x}, m={m}");
                    assert_eq!(indexer.index_scan(x), ceil_form(x, m), "x={x}, m={m}");
                }
            }
            for x in [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,
                f64::from_bits(1), // smallest subnormal
                -0.0,
            ] {
                assert_eq!(bin_index(x, m), ceil_form(x, m), "x={x}, m={m}");
                assert_eq!(indexer.index_scan(x), ceil_form(x, m), "x={x}, m={m}");
            }
        }
    }

    #[test]
    fn bin_rows_matches_per_value_adds() {
        let data: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).fract()).collect();
        for (nhist, stride) in [(3usize, 3usize), (2, 3), (0, 2)] {
            let mut scanned: Vec<Histogram> = (0..nhist).map(|j| Histogram::new(4 + j)).collect();
            bin_rows(&mut scanned, stride, &data);
            let mut reference: Vec<Histogram> = (0..nhist).map(|j| Histogram::new(4 + j)).collect();
            for row in data.chunks_exact(stride) {
                for (hist, &v) in reference.iter_mut().zip(row) {
                    hist.add(v);
                }
            }
            assert_eq!(scanned, reference, "nhist={nhist}, stride={stride}");
        }
    }

    #[test]
    fn out_of_range_clamped() {
        assert_eq!(bin_index(-0.5, 10), 0);
        assert_eq!(bin_index(1.5, 10), 9);
    }

    #[test]
    fn single_bin_takes_everything() {
        for &x in &[0.0, 0.3, 1.0] {
            assert_eq!(bin_index(x, 1), 0);
        }
    }

    #[test]
    fn from_values_counts() {
        let h = Histogram::from_values([0.05, 0.15, 0.15, 0.95], 10);
        assert_eq!(h.count(0), 1.0);
        assert_eq!(h.count(1), 2.0);
        assert_eq!(h.count(9), 1.0);
        assert_eq!(h.total(), 4.0);
    }

    #[test]
    fn merge_adds_counts() {
        // Edge values (0.25, 0.75) belong to the *lower* bin per Eq. 8.
        let a = Histogram::from_values([0.05, 0.3], 4);
        let mut b = Histogram::from_values([0.05, 0.8], 4);
        b.merge(&a);
        assert_eq!(b.count(0), 2.0);
        assert_eq!(b.count(1), 1.0);
        assert_eq!(b.count(2), 0.0);
        assert_eq!(b.count(3), 1.0);
        assert_eq!(b.total(), 4.0);
    }

    #[test]
    fn merge_equals_global_histogram() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let whole = Histogram::from_values(values.iter().copied(), 17);
        let mut merged = Histogram::new(17);
        for chunk in values.chunks(97) {
            merged.merge(&Histogram::from_values(chunk.iter().copied(), 17));
        }
        assert_eq!(whole, merged);
    }

    #[test]
    fn bin_bounds_partition_unit_interval() {
        let h = Histogram::new(5);
        assert_eq!(h.bin_bounds(0), (0.0, 0.2));
        assert_eq!(h.bin_bounds(4), (0.8, 1.0));
        assert!((h.bin_width() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn argmax_finds_fullest_bin() {
        let mut h = Histogram::new(4);
        assert_eq!(h.argmax(), None);
        h.add(0.1);
        h.add(0.6);
        h.add(0.6);
        assert_eq!(h.argmax(), Some(2));
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::new(2);
        h.add_weighted(0.25, 2.5);
        h.add_weighted(0.75, 0.5);
        assert_eq!(h.count(0), 2.5);
        assert_eq!(h.count(1), 0.5);
    }
}
