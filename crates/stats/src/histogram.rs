//! Equi-width histograms on `[0,1]` with the paper's bin indexing.
//!
//! Equation 8 assigns a value `x` to bin `max(1, ⌈m·x⌉)` (1-based). We keep
//! the same boundary semantics — bin edges belong to the *lower* bin, zero
//! belongs to bin 1 — but expose 0-based indices to Rust callers.

use serde::{Deserialize, Serialize};

/// 0-based bin index of `x ∈ [0,1]` in an `m`-bin equi-width histogram,
/// following the paper's `max(1, ⌈m·x⌉)` convention (so `x = i/m` falls in
/// bin `i-1`, and `x = 0` in bin 0). Values outside `[0,1]` are clamped.
#[inline]
pub fn bin_index(x: f64, m: usize) -> usize {
    debug_assert!(m >= 1);
    let raw = (m as f64 * x).ceil();
    let one_based = raw.max(1.0).min(m as f64);
    one_based as usize - 1
}

/// A histogram over `[0,1]` with `m` equal-width bins and f64 counts
/// (counts are f64 so that partial/weighted histograms merge exactly like
/// the MapReduce jobs do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<f64>,
}

impl Histogram {
    /// Empty histogram with `m ≥ 1` bins.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "histogram needs at least one bin");
        Self {
            counts: vec![0.0; m],
        }
    }

    /// Builds a histogram directly from values.
    pub fn from_values(values: impl IntoIterator<Item = f64>, m: usize) -> Self {
        let mut h = Self::new(m);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation with weight 1.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Adds one observation with the given weight.
    #[inline]
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        let i = bin_index(x, self.counts.len());
        self.counts[i] += w;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Count of bin `i`.
    pub fn count(&self, i: usize) -> f64 {
        self.counts[i]
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram (same bin count) into this one —
    /// the reducer side of the histogram-building MapReduce job.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging histograms of different bin counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The `[lo, hi]` value range covered by bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let m = self.counts.len() as f64;
        (i as f64 / m, (i as f64 + 1.0) / m)
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        1.0 / self.counts.len() as f64
    }

    /// Index of the fullest bin, breaking ties toward the lower index;
    /// `None` when the histogram is empty of mass.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in self.counts.iter().enumerate() {
            match best {
                Some((_, b)) if c <= b => {}
                _ => best = Some((i, c)),
            }
        }
        best.filter(|&(_, c)| c > 0.0).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bin_indexing() {
        // m = 10: x=0 → bin 0; x=0.05 → ⌈0.5⌉=1 → bin 0; x=0.1 → bin 0
        // (upper edge belongs to lower bin); x=0.1000001 → bin 1; x=1 → bin 9.
        assert_eq!(bin_index(0.0, 10), 0);
        assert_eq!(bin_index(0.05, 10), 0);
        assert_eq!(bin_index(0.1, 10), 0);
        assert_eq!(bin_index(0.100_000_1, 10), 1);
        assert_eq!(bin_index(0.95, 10), 9);
        assert_eq!(bin_index(1.0, 10), 9);
    }

    #[test]
    fn out_of_range_clamped() {
        assert_eq!(bin_index(-0.5, 10), 0);
        assert_eq!(bin_index(1.5, 10), 9);
    }

    #[test]
    fn single_bin_takes_everything() {
        for &x in &[0.0, 0.3, 1.0] {
            assert_eq!(bin_index(x, 1), 0);
        }
    }

    #[test]
    fn from_values_counts() {
        let h = Histogram::from_values([0.05, 0.15, 0.15, 0.95], 10);
        assert_eq!(h.count(0), 1.0);
        assert_eq!(h.count(1), 2.0);
        assert_eq!(h.count(9), 1.0);
        assert_eq!(h.total(), 4.0);
    }

    #[test]
    fn merge_adds_counts() {
        // Edge values (0.25, 0.75) belong to the *lower* bin per Eq. 8.
        let a = Histogram::from_values([0.05, 0.3], 4);
        let mut b = Histogram::from_values([0.05, 0.8], 4);
        b.merge(&a);
        assert_eq!(b.count(0), 2.0);
        assert_eq!(b.count(1), 1.0);
        assert_eq!(b.count(2), 0.0);
        assert_eq!(b.count(3), 1.0);
        assert_eq!(b.total(), 4.0);
    }

    #[test]
    fn merge_equals_global_histogram() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let whole = Histogram::from_values(values.iter().copied(), 17);
        let mut merged = Histogram::new(17);
        for chunk in values.chunks(97) {
            merged.merge(&Histogram::from_values(chunk.iter().copied(), 17));
        }
        assert_eq!(whole, merged);
    }

    #[test]
    fn bin_bounds_partition_unit_interval() {
        let h = Histogram::new(5);
        assert_eq!(h.bin_bounds(0), (0.0, 0.2));
        assert_eq!(h.bin_bounds(4), (0.8, 1.0));
        assert!((h.bin_width() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn argmax_finds_fullest_bin() {
        let mut h = Histogram::new(4);
        assert_eq!(h.argmax(), None);
        h.add(0.1);
        h.add(0.6);
        h.add(0.6);
        assert_eq!(h.argmax(), Some(2));
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::new(2);
        h.add_weighted(0.25, 2.5);
        h.add_weighted(0.75, 0.5);
        assert_eq!(h.count(0), 2.5);
        assert_eq!(h.count(1), 0.5);
    }
}
