//! Property-based tests for the statistical machinery.

use p3c_stats::chi2::chi2_uniformity_test;
use p3c_stats::descriptive::{median, OnlineMoments};
use p3c_stats::histogram::{bin_index, Histogram};
use p3c_stats::normal::Normal;
use p3c_stats::poisson::PoissonTest;
use p3c_stats::special::{gamma_p, gamma_q};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gamma_p_in_unit_interval(a in 0.1f64..200.0, x in 0.0f64..400.0) {
        let p = gamma_p(a, x);
        prop_assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p}");
        let q = gamma_q(a, x);
        prop_assert!(((p + q) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.5f64..50.0, x in 0.0f64..100.0, dx in 0.01f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn normal_cdf_monotone(x in -8.0f64..8.0, dx in 0.001f64..2.0) {
        prop_assert!(Normal::cdf(x + dx) >= Normal::cdf(x));
    }

    #[test]
    fn normal_inv_cdf_roundtrip(p in 1e-9f64..1.0) {
        prop_assume!(p < 1.0 - 1e-9);
        let x = Normal::inv_cdf(p);
        prop_assert!((Normal::cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn poisson_exact_tail_decreasing_in_observed(lambda in 0.5f64..500.0, k in 1.0f64..100.0) {
        let p1 = PoissonTest::tail_prob_exact(k, lambda);
        let p2 = PoissonTest::tail_prob_exact(k + 1.0, lambda);
        prop_assert!(p2 <= p1 + 1e-12);
    }

    #[test]
    fn poisson_test_never_fires_below_lambda(alpha in 1e-6f64..0.5, lambda in 0.1f64..1000.0, frac in 0.0f64..1.0) {
        let t = PoissonTest::new(alpha);
        prop_assert!(!t.significantly_larger(lambda * frac, lambda));
    }

    #[test]
    fn bin_index_in_range(x in -1.0f64..2.0, m in 1usize..100) {
        let i = bin_index(x, m);
        prop_assert!(i < m);
    }

    #[test]
    fn bin_index_monotone(x in 0.0f64..1.0, y in 0.0f64..1.0, m in 1usize..50) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(bin_index(lo, m) <= bin_index(hi, m));
    }

    #[test]
    fn histogram_total_is_observation_count(values in prop::collection::vec(0.0f64..1.0, 0..200), m in 1usize..30) {
        let h = Histogram::from_values(values.iter().copied(), m);
        prop_assert!((h.total() - values.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_commutes(
        a in prop::collection::vec(0.0f64..1.0, 0..50),
        b in prop::collection::vec(0.0f64..1.0, 0..50),
    ) {
        let m = 8;
        let ha = Histogram::from_values(a.iter().copied(), m);
        let hb = Histogram::from_values(b.iter().copied(), m);
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn median_between_min_and_max(values in prop::collection::vec(-100.0f64..100.0, 1..100)) {
        let m = median(&values).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn chi2_uniformity_pvalue_in_unit_interval(counts in prop::collection::vec(0.0f64..1000.0, 2..40)) {
        prop_assume!(counts.iter().sum::<f64>() > 0.0);
        let t = chi2_uniformity_test(&counts).unwrap();
        prop_assert!((0.0..=1.0).contains(&t.p_value));
        prop_assert!(t.statistic >= 0.0);
    }

    #[test]
    fn online_moments_merge_matches_sequential(
        a in prop::collection::vec(-10.0f64..10.0, 1..60),
        b in prop::collection::vec(-10.0f64..10.0, 1..60),
    ) {
        let mut whole = OnlineMoments::new();
        for &x in a.iter().chain(&b) { whole.push(x); }
        let mut left = OnlineMoments::new();
        for &x in &a { left.push(x); }
        let mut right = OnlineMoments::new();
        for &x in &b { right.push(x); }
        left.merge(&right);
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-8);
        if let (Some(v1), Some(v2)) = (left.variance(), whole.variance()) {
            prop_assert!((v1 - v2).abs() < 1e-7);
        }
    }
}
