//! Property tests for the BoW rectangle merge phase.

use p3c_bow::{merge_rectangles, Rect};
use p3c_dataset::AttrInterval;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    prop::collection::btree_map(0usize..6, (0.0f64..0.8, 0.01f64..0.2), 1..4).prop_map(|m| {
        Rect::new(
            m.into_iter()
                .map(|(attr, (lo, w))| AttrInterval::new(attr, lo, (lo + w).min(1.0))),
        )
    })
}

proptest! {
    #[test]
    fn merge_is_order_independent(rects in prop::collection::vec(arb_rect(), 0..12), seed in 0u64..100) {
        let a = merge_rectangles(rects.clone(), 0.5);
        // Shuffle deterministically by the seed.
        let mut shuffled = rects;
        let len = shuffled.len();
        if len > 1 {
            for i in 0..len {
                let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % len;
                shuffled.swap(i, j);
            }
        }
        let b = merge_rectangles(shuffled, 0.5);
        prop_assert_eq!(a.len(), b.len());
        // Canonical order makes the sets comparable directly.
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_intervals().len(), y.to_intervals().len());
        }
    }

    #[test]
    fn merge_is_idempotent(rects in prop::collection::vec(arb_rect(), 0..12)) {
        let once = merge_rectangles(rects, 0.5);
        let twice = merge_rectangles(once.clone(), 0.5);
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn merge_never_increases_count(rects in prop::collection::vec(arb_rect(), 0..12)) {
        let n = rects.len();
        let merged = merge_rectangles(rects, 0.5);
        prop_assert!(merged.len() <= n);
    }

    #[test]
    fn merged_rectangles_cover_inputs(rects in prop::collection::vec(arb_rect(), 1..8)) {
        // Every input rectangle's center point (on its own attributes)
        // must be contained in some merged rectangle restricted to shared
        // attributes — merging only ever widens.
        let merged = merge_rectangles(rects.clone(), 0.5);
        for r in &rects {
            let mut center = [0.5; 6];
            for iv in r.to_intervals() {
                center[iv.attr] = 0.5 * (iv.lo + iv.hi);
            }
            let covered = merged.iter().any(|m| {
                m.to_intervals().iter().all(|iv| {
                    // Only check attrs that r also constrains; merged rects
                    // may constrain more (union of attribute sets).
                    match r.interval(iv.attr) {
                        Some(_) => iv.lo <= center[iv.attr] && center[iv.attr] <= iv.hi,
                        None => true,
                    }
                })
            });
            prop_assert!(covered, "input rectangle center escaped all merged rects");
        }
    }

    #[test]
    fn pairwise_unmergeable_output(rects in prop::collection::vec(arb_rect(), 0..10)) {
        let merged = merge_rectangles(rects, 0.5);
        for i in 0..merged.len() {
            for j in (i + 1)..merged.len() {
                prop_assert!(
                    !merged[i].should_merge(&merged[j], 0.5),
                    "merge did not reach a fixed point"
                );
            }
        }
    }
}
