//! BoW — the "Best of both Worlds" sample-and-merge MapReduce clustering
//! framework of Cordeiro et al. (KDD 2011), reimplemented as the paper's
//! competitor (Sections 2 and 7).
//!
//! BoW parallelizes any clustering algorithm whose results are
//! hyperrectangles: the data is hash-partitioned over reducers, each
//! reducer clusters a bounded *sample* of its partition, and the partial
//! results are combined by merging intersecting hyperrectangles into
//! larger ones. The evaluation plugs in the serial P3C+ in two flavors —
//! **BoW (Light)** (no EM/OD finishing) and **BoW (MVB)** (full pipeline
//! with MVB outlier detection) — matching the paper's two BoW series.
//!
//! BoW is *approximate* by construction: per-partition samples see a
//! distorted distribution, and rectangles that drift in one partition
//! blur the merged result. The quality experiments (Figure 6) exist to
//! show exactly that.

pub mod pipeline;
pub mod rect;

pub use pipeline::{Bow, BowConfig, BowResult, BowStrategy, BowVariant};
pub use rect::{merge_rectangles, Rect};
