//! The BoW MapReduce pipeline: sample → per-partition clustering (in the
//! reducers) → rectangle merge → assignment.

use crate::rect::{merge_rectangles, Rect};
use p3c_core::config::{OutlierMethod, P3cParams};
use p3c_core::p3cplus::{P3cPlus, P3cPlusLight};
use p3c_dataset::{Clustering, Dataset, ProjectedCluster};
use p3c_mapreduce::{
    rows_codec, take_dataset, DagError, DagScheduler, DatasetHandle, DatasetStore, Emitter, Engine,
    JobGraph, JobKind, JobNode, Mapper, MrError, NodeCtx, Reducer, SchedulerChoice, Weighable,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which finishing variant the per-partition P3C+ uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BowVariant {
    /// Per-partition P3C+-Light (the paper's "BoW (Light)" series).
    Light,
    /// Per-partition full P3C+ with MVB outlier detection ("BoW (MVB)").
    Mvb,
}

/// BoW's processing strategy — the actual "best of both worlds" choice
/// (Cordeiro et al. §4): pay full shuffle I/O for exact per-partition
/// clustering, or sample to bound both I/O and computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BowStrategy {
    /// ParC: every record shuffles to its partition; reducers cluster
    /// complete partitions (capped at `sample_size` as a safety bound).
    /// No sampling error, maximal I/O.
    ParC,
    /// SnI (sample-and-ignore): only a hash-sampled subset shuffles;
    /// reducers cluster samples. Minimal I/O, approximate.
    SampleAndIgnore,
    /// Pick per dataset with the cost heuristic: sample when it removes
    /// at least half the shuffle volume, otherwise run ParC.
    CostBased,
}

/// BoW configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BowConfig {
    /// Number of data partitions (the paper: one per reducer).
    pub num_partitions: usize,
    /// Maximum sample per reducer (paper Section 7.3: 100 000).
    pub sample_size: usize,
    /// Plug-in clustering variant.
    pub variant: BowVariant,
    /// Processing strategy (see [`BowStrategy`]).
    pub strategy: BowStrategy,
    /// Parameters for the per-partition P3C+.
    pub params: P3cParams,
    /// Attribute-set Jaccard threshold of the merge phase.
    pub merge_jaccard: f64,
    /// Intervals wider than this carry no subspace information (the
    /// paper's "blurring" effect: per-partition EM/OD occasionally lets
    /// outliers stretch an interval to almost the full `[0,1]` range); such attributes
    /// are dropped from the partition rectangle before merging.
    pub max_interval_width: f64,
    /// Seed for the deterministic sampling decisions.
    pub seed: u64,
}

impl Default for BowConfig {
    fn default() -> Self {
        Self {
            num_partitions: 4,
            sample_size: 100_000,
            variant: BowVariant::Light,
            strategy: BowStrategy::CostBased,
            params: P3cParams::default(),
            merge_jaccard: 0.5,
            max_interval_width: 0.9,
            seed: 0,
        }
    }
}

/// Result of a BoW run.
#[derive(Debug, Clone)]
pub struct BowResult {
    pub clustering: Clustering,
    /// Rectangles produced by the partition clusterings (pre-merge).
    pub rectangles_before_merge: usize,
    /// Rectangles after the merge phase (= clusters).
    pub rectangles_after_merge: usize,
    /// The strategy actually executed (resolves `CostBased`).
    pub strategy_used: BowStrategy,
}

/// A rectangle as a shuffle/output message.
#[derive(Debug, Clone)]
struct RectMsg(Rect);
impl Weighable for RectMsg {
    fn weight(&self) -> usize {
        4 + self.0.dim() * 24
    }
}

/// Mapper: deterministic sampling + partition assignment. Each sampled
/// point is routed to a partition by a hash of its coordinates, so the
/// shuffle only carries the sample (the paper's I/O-saving strategy).
struct SampleMapper {
    num_partitions: usize,
    /// Per-point keep probability.
    keep: f64,
    seed: u64,
}

impl<'a> Mapper<&'a [f64], usize, Vec<f64>> for SampleMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, Vec<f64>>) {
        let h = hash_row(row, self.seed);
        // Uniform in [0,1) from the hash; keep decision + partition id
        // from independent hash parts.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.keep {
            let part = (h % self.num_partitions as u64) as usize;
            out.emit(part, row.to_vec());
        }
    }
}

fn hash_row(row: &[f64], seed: u64) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &v in row {
        x ^= v.to_bits();
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

/// Reducer: clusters its partition's sample with the plug-in P3C+ and
/// emits the resulting rectangles.
struct ClusterReducer {
    variant: BowVariant,
    params: P3cParams,
    sample_size: usize,
    max_interval_width: f64,
}

impl Reducer<usize, Vec<f64>, RectMsg> for ClusterReducer {
    fn reduce(&self, _part: &usize, values: Vec<Vec<f64>>, out: &mut Vec<RectMsg>) {
        let sample: Vec<Vec<f64>> = values.into_iter().take(self.sample_size).collect();
        for rect in partition_rects(sample, self.variant, &self.params, self.max_interval_width) {
            out.push(RectMsg(rect));
        }
    }
}

/// Clusters one partition's sample with the plug-in P3C+ and returns the
/// resulting rectangles — the per-reducer work of the serial pipeline,
/// shared with the DAG driver's per-partition nodes.
fn partition_rects(
    sample: Vec<Vec<f64>>,
    variant: BowVariant,
    params: &P3cParams,
    max_interval_width: f64,
) -> Vec<Rect> {
    if sample.len() < 10 {
        return Vec::new(); // not enough data to say anything
    }
    let ds = Dataset::from_rows(sample);
    let clustering = match variant {
        BowVariant::Light => P3cPlusLight::new(params.clone()).cluster(&ds).clustering,
        BowVariant::Mvb => {
            let params = P3cParams {
                outlier: OutlierMethod::Mvb,
                ..params.clone()
            };
            P3cPlus::new(params).cluster(&ds).clustering
        }
    };
    let mut rects = Vec::new();
    for cluster in clustering.clusters {
        // Drop blurred (near-full-width) intervals: they constrain
        // nothing and would make merged rectangles degenerate.
        let intervals: Vec<_> = cluster
            .intervals
            .into_iter()
            .filter(|iv| iv.width() <= max_interval_width)
            .collect();
        if !intervals.is_empty() {
            rects.push(Rect::new(intervals));
        }
    }
    rects
}

/// Reducer of the DAG sampling job: materializes each partition's sample
/// instead of clustering it in place, so the per-partition clusterings
/// can run as concurrent DAG nodes downstream.
struct CollectReducer {
    sample_size: usize,
}

impl Reducer<usize, Vec<f64>, (usize, Vec<Vec<f64>>)> for CollectReducer {
    fn reduce(&self, part: &usize, values: Vec<Vec<f64>>, out: &mut Vec<(usize, Vec<Vec<f64>>)>) {
        out.push((*part, values.into_iter().take(self.sample_size).collect()));
    }
}

/// Mapper of the final assignment job: first containing merged rectangle
/// (or −1).
struct AssignMapper {
    rects: Arc<Vec<Rect>>,
}

impl<'a> Mapper<&'a [f64], (), i64> for AssignMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<(), i64>) {
        let label = self
            .rects
            .iter()
            .position(|r| r.contains(row))
            .map(|i| i as i64)
            .unwrap_or(-1);
        out.emit((), label);
    }
}

/// The BoW driver.
pub struct Bow<'e> {
    engine: &'e Engine,
    config: BowConfig,
}

impl<'e> Bow<'e> {
    pub fn new(engine: &'e Engine, config: BowConfig) -> Self {
        assert!(config.num_partitions >= 1, "need at least one partition");
        assert!(config.sample_size >= 1, "need a positive sample size");
        config.params.validate();
        Self { engine, config }
    }

    pub fn config(&self) -> &BowConfig {
        &self.config
    }

    /// Resolves the effective strategy for a dataset of `n` points.
    pub fn effective_strategy(&self, n: usize) -> BowStrategy {
        let budget = self.config.sample_size * self.config.num_partitions;
        match self.config.strategy {
            BowStrategy::CostBased => {
                // Sampling wins when it at least halves the shuffle volume;
                // otherwise the exactness of ParC is free enough to take.
                if budget * 2 <= n {
                    BowStrategy::SampleAndIgnore
                } else {
                    BowStrategy::ParC
                }
            }
            s => s,
        }
    }

    /// Clusters a normalized dataset.
    pub fn cluster(&self, data: &Dataset) -> Result<BowResult, MrError> {
        let rows = data.row_refs();
        let n = rows.len();
        let strategy_used = self.effective_strategy(n);
        // Keep probability: ParC ships everything; SnI keeps a hash
        // sample so each partition expects ≤ sample_size records.
        let budget = self.config.sample_size * self.config.num_partitions;
        let keep = match strategy_used {
            BowStrategy::ParC => 1.0,
            _ if n == 0 => 0.0,
            _ => (budget as f64 / n as f64).min(1.0),
        };

        // Job 1: sample + partition + per-reducer clustering.
        let result = self.engine.run(
            "bow-sample-and-cluster",
            &rows,
            &SampleMapper {
                num_partitions: self.config.num_partitions,
                keep,
                seed: self.config.seed,
            },
            &ClusterReducer {
                variant: self.config.variant,
                params: self.config.params.clone(),
                sample_size: self.config.sample_size,
                max_interval_width: self.config.max_interval_width,
            },
        )?;
        let rects: Vec<Rect> = result.output.into_iter().map(|RectMsg(r)| r).collect();
        let before = rects.len();

        // Merge phase (driver side, as in BoW's final combination step).
        let merged = merge_rectangles(rects, self.config.merge_jaccard);
        let after = merged.len();

        if merged.is_empty() {
            return Ok(BowResult {
                clustering: Clustering::new(Vec::new(), (0..n).collect()),
                rectangles_before_merge: before,
                rectangles_after_merge: 0,
                strategy_used,
            });
        }

        // Job 2: assign every point to its first containing rectangle.
        let rects_arc = Arc::new(merged);
        let cache = rects_arc.iter().map(|r| 4 + r.dim() * 24).sum();
        let assign = self.engine.run_map_only_with_cache(
            "bow-assign",
            &rows,
            cache,
            &AssignMapper {
                rects: Arc::clone(&rects_arc),
            },
        )?;

        // Assemble the clustering; intervals are the merged rectangles'.
        let k = rects_arc.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, &label) in assign.output.iter().enumerate() {
            if label < 0 {
                outliers.push(i);
            } else {
                members[label as usize].push(i);
            }
        }
        let clusters: Vec<ProjectedCluster> = (0..k)
            .filter(|&c| !members[c].is_empty())
            .map(|c| {
                let attrs: BTreeSet<usize> = rects_arc[c].attrs().collect();
                ProjectedCluster::new(members[c].clone(), attrs, rects_arc[c].to_intervals())
            })
            .collect();
        Ok(BowResult {
            clustering: Clustering::new(clusters, outliers),
            rectangles_before_merge: before,
            rectangles_after_merge: after,
            strategy_used,
        })
    }

    /// Clusters through the chosen scheduler: `Serial` is [`Self::cluster`],
    /// `Dag` is [`Self::cluster_dag`].
    pub fn cluster_with(
        &self,
        data: &Dataset,
        scheduler: SchedulerChoice,
    ) -> Result<BowResult, MrError> {
        match scheduler {
            SchedulerChoice::Serial => self.cluster(data),
            SchedulerChoice::Dag => self.cluster_dag(data),
        }
    }

    /// The BoW pipeline as a job graph (`bow`): the sampling job
    /// materializes each partition's sample, one node per partition
    /// clusters its sample — those nodes run concurrently, all reading
    /// the cached sample dataset — and a final node merges the
    /// rectangles (in partition order) and assigns every point.
    ///
    /// Per-partition results equal the serial pipeline's; only the
    /// pre-merge rectangle *order* differs (partition order here, shuffle
    /// partition order there), so the merged clustering may differ from
    /// [`Self::cluster`] while remaining deterministic run to run.
    pub fn cluster_dag(&self, data: &Dataset) -> Result<BowResult, MrError> {
        let n = data.len();
        let strategy_used = self.effective_strategy(n);
        let budget = self.config.sample_size * self.config.num_partitions;
        let keep = match strategy_used {
            BowStrategy::ParC => 1.0,
            _ if n == 0 => 0.0,
            _ => (budget as f64 / n as f64).min(1.0),
        };

        let store = DatasetStore::new();
        let rows_ds: DatasetHandle<Vec<Vec<f64>>> = DatasetHandle::new("bow-rows");
        let owned: Vec<Vec<f64>> = data.row_refs().iter().map(|r| r.to_vec()).collect();
        let bytes = owned.iter().map(|r| 8 * r.len() + 8).sum();
        store.put_spillable(&rows_ds, owned, bytes, rows_codec());

        let parts_ds: DatasetHandle<Vec<(usize, Vec<Vec<f64>>)>> = DatasetHandle::new("bow-parts");
        let merged_ds: DatasetHandle<Vec<Rect>> = DatasetHandle::new("bow-merged");
        let assign_ds: DatasetHandle<Vec<i64>> = DatasetHandle::new("bow-assignment");

        let mut graph = JobGraph::new("bow");
        graph.add(
            JobNode::new("sample", JobKind::MapReduce, {
                let (rows_ds, parts_ds) = (rows_ds.clone(), parts_ds.clone());
                let (num_partitions, seed, sample_size) = (
                    self.config.num_partitions,
                    self.config.seed,
                    self.config.sample_size,
                );
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
                    let result = ctx.engine.run(
                        "bow-sample",
                        &refs,
                        &SampleMapper {
                            num_partitions,
                            keep,
                            seed,
                        },
                        &CollectReducer { sample_size },
                    )?;
                    let parts = result.output;
                    let bytes = parts
                        .iter()
                        .map(|(_, s)| 16 + s.iter().map(|r| 8 * r.len() + 8).sum::<usize>())
                        .sum();
                    ctx.put(&parts_ds, parts, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .output(&parts_ds),
        );

        let mut rect_handles: Vec<DatasetHandle<Vec<Rect>>> =
            Vec::with_capacity(self.config.num_partitions);
        for p in 0..self.config.num_partitions {
            let rects_ds: DatasetHandle<Vec<Rect>> = DatasetHandle::new(format!("bow-rects-{p}"));
            graph.add(
                JobNode::new(format!("cluster-part-{p}"), JobKind::MapOnly, {
                    let (parts_ds, rects_ds) = (parts_ds.clone(), rects_ds.clone());
                    let params = self.config.params.clone();
                    let (variant, width) = (self.config.variant, self.config.max_interval_width);
                    move |ctx: &NodeCtx| {
                        let parts = ctx.fetch(&parts_ds)?;
                        let sample: Vec<Vec<f64>> = parts
                            .iter()
                            .find(|(q, _)| *q == p)
                            .map(|(_, s)| s.clone())
                            .unwrap_or_default();
                        let rects = partition_rects(sample, variant, &params, width);
                        let bytes = rects.iter().map(|r| 4 + r.dim() * 24).sum();
                        ctx.put(&rects_ds, rects, bytes);
                        Ok(())
                    }
                })
                .input(&parts_ds)
                .output(&rects_ds),
            );
            rect_handles.push(rects_ds);
        }

        graph.add({
            let mut node = JobNode::new("merge-assign", JobKind::MapOnly, {
                let (rows_ds, merged_ds, assign_ds) =
                    (rows_ds.clone(), merged_ds.clone(), assign_ds.clone());
                let rect_handles = rect_handles.clone();
                let jaccard = self.config.merge_jaccard;
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let mut rects: Vec<Rect> = Vec::new();
                    for h in &rect_handles {
                        rects.extend(ctx.fetch(h)?.iter().cloned());
                    }
                    let merged = merge_rectangles(rects, jaccard);
                    let assignment: Vec<i64> = if merged.is_empty() {
                        vec![-1; rows.len()]
                    } else {
                        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
                        let rects_arc = Arc::new(merged.clone());
                        let cache = rects_arc.iter().map(|r| 4 + r.dim() * 24).sum();
                        ctx.engine
                            .run_map_only_with_cache(
                                "bow-assign",
                                &refs,
                                cache,
                                &AssignMapper { rects: rects_arc },
                            )?
                            .output
                    };
                    let merged_bytes = merged.iter().map(|r| 4 + r.dim() * 24).sum();
                    ctx.put(&merged_ds, merged, merged_bytes);
                    let bytes = 8 * assignment.len();
                    ctx.put(&assign_ds, assignment, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .output(&merged_ds)
            .output(&assign_ds);
            for h in &rect_handles {
                node = node.input(h);
            }
            node
        });

        DagScheduler::new(self.engine)
            .run(&graph, &store)
            .map_err(DagError::into_mr)?;

        let mut before = 0usize;
        for h in &rect_handles {
            before += take_dataset(&store, h)?.len();
        }
        let merged: Vec<Rect> = take_dataset(&store, &merged_ds)?;
        let after = merged.len();
        if merged.is_empty() {
            return Ok(BowResult {
                clustering: Clustering::new(Vec::new(), (0..n).collect()),
                rectangles_before_merge: before,
                rectangles_after_merge: 0,
                strategy_used,
            });
        }
        let assignment: Vec<i64> = take_dataset(&store, &assign_ds)?;

        let k = merged.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, &label) in assignment.iter().enumerate() {
            if label < 0 {
                outliers.push(i);
            } else {
                members[label as usize].push(i);
            }
        }
        let clusters: Vec<ProjectedCluster> = (0..k)
            .filter(|&c| !members[c].is_empty())
            .map(|c| {
                let attrs: BTreeSet<usize> = merged[c].attrs().collect();
                ProjectedCluster::new(members[c].clone(), attrs, merged[c].to_intervals())
            })
            .collect();
        Ok(BowResult {
            clustering: Clustering::new(clusters, outliers),
            rectangles_before_merge: before,
            rectangles_after_merge: after,
            strategy_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};
    use p3c_eval::e4sc;
    use p3c_mapreduce::MrConfig;

    fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n,
            d: 12,
            num_clusters: k,
            noise_fraction: noise,
            max_cluster_dims: 5,
            seed,
            ..SyntheticSpec::default()
        }
    }

    fn engine() -> Engine {
        Engine::new(MrConfig {
            split_size: 512,
            num_reducers: 4,
            ..MrConfig::default()
        })
    }

    #[test]
    fn bow_light_finds_planted_clusters() {
        let data = generate(&spec(4000, 3, 0.05, 11));
        let eng = engine();
        let config = BowConfig {
            num_partitions: 4,
            sample_size: 1000,
            variant: BowVariant::Light,
            ..BowConfig::default()
        };
        let result = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
        assert!(
            result.clustering.num_clusters() >= 3,
            "clusters: {}",
            result.clustering.num_clusters()
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.4, "E4SC = {q}");
        // Merging must have consolidated the per-partition rectangles.
        assert!(result.rectangles_after_merge <= result.rectangles_before_merge);
        assert!(result.rectangles_before_merge >= 3);
    }

    #[test]
    fn bow_mvb_variant_runs() {
        let data = generate(&spec(3000, 2, 0.05, 5));
        let eng = engine();
        let config = BowConfig {
            num_partitions: 2,
            sample_size: 1500,
            variant: BowVariant::Mvb,
            ..BowConfig::default()
        };
        let result = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
        assert!(result.clustering.num_clusters() >= 1);
    }

    #[test]
    fn sampling_caps_shuffle_volume() {
        let data = generate(&spec(8000, 2, 0.1, 7));
        let eng = engine();
        let config = BowConfig {
            num_partitions: 2,
            sample_size: 500, // budget 1000 of 8000 points
            ..BowConfig::default()
        };
        Bow::new(&eng, config).cluster(&data.dataset).unwrap();
        let metrics = eng.cluster_metrics();
        let job = &metrics.jobs()[0];
        assert_eq!(job.job_name, "bow-sample-and-cluster");
        // Shuffled records ≈ 1000 ≪ 8000 (allow generous slack for the
        // hash-based Bernoulli sampling).
        assert!(
            job.shuffle_records < 1_600,
            "shuffled {} records",
            job.shuffle_records
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let data = generate(&spec(3000, 2, 0.1, 13));
        let run = || {
            let eng = engine();
            let config = BowConfig {
                num_partitions: 3,
                sample_size: 800,
                ..BowConfig::default()
            };
            Bow::new(&eng, config)
                .cluster(&data.dataset)
                .unwrap()
                .clustering
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_rows(vec![]);
        let eng = engine();
        let result = Bow::new(&eng, BowConfig::default()).cluster(&ds).unwrap();
        assert_eq!(result.clustering.num_clusters(), 0);
    }

    #[test]
    fn strategy_selection_and_shuffle_volumes() {
        let data = generate(&spec(8000, 2, 0.1, 31));
        let shuffle_of = |strategy: BowStrategy| {
            let eng = engine();
            let config = BowConfig {
                num_partitions: 2,
                sample_size: 500,
                strategy,
                ..BowConfig::default()
            };
            let result = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
            let records = eng.cluster_metrics().jobs()[0].shuffle_records;
            (result.strategy_used, records)
        };
        let (parc_used, parc_records) = shuffle_of(BowStrategy::ParC);
        let (sni_used, sni_records) = shuffle_of(BowStrategy::SampleAndIgnore);
        assert_eq!(parc_used, BowStrategy::ParC);
        assert_eq!(sni_used, BowStrategy::SampleAndIgnore);
        // ParC ships every record; SnI ships roughly the budget (1000).
        assert_eq!(parc_records, 8000);
        assert!(sni_records < 2000, "SnI shuffled {sni_records}");
        // Cost-based: budget 1000 ≪ 8000 → SnI.
        let (auto_used, auto_records) = shuffle_of(BowStrategy::CostBased);
        assert_eq!(auto_used, BowStrategy::SampleAndIgnore);
        assert_eq!(auto_records, sni_records);
    }

    #[test]
    fn cost_based_picks_parc_on_small_data() {
        let data = generate(&spec(3000, 2, 0.05, 17));
        let eng = engine();
        let config = BowConfig {
            num_partitions: 4,
            sample_size: 1000, // budget 4000; 2·4000 > 3000 → ParC
            strategy: BowStrategy::CostBased,
            ..BowConfig::default()
        };
        let result = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
        assert_eq!(result.strategy_used, BowStrategy::ParC);
    }

    #[test]
    fn parc_runs_and_finds_clusters() {
        let data = generate(&spec(4000, 3, 0.05, 23));
        let eng = engine();
        let config = BowConfig {
            num_partitions: 4,
            sample_size: 2000,
            strategy: BowStrategy::ParC,
            seed: 1,
            ..BowConfig::default()
        };
        let r = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
        assert!(r.clustering.num_clusters() >= 3);
        assert!(e4sc(&r.clustering, &data.ground_truth) > 0.4);
    }

    #[test]
    fn dag_pipeline_is_deterministic_and_finds_clusters() {
        let data = generate(&spec(4000, 3, 0.05, 11));
        let run = || {
            let eng = engine();
            let config = BowConfig {
                num_partitions: 4,
                sample_size: 1000,
                variant: BowVariant::Light,
                ..BowConfig::default()
            };
            let result = Bow::new(&eng, config)
                .cluster_with(&data.dataset, SchedulerChoice::Dag)
                .unwrap();
            let metrics = eng.cluster_metrics();
            let dag = metrics
                .dag_runs()
                .iter()
                .find(|d| d.dag_name == "bow")
                .cloned()
                .unwrap();
            (result, dag)
        };
        let (r1, dag) = run();
        let (r2, dag2) = run();
        assert_eq!(r1.clustering, r2.clustering);
        assert!(
            r1.clustering.num_clusters() >= 3,
            "clusters: {}",
            r1.clustering.num_clusters()
        );
        let q = e4sc(&r1.clustering, &data.ground_truth);
        assert!(q > 0.4, "E4SC = {q}");
        assert!(r1.rectangles_after_merge <= r1.rectangles_before_merge);
        assert!(r1.rectangles_before_merge >= 3);
        // The four per-partition clusterings can overlap, all reading the
        // one materialized sample dataset. Whether an overlap is actually
        // observed in a single run depends on thread wake-up timing — the
        // partition nodes only take a few hundred microseconds — so look
        // across a bounded number of runs. (The scheduler's barrier-based
        // unit test proves overlap deterministically; this checks it on a
        // real workload.)
        let mut high = dag.concurrency_high_water.max(dag2.concurrency_high_water);
        for _ in 0..6 {
            if high >= 2 {
                break;
            }
            high = high.max(run().1.concurrency_high_water);
        }
        assert!(high >= 2, "partition clustering never overlapped: {high}");
        assert!(
            dag.cache_hits >= 4,
            "sample dataset not re-used: {} hits",
            dag.cache_hits
        );
        assert!(dag.node("cluster-part-0").is_some());
        assert_eq!(dag.total_executions as usize, 2 + 4); // sample + 4 parts + merge-assign
    }

    #[test]
    fn dag_empty_dataset() {
        let ds = Dataset::from_rows(vec![]);
        let eng = engine();
        let result = Bow::new(&eng, BowConfig::default())
            .cluster_dag(&ds)
            .unwrap();
        assert_eq!(result.clustering.num_clusters(), 0);
        assert_eq!(result.rectangles_after_merge, 0);
    }

    #[test]
    fn quality_degrades_with_tiny_samples() {
        // The paper's core claim about BoW: small per-reducer samples hurt
        // quality. Compare generous vs starved sampling on the same data.
        let data = generate(&spec(6000, 3, 0.1, 21));
        let run = |sample_size: usize| {
            let eng = engine();
            let config = BowConfig {
                num_partitions: 4,
                sample_size,
                seed: 1,
                ..BowConfig::default()
            };
            let r = Bow::new(&eng, config).cluster(&data.dataset).unwrap();
            e4sc(&r.clustering, &data.ground_truth)
        };
        let generous = run(2000);
        let starved = run(60);
        assert!(
            generous > starved,
            "generous {generous} should beat starved {starved}"
        );
    }
}
