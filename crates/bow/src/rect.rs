//! Projected hyperrectangles and the BoW merge phase.
//!
//! Cordeiro et al. merge "intersecting hyperrectangles to larger
//! hyperrectangles". For *projected* clusters a rectangle constrains only
//! its relevant attributes, so we concretize intersection as:
//!
//! * the attribute sets overlap substantially (Jaccard ≥ `min_jaccard`,
//!   default 0.5 — partitions occasionally miss one relevant attribute of
//!   a cluster and should still merge), and
//! * the intervals overlap on **every** shared attribute.
//!
//! Merging takes the union of attribute sets and, per attribute, the
//! union bounding interval. The phase iterates to a fixed point.

use p3c_dataset::AttrInterval;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A projected hyperrectangle: one interval per relevant attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Intervals keyed by attribute.
    intervals: BTreeMap<usize, (f64, f64)>,
}

impl Rect {
    /// Builds a rectangle from attribute intervals.
    pub fn new(intervals: impl IntoIterator<Item = AttrInterval>) -> Self {
        Self {
            intervals: intervals
                .into_iter()
                .map(|iv| (iv.attr, (iv.lo, iv.hi)))
                .collect(),
        }
    }

    /// Number of constrained attributes.
    pub fn dim(&self) -> usize {
        self.intervals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The constrained attributes, ascending.
    pub fn attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.intervals.keys().copied()
    }

    /// The interval on `attr`, if constrained.
    pub fn interval(&self, attr: usize) -> Option<AttrInterval> {
        self.intervals
            .get(&attr)
            .map(|&(lo, hi)| AttrInterval::new(attr, lo, hi))
    }

    /// The intervals as a sorted list.
    pub fn to_intervals(&self) -> Vec<AttrInterval> {
        self.intervals
            .iter()
            .map(|(&attr, &(lo, hi))| AttrInterval::new(attr, lo, hi))
            .collect()
    }

    /// Whether a point lies inside (on all constrained attributes).
    pub fn contains(&self, point: &[f64]) -> bool {
        self.intervals.iter().all(|(&attr, &(lo, hi))| {
            let v = point[attr];
            lo <= v && v <= hi
        })
    }

    /// Jaccard similarity of the attribute sets.
    pub fn attr_jaccard(&self, other: &Rect) -> f64 {
        let shared = self
            .intervals
            .keys()
            .filter(|a| other.intervals.contains_key(a))
            .count();
        let union = self.dim() + other.dim() - shared;
        if union == 0 {
            1.0
        } else {
            shared as f64 / union as f64
        }
    }

    /// Whether the intervals overlap on every shared attribute (vacuously
    /// true when no attribute is shared).
    pub fn overlaps_on_shared(&self, other: &Rect) -> bool {
        self.intervals
            .iter()
            .all(|(attr, &(lo, hi))| match other.intervals.get(attr) {
                Some(&(olo, ohi)) => lo <= ohi && olo <= hi,
                None => true,
            })
    }

    /// The BoW merge predicate (see module docs).
    pub fn should_merge(&self, other: &Rect, min_jaccard: f64) -> bool {
        self.attr_jaccard(other) >= min_jaccard && self.overlaps_on_shared(other)
    }

    /// Union-merge: union attribute set, bounding interval per attribute.
    pub fn merged_with(&self, other: &Rect) -> Rect {
        let mut intervals = self.intervals.clone();
        for (&attr, &(olo, ohi)) in &other.intervals {
            intervals
                .entry(attr)
                .and_modify(|e| {
                    e.0 = e.0.min(olo);
                    e.1 = e.1.max(ohi);
                })
                .or_insert((olo, ohi));
        }
        Rect { intervals }
    }
}

/// Iteratively merges rectangles until no pair satisfies the predicate.
///
/// The result is *canonical*: rectangles are first sorted by
/// dimensionality (most specific first, ties broken lexicographically),
/// and each rectangle merges into the **best-matching** (highest
/// attribute-Jaccard) qualifying partial, not the first one encountered.
/// This makes the outcome independent of reducer scheduling — merge
/// phases driven by arrival order let one blurred low-dimensional
/// rectangle swallow unrelated clusters.
pub fn merge_rectangles(mut rects: Vec<Rect>, min_jaccard: f64) -> Vec<Rect> {
    canonical_sort(&mut rects);
    loop {
        let mut merged_any = false;
        let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
        for rect in rects.drain(..) {
            let best = out
                .iter()
                .enumerate()
                .filter(|(_, existing)| existing.should_merge(&rect, min_jaccard))
                .max_by(|(_, a), (_, b)| a.attr_jaccard(&rect).total_cmp(&b.attr_jaccard(&rect)))
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    out[i] = out[i].merged_with(&rect);
                    merged_any = true;
                }
                None => out.push(rect),
            }
        }
        rects = out;
        if !merged_any {
            canonical_sort(&mut rects);
            return rects;
        }
        canonical_sort(&mut rects);
    }
}

/// Most-specific-first deterministic order: dimensionality descending,
/// then attribute/interval lexicographic.
fn canonical_sort(rects: &mut [Rect]) {
    rects.sort_by(|a, b| {
        b.dim()
            .cmp(&a.dim())
            .then_with(|| a.to_intervals().len().cmp(&b.to_intervals().len()))
            .then_with(|| {
                let ia = a.to_intervals();
                let ib = b.to_intervals();
                ia.iter()
                    .zip(ib.iter())
                    .map(|(x, y)| {
                        x.attr
                            .cmp(&y.attr)
                            .then_with(|| x.lo.total_cmp(&y.lo))
                            .then_with(|| x.hi.total_cmp(&y.hi))
                    })
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(ivs: &[(usize, f64, f64)]) -> Rect {
        Rect::new(ivs.iter().map(|&(a, lo, hi)| AttrInterval::new(a, lo, hi)))
    }

    #[test]
    fn containment() {
        let r = rect(&[(0, 0.1, 0.3), (2, 0.5, 0.9)]);
        assert!(r.contains(&[0.2, 9.0, 0.7]));
        assert!(!r.contains(&[0.4, 9.0, 0.7]));
        assert!(!r.contains(&[0.2, 9.0, 0.4]));
    }

    #[test]
    fn jaccard() {
        let a = rect(&[(0, 0.0, 1.0), (1, 0.0, 1.0)]);
        let b = rect(&[(1, 0.0, 1.0), (2, 0.0, 1.0)]);
        assert!((a.attr_jaccard(&b) - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(a.attr_jaccard(&a), 1.0);
    }

    #[test]
    fn merge_predicate_needs_overlap_and_jaccard() {
        let a = rect(&[(0, 0.1, 0.3), (1, 0.2, 0.4)]);
        let same_overlapping = rect(&[(0, 0.25, 0.5), (1, 0.3, 0.6)]);
        let same_disjoint = rect(&[(0, 0.5, 0.7), (1, 0.3, 0.6)]);
        let different_attrs = rect(&[(5, 0.1, 0.3), (6, 0.2, 0.4)]);
        assert!(a.should_merge(&same_overlapping, 0.5));
        assert!(!a.should_merge(&same_disjoint, 0.5));
        assert!(!a.should_merge(&different_attrs, 0.5));
    }

    #[test]
    fn partial_attr_overlap_merges_at_low_jaccard() {
        let a = rect(&[(0, 0.1, 0.3), (1, 0.2, 0.4)]);
        let b = rect(&[(0, 0.2, 0.35), (1, 0.25, 0.45), (2, 0.0, 0.2)]);
        // Jaccard = 2/3.
        assert!(a.should_merge(&b, 0.5));
        assert!(!a.should_merge(&b, 0.8));
        let m = a.merged_with(&b);
        assert_eq!(m.dim(), 3);
        let iv0 = m.interval(0).unwrap();
        assert_eq!((iv0.lo, iv0.hi), (0.1, 0.35));
    }

    #[test]
    fn merge_rectangles_reaches_fixed_point() {
        // Chain a–b–c: a overlaps b, b overlaps c, a does not overlap c.
        // All must collapse into one rectangle transitively.
        let a = rect(&[(0, 0.0, 0.2)]);
        let b = rect(&[(0, 0.15, 0.4)]);
        let c = rect(&[(0, 0.35, 0.6)]);
        let merged = merge_rectangles(vec![a, b, c], 0.5);
        assert_eq!(merged.len(), 1);
        let iv = merged[0].interval(0).unwrap();
        assert_eq!((iv.lo, iv.hi), (0.0, 0.6));
    }

    #[test]
    fn disjoint_rectangles_stay_separate() {
        let a = rect(&[(0, 0.0, 0.2), (1, 0.0, 0.2)]);
        let b = rect(&[(0, 0.5, 0.7), (1, 0.5, 0.7)]);
        let merged = merge_rectangles(vec![a.clone(), b.clone()], 0.5);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(merge_rectangles(vec![], 0.5).is_empty());
    }

    #[test]
    fn roundtrip_intervals() {
        let r = rect(&[(3, 0.1, 0.2), (1, 0.5, 0.6)]);
        let ivs = r.to_intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].attr, 1);
        assert_eq!(ivs[1].attr, 3);
        assert_eq!(Rect::new(ivs), r);
    }
}
