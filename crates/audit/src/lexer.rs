//! A minimal Rust lexer: splits each source line into its *code* text
//! (string literals blanked, comments removed) and its *comment* text,
//! and parses `audit:` waivers out of the comments.
//!
//! This is deliberately not a full parser — the audit rules are token
//! rules, and all the lexer must guarantee is that tokens inside string
//! literals and comments never reach them, and that line numbers are
//! preserved exactly. Handled: line comments, nested block comments,
//! string literals with escapes, raw strings with any `#` arity
//! (including multi-line), byte strings, char literals vs. lifetimes.

/// One waiver comment: `// audit: <key> — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line of the waiver comment itself.
    pub line: usize,
    /// 1-based first line of the code the waiver covers: its own line
    /// if that line has code, otherwise the next line with code
    /// (intervening comment-only and blank lines — waiver prose
    /// continuations — are skipped). Coverage extends to the end of
    /// the statement starting here (see `rules::statement_end`), so a
    /// waiver survives rustfmt re-wrapping the statement.
    pub covers: usize,
    /// The waiver key, e.g. `unordered-ok`.
    pub key: String,
    /// Justification text after the key. Empty reasons are violations.
    pub reason: String,
}

/// A lexed source file.
#[derive(Debug)]
pub struct FileScan {
    /// Per line (0-based index = line - 1): code with comments removed
    /// and string/char literal *contents* blanked.
    pub code: Vec<String>,
    /// All `audit:` waivers found in comments, in line order.
    pub waivers: Vec<Waiver>,
    /// 1-based line of the first `#[cfg(test)]`-style attribute, if
    /// any. Rules do not scan at or past this line: test modules sit at
    /// the bottom of every file in this workspace, and test code may
    /// panic and hash freely.
    pub test_start: Option<usize>,
}

impl FileScan {
    /// Whether 1-based `line` is part of the production (non-test)
    /// region of the file.
    pub fn is_production(&self, line: usize) -> bool {
        self.test_start.is_none_or(|t| line < t)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes `source` into per-line code/comment streams and waivers.
pub fn scan(source: &str) -> FileScan {
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;

    for raw_line in source.split('\n') {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        // Literal delimiters stay in the code stream so
                        // rules could still see "a string starts here";
                        // only contents are blanked.
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        code.push('"');
                        state = State::RawStr(hashes);
                        i += consumed;
                    }
                    '\'' => {
                        // Distinguish `'a'` / `'\n'` (char literal) from
                        // `'a` (lifetime): a char literal closes with a
                        // `'` shortly after; a lifetime never does.
                        if is_char_literal(&chars, i) {
                            code.push('\'');
                            state = State::Char;
                        } else {
                            code.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    comment.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => i += 2,
                    '\'' => {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
            }
        }
        code_lines.push(std::mem::take(&mut code));
        comment_lines.push(std::mem::take(&mut comment));
    }

    let test_start = code_lines.iter().position(|l| {
        let t = l.trim();
        t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")
    });

    let waivers = collect_waivers(&code_lines, &comment_lines, test_start);
    FileScan {
        code: code_lines,
        waivers,
        test_start: test_start.map(|i| i + 1),
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Only if `r`/`b` begins a token: previous char must not be
    // identifier-ish (else `attr` or `barb"..."` would confuse us).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            // b"..." is an ordinary (escaped) byte string; the Str
            // state handles it once the `"` is reached.
            return chars.get(j) == Some(&'"');
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Returns (number of `#`s, chars consumed through the opening quote).
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // chars[j] is the opening quote.
    (hashes, j + 1 - i)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_char_literal(chars: &[char], i: usize) -> bool {
    // 'x' or '\x'-escape: a closing quote within a few chars. Lifetimes
    // ('a, 'static) have an identifier run with no closing quote.
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn collect_waivers(
    code_lines: &[String],
    comment_lines: &[String],
    test_start: Option<usize>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        if test_start.is_some_and(|t| idx >= t) {
            continue;
        }
        // A waiver must *start* the comment (after doc-comment sigils);
        // prose that merely mentions `audit:` is not a waiver.
        let lead = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        if !lead.starts_with("audit:") {
            continue;
        }
        let rest = lead["audit:".len()..].trim_start();
        let key: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        let reason = rest[key.len()..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        let covers = if !code_lines[idx].trim().is_empty() {
            idx + 1
        } else {
            // Comment-only line: the waiver covers the next code line,
            // skipping blank lines and the waiver's own prose
            // continuation comments.
            let mut j = idx + 1;
            while j < code_lines.len() && code_lines[j].trim().is_empty() {
                j += 1;
            }
            j + 1
        };
        waivers.push(Waiver {
            line: idx + 1,
            covers,
            key,
            reason,
        });
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_reach_code_stream() {
        let src = r##"let x = "panic!(inside string)"; // panic!(in comment)
let y = r#"Instant::now() in raw string"#;
/* HashMap in block
   comment */ let z = 1;
"##;
        let s = scan(src);
        assert!(!s.code[0].contains("panic!"));
        assert!(!s.code[1].contains("Instant"));
        assert!(!s.code[2].contains("HashMap"));
        assert!(s.code[3].contains("let z = 1;"));
    }

    #[test]
    fn line_numbers_are_preserved_across_multiline_literals() {
        let src = "let a = r#\"line one\nline two\nline three\"#;\nlet b = 2;\n";
        let s = scan(src);
        assert_eq!(s.code.len(), 5);
        assert!(s.code[3].contains("let b = 2;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\'' }\n";
        let s = scan(src);
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(s.code[0].contains("-> char"));
    }

    #[test]
    fn waiver_on_same_line_covers_that_line() {
        let src = "foo(); // audit: panic-ok — startup only\n";
        let s = scan(src);
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(s.waivers[0].key, "panic-ok");
        assert_eq!(s.waivers[0].covers, 1);
        assert_eq!(s.waivers[0].reason, "startup only");
    }

    #[test]
    fn waiver_comment_covers_next_code_line_skipping_prose() {
        let src = "\
// audit: relaxed-ok — monotonic counter; readers only ever
// observe totals after join.
x.fetch_add(1, Ordering::Relaxed);
";
        let s = scan(src);
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(s.waivers[0].covers, 3);
        assert!(s.waivers[0].reason.starts_with("monotonic counter"));
    }

    #[test]
    fn stacked_waivers_cover_the_same_line() {
        let src = "\
// audit: time-ok — wall time only feeds metrics
// audit: relaxed-ok — counter
thing();
";
        let s = scan(src);
        assert_eq!(s.waivers.len(), 2);
        assert_eq!(s.waivers[0].covers, 3);
        assert_eq!(s.waivers[1].covers, 3);
    }

    #[test]
    fn test_module_boundary_is_detected() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {}\n";
        let s = scan(src);
        assert_eq!(s.test_start, Some(2));
        assert!(s.is_production(1));
        assert!(!s.is_production(2));
    }
}
