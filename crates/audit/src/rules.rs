//! The invariant catalog: five families of lexical rules over the
//! production regions of scoped source files (see DESIGN.md §10).
//!
//! Each rule names the waiver key that can suppress it. A waiver only
//! counts if it covers the flagged line, uses a known key, and carries
//! a non-empty reason; unknown keys, missing reasons, and waivers that
//! suppress nothing ("stale") are themselves violations, so the waiver
//! inventory can never rot silently.

use crate::lexer::FileScan;

/// Names every waiver key the auditor understands.
pub const KNOWN_KEYS: &[&str] = &[
    "unordered-ok",
    "panic-ok",
    "time-ok",
    "rng-ok",
    "relaxed-ok",
    "order-exact",
    "lock-order-ok",
    "lock-blocking-ok",
    "lock-guard-ok",
];

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier, e.g. `hash-iteration`.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

struct Rule {
    id: &'static str,
    waiver_key: &'static str,
    /// Path scopes: a file is in scope if its repo-relative path starts
    /// with any of these prefixes (exact file paths work too).
    scopes: &'static [&'static str],
    /// Paths excluded even when a scope matches.
    excludes: &'static [&'static str],
    /// Returns a message if the code line violates the rule.
    check: fn(&str) -> Option<String>,
}

/// Rule 1 — container iteration order. Hash containers iterate in a
/// randomized (or at best unspecified) order; any use on paths that
/// feed grouped, emitted, or persisted output risks run-to-run drift.
/// The deterministic substitute is `BTreeMap`/`BTreeSet`.
fn check_hash_container(code: &str) -> Option<String> {
    for token in ["HashMap", "HashSet"] {
        if has_token(code, token) {
            return Some(format!(
                "{token} on an order-sensitive path — use BTreeMap/BTreeSet \
                 or waive with `audit: unordered-ok`"
            ));
        }
    }
    None
}

/// Rule 2 — panic freedom. The engine, DAG scheduler, dataset store and
/// block store promise `MrError`/`DatasetError` propagation; a panic in
/// a worker thread poisons locks and loses counter deltas.
fn check_panic(code: &str) -> Option<String> {
    for token in [
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ] {
        if code.contains(token) {
            let name = token.trim_start_matches('.').trim_end_matches('(');
            return Some(format!(
                "{name} in error-propagating code — route through the crate \
                 error type or waive with `audit: panic-ok`"
            ));
        }
    }
    None
}

/// Rule 3a — wall-clock reads. `Instant`/`SystemTime` in result-
/// affecting code makes output depend on scheduling and machine speed.
/// Metrics-only reads are waived with `time-ok`.
fn check_wall_clock(code: &str) -> Option<String> {
    for token in ["Instant::now", "SystemTime::now"] {
        if code.contains(token) {
            return Some(format!(
                "{token} in result-affecting code — timing may only feed \
                 metrics (waive with `audit: time-ok`)"
            ));
        }
    }
    None
}

/// Rule 3b — nondeterministic randomness. Entropy-seeded RNGs make runs
/// unreproducible; all randomness must flow from an explicit seed.
fn check_rng(code: &str) -> Option<String> {
    for token in ["thread_rng", "from_entropy", "rand::random"] {
        if code.contains(token) {
            return Some(format!(
                "{token}: entropy-seeded RNG — derive from an explicit seed \
                 or waive with `audit: rng-ok`"
            ));
        }
    }
    None
}

/// Rule 4 — atomic ordering discipline. `Relaxed` is fine for monotonic
/// metric counters but unsound for flags that publish data written by
/// another thread; each use must be waived with a reason saying which
/// it is.
fn check_relaxed(code: &str) -> Option<String> {
    code.contains("Ordering::Relaxed").then(|| {
        "Ordering::Relaxed — must not guard data visibility; if this is a \
         plain counter, waive with `audit: relaxed-ok`"
            .to_string()
    })
}

/// Rule 5 — float reduction order. Float addition is not associative;
/// `.sum()`/`.fold(..)` over values that originate from parallel
/// partitions must be marked order-exact (fixed iteration order, or an
/// order-insensitive op like min/max).
fn check_float_reduction(code: &str) -> Option<String> {
    let reduces = code.contains(".sum(") || code.contains(".sum::<") || code.contains(".fold(");
    (reduces && code.contains("f64")).then(|| {
        "f64 reduction — float addition is order-sensitive; fix the \
         iteration order and mark with `audit: order-exact`"
            .to_string()
    })
}

/// True if `token` occurs delimited by non-identifier characters (so
/// `HashMap` does not match `MyHashMapLike`).
fn has_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + token.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

const RULES: &[Rule] = &[
    Rule {
        id: "hash-iteration",
        waiver_key: "unordered-ok",
        scopes: &[
            "crates/core/src/mr/",
            "crates/core/src/incremental.rs",
            "crates/mapreduce/src/engine.rs",
            "crates/mapreduce/src/dag.rs",
            "crates/mapreduce/src/dataset.rs",
            "crates/mapreduce/src/service.rs",
            "crates/mapreduce/src/distrib/",
            "crates/cli/src/serve.rs",
        ],
        excludes: &[],
        check: check_hash_container,
    },
    Rule {
        id: "no-panic",
        waiver_key: "panic-ok",
        scopes: &[
            "crates/mapreduce/src/engine.rs",
            "crates/mapreduce/src/dag.rs",
            "crates/mapreduce/src/dataset.rs",
            "crates/mapreduce/src/blockstore.rs",
            "crates/mapreduce/src/service.rs",
            "crates/mapreduce/src/distrib/",
        ],
        excludes: &[],
        check: check_panic,
    },
    Rule {
        id: "wall-clock",
        waiver_key: "time-ok",
        scopes: &[
            "crates/core/src/",
            "crates/mapreduce/src/",
            "crates/cli/src/serve.rs",
        ],
        excludes: &["crates/mapreduce/src/metrics.rs"],
        check: check_wall_clock,
    },
    Rule {
        id: "nondeterministic-rng",
        waiver_key: "rng-ok",
        scopes: &[
            "crates/core/src/",
            "crates/mapreduce/src/",
            "crates/cli/src/serve.rs",
        ],
        excludes: &[],
        check: check_rng,
    },
    Rule {
        id: "relaxed-ordering",
        waiver_key: "relaxed-ok",
        scopes: &[
            "crates/core/src/",
            "crates/mapreduce/src/",
            "crates/cli/src/serve.rs",
        ],
        excludes: &[],
        check: check_relaxed,
    },
    Rule {
        id: "float-reduction",
        waiver_key: "order-exact",
        // cholesky.rs hosts the lane-batched density kernels whose
        // reductions back the bit-identity contract of DESIGN.md §13.
        scopes: &["crates/core/src/", "crates/linalg/src/cholesky.rs"],
        excludes: &[],
        check: check_float_reduction,
    },
];

fn in_scope(rule: &Rule, path: &str) -> bool {
    rule.scopes.iter().any(|s| path.starts_with(s))
        && !rule.excludes.iter().any(|e| path.starts_with(e))
}

/// Last line (1-based, inclusive) of the statement starting on `start`:
/// rustfmt freely re-wraps statements, so a waiver must keep covering
/// its statement however many lines the formatter spreads it over. The
/// heuristic walks forward until a code line ends in `;`, `{`, `}`,
/// or `,`, bounded so a miss cannot blanket a whole file.
pub fn statement_end(scan: &FileScan, start: usize) -> usize {
    const MAX_SPAN: usize = 12;
    let mut line = start;
    while line <= scan.code.len() && line < start + MAX_SPAN {
        let code = scan.code[line - 1].trim_end();
        // `,` terminates too: a struct-literal field or match arm is its
        // own unit, and without it one waiver would blanket its siblings.
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') || code.ends_with(',')
        {
            return line;
        }
        line += 1;
    }
    line.min(scan.code.len())
}

/// Runs every rule over one lexed file, plus any findings the global
/// lock-discipline pass attributed to it (those flow through the same
/// waiver machinery, so lock waivers get the identical hygiene checks).
/// `path` is repo-relative with forward slashes.
pub fn check_file(
    path: &str,
    scan: &FileScan,
    lock_findings: &[crate::locks::Finding],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Waiver bookkeeping: which waivers actually suppressed something.
    let mut used = vec![false; scan.waivers.len()];

    for finding in lock_findings {
        let waiver = scan.waivers.iter().position(|w| {
            w.key == finding.key
                && w.covers <= finding.line
                && finding.line <= statement_end(scan, w.covers)
        });
        match waiver {
            Some(w) if !scan.waivers[w].reason.is_empty() => used[w] = true,
            Some(w) => {
                used[w] = true;
                violations.push(Violation {
                    file: path.to_string(),
                    line: scan.waivers[w].line,
                    rule: finding.rule,
                    message: format!(
                        "waiver `{}` has no reason — every waiver must \
                         justify itself",
                        scan.waivers[w].key
                    ),
                });
            }
            None => violations.push(Violation {
                file: path.to_string(),
                line: finding.line,
                rule: finding.rule,
                message: finding.message.clone(),
            }),
        }
    }

    for rule in RULES {
        if !in_scope(rule, path) {
            continue;
        }
        for (idx, code) in scan.code.iter().enumerate() {
            let line = idx + 1;
            if !scan.is_production(line) {
                break;
            }
            let Some(message) = (rule.check)(code) else {
                continue;
            };
            let waiver = scan.waivers.iter().position(|w| {
                w.key == rule.waiver_key
                    && w.covers <= line
                    && line <= statement_end(scan, w.covers)
            });
            match waiver {
                Some(w) if !scan.waivers[w].reason.is_empty() => used[w] = true,
                Some(w) => {
                    used[w] = true;
                    violations.push(Violation {
                        file: path.to_string(),
                        line: scan.waivers[w].line,
                        rule: rule.id,
                        message: format!(
                            "waiver `{}` has no reason — every waiver must \
                             justify itself",
                            scan.waivers[w].key
                        ),
                    });
                }
                None => violations.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: rule.id,
                    message,
                }),
            }
        }
    }

    // Waiver hygiene applies to every scanned file, in or out of rule
    // scope: unknown keys are typos, stale waivers are rot.
    for (w, waiver) in scan.waivers.iter().enumerate() {
        if !KNOWN_KEYS.contains(&waiver.key.as_str()) {
            violations.push(Violation {
                file: path.to_string(),
                line: waiver.line,
                rule: "waiver-hygiene",
                message: format!(
                    "unknown waiver key `{}` (known: {})",
                    waiver.key,
                    KNOWN_KEYS.join(", ")
                ),
            });
        } else if !used[w] {
            violations.push(Violation {
                file: path.to_string(),
                line: waiver.line,
                rule: "waiver-hygiene",
                message: format!(
                    "stale waiver `{}` — covers line {} but suppresses \
                     nothing; remove it",
                    waiver.key, waiver.covers
                ),
            });
        }
    }

    violations.sort();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, &scan(src), &[])
    }

    #[test]
    fn hash_map_flagged_in_scoped_path_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check("crates/core/src/mr/pipeline.rs", src).len(), 1);
        assert_eq!(check("crates/eval/src/rnia.rs", src).len(), 0);
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "\
// audit: unordered-ok — membership probes only; never iterated.
use std::collections::HashSet;
";
        assert!(check("crates/core/src/mr/coregen.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "use std::collections::HashSet; // audit: unordered-ok\n";
        let v = check("crates/core/src/mr/coregen.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no reason"));
    }

    #[test]
    fn waiver_covers_a_statement_rewrapped_over_two_lines() {
        // rustfmt may split `counter.fetch_add(n, Ordering::Relaxed);`
        // across lines; the waiver must still cover the whole statement.
        let src = "\
// audit: relaxed-ok — monotonic counter, read after joins.
self.bytes_read
    .fetch_add(out.len() as u64, Ordering::Relaxed);
";
        assert!(check("crates/mapreduce/src/blockstore.rs", src).is_empty());
    }

    #[test]
    fn waiver_span_stops_at_a_struct_field_comma() {
        // A struct-literal field ends in `,`; the first waiver must not
        // blanket the next field, whose own waiver would then be stale.
        let src = "\
let m = Metrics {
    // audit: relaxed-ok — read after joins.
    total: shared.total.load(Ordering::Relaxed),
    // audit: relaxed-ok — as above.
    failed: shared.failed.load(Ordering::Relaxed),
};
";
        assert!(check("crates/mapreduce/src/dag.rs", src).is_empty());
    }

    #[test]
    fn stale_and_unknown_waivers_are_violations() {
        let src = "\
let x = 1; // audit: panic-ok — nothing here panics though
let y = 2; // audit: no-such-key — typo
";
        let v = check("crates/mapreduce/src/engine.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.message.contains("stale waiver")));
        assert!(v.iter().any(|v| v.message.contains("unknown waiver key")));
    }

    #[test]
    fn panic_tokens_flagged_and_unwrap_or_is_not() {
        let src = "\
let a = x.unwrap();
let b = x.unwrap_or(0);
let c = x.unwrap_or_else(Vec::new);
";
        let v = check("crates/mapreduce/src/dataset.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn test_module_is_not_scanned() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
";
        assert!(check("crates/mapreduce/src/engine.rs", src).is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "\
let m = \"HashMap here\"; // HashMap there
/* Instant::now() */
let s = r#\"panic!()\"#;
";
        assert!(check("crates/mapreduce/src/engine.rs", src).is_empty());
    }

    #[test]
    fn relaxed_needs_waiver_and_float_reduction_detected() {
        let relaxed = "c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(check("crates/mapreduce/src/dag.rs", relaxed).len(), 1);
        let float = "let s: f64 = xs.iter().sum();\n";
        assert_eq!(check("crates/core/src/em.rs", float).len(), 1);
        let int = "let s: u64 = xs.iter().sum();\n";
        assert!(check("crates/core/src/em.rs", int).is_empty());
        // The density-kernel host in p3c-linalg is in scope too.
        assert_eq!(check("crates/linalg/src/cholesky.rs", float).len(), 1);
        assert!(check("crates/linalg/src/matrix.rs", float).is_empty());
    }

    #[test]
    fn lock_findings_flow_through_the_waiver_machinery() {
        use crate::locks::Finding;
        let finding = |line| Finding {
            line,
            rule: "lock-blocking",
            key: "lock-blocking-ok",
            message: "TCP frame write while holding `backend.state`".to_string(),
        };
        // Unwaived: surfaces as a violation at the finding's line.
        let bare = scan("self.call(&req);\n");
        let v = check_file(
            "crates/mapreduce/src/distrib/process.rs",
            &bare,
            &[finding(1)],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-blocking");
        // Waived with a reason: suppressed, and the waiver is not stale.
        let waived = scan(
            "// audit: lock-blocking-ok — control plane is serialized by design.\n\
             self.call(&req);\n",
        );
        let v = check_file(
            "crates/mapreduce/src/distrib/process.rs",
            &waived,
            &[finding(2)],
        );
        assert!(v.is_empty(), "{v:?}");
        // A lock waiver that suppresses nothing is stale.
        let v = check_file("crates/mapreduce/src/distrib/process.rs", &waived, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stale waiver"));
    }

    #[test]
    fn identifier_boundaries_respected() {
        let src = "struct MyHashMapLike;\n";
        assert!(check("crates/core/src/mr/histogram.rs", src).is_empty());
    }
}
