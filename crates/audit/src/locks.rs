//! The lock-discipline pass: checks every `Mutex`/`RwLock`/`Condvar`
//! acquisition site in the concurrency-bearing modules against the
//! declared lock hierarchy of DESIGN.md §15.
//!
//! Three rules (each with its own waiver key, enforced through the same
//! waiver machinery as the lexical rules in [`crate::rules`]):
//!
//! * **lock-order** (`lock-order-ok`) — a thread must acquire locks in
//!   strictly ascending rank order. Every acquisition site must name a
//!   lock declared in the hierarchy table; acquiring a lower- or
//!   equal-ranked lock while a higher one is held is a potential
//!   deadlock edge. The union of observed edges (waived or not) must be
//!   acyclic — a cycle is never waivable, since individually-reasonable
//!   waivers can compose into a deadlock.
//! * **lock-blocking** (`lock-blocking-ok`) — no blocking operation
//!   (TCP frame I/O, file I/O, channel recv, `JoinHandle::join`,
//!   `thread::sleep`, `Condvar::wait` on a foreign lock) while a lock
//!   is held, directly or via a call to a function that blocks.
//! * **lock-guard** (`lock-guard-ok`) — guard-lifetime hygiene: a guard
//!   bound with `let _ = …` drops immediately (the critical section is
//!   empty), and `.lock().unwrap()` treats a guard as a `Result`.
//!
//! The analysis is lexical but stateful: it tracks guard scopes from
//! binding to drop (brace depth, explicit `drop(g)`, temporaries to
//! statement end, scrutinee temporaries to the end of their block) and
//! is inter-procedural one workspace at a time — every function in the
//! scoped files gets a summary of the locks it may acquire and the
//! blocking operations it may perform, propagated to a fixpoint over
//! call sites whose callee name resolves unambiguously.

use crate::lexer::FileScan;
use crate::rules::statement_end;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One row of the DESIGN.md §15 hierarchy table.
#[derive(Debug, Clone)]
pub struct LockDef {
    /// Rank in the total acquisition order (strictly ascending).
    pub rank: u16,
    /// Hierarchy name, e.g. `dataset.inner`.
    pub name: String,
    /// Repo-relative path prefix of the file(s) whose sites this row
    /// covers.
    pub file_prefix: String,
    /// Field / binding names that identify the lock at its acquisition
    /// sites (`self.<field>.lock()`, `<binding>.lock()`).
    pub fields: Vec<String>,
    /// Lock names this lock may be acquired while holding (the
    /// "acquired while holding" column), checked for rank consistency.
    pub nests_inside: Vec<String>,
    /// 1-based line of the row in DESIGN.md (for error reports).
    pub row_line: usize,
}

/// One lock-discipline finding, before waiver resolution (which happens
/// in [`crate::rules::check_file`] so waiver hygiene stays unified).
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line of the finding.
    pub line: usize,
    /// Rule id (`lock-order`, `lock-blocking`, `lock-guard`).
    pub rule: &'static str,
    /// Waiver key that can suppress it.
    pub key: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Files the lock pass scans (path prefixes, repo-relative).
pub const LOCK_SCOPES: &[&str] = &[
    "crates/mapreduce/src/service.rs",
    "crates/mapreduce/src/engine.rs",
    "crates/mapreduce/src/pool.rs",
    "crates/mapreduce/src/blockstore.rs",
    "crates/mapreduce/src/dataset.rs",
    "crates/mapreduce/src/dag.rs",
    "crates/mapreduce/src/kernel.rs",
    "crates/mapreduce/src/distrib/",
    "crates/cli/src/serve.rs",
];

/// Whether the lock pass scans this repo-relative path.
pub fn in_lock_scope(path: &str) -> bool {
    LOCK_SCOPES.iter().any(|s| path.starts_with(s))
}

// ------------------------------------------------------ hierarchy ---

/// Parses the `§15` hierarchy table out of DESIGN.md: rows of
/// `| <rank> | `name` | `file` | `field`[, `field`] | ... | <names> |`.
/// Returns the defs and any consistency problems with the table itself.
pub fn load_hierarchy(design: &Path) -> Result<(Vec<LockDef>, Vec<String>), String> {
    let text = std::fs::read_to_string(design)
        .map_err(|e| format!("cannot read {}: {e}", design.display()))?;
    let mut defs = Vec::new();
    let mut in_section = false;
    for (idx, line) in text.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.contains("Lock hierarchy");
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').collect();
        if cells.len() < 5 {
            continue;
        }
        let Ok(rank) = cells[0].trim().parse::<u16>() else {
            continue; // header or separator row
        };
        let name = backticked(cells[1]).into_iter().next().unwrap_or_default();
        let file_prefix = backticked(cells[2]).into_iter().next().unwrap_or_default();
        let fields = backticked(cells[3]);
        let nests_inside = backticked(cells[cells.len() - 1]);
        if name.is_empty() || file_prefix.is_empty() || fields.is_empty() {
            return Err(format!(
                "DESIGN.md:{}: malformed hierarchy row (need backticked \
                 lock name, file, and at least one field)",
                idx + 1
            ));
        }
        defs.push(LockDef {
            rank,
            name,
            file_prefix,
            fields,
            nests_inside,
            row_line: idx + 1,
        });
    }
    if defs.is_empty() {
        return Err("DESIGN.md has no `Lock hierarchy` table (§15)".to_string());
    }
    let mut problems = Vec::new();
    let by_name: BTreeMap<&str, &LockDef> = defs.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut ranks_seen: BTreeMap<u16, &str> = BTreeMap::new();
    for def in &defs {
        if let Some(other) = ranks_seen.insert(def.rank, &def.name) {
            problems.push(format!(
                "DESIGN.md:{}: rank {} assigned to both `{}` and `{}`",
                def.row_line, def.rank, other, def.name
            ));
        }
        for inside in &def.nests_inside {
            match by_name.get(inside.as_str()) {
                None => problems.push(format!(
                    "DESIGN.md:{}: `{}` claims to nest inside unknown lock `{}`",
                    def.row_line, def.name, inside
                )),
                Some(outer) if outer.rank >= def.rank => problems.push(format!(
                    "DESIGN.md:{}: `{}` (rank {}) claims to nest inside `{}` \
                     (rank {}) — declared nesting must be ascending",
                    def.row_line, def.name, def.rank, inside, outer.rank
                )),
                Some(_) => {}
            }
        }
    }
    Ok((defs, problems))
}

fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        let Some(len) = rest[start + 1..].find('`') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
    }
    out
}

// ------------------------------------------------------- analysis ---

/// A lock acquisition site found in one file.
#[derive(Debug, Clone)]
struct Site {
    line: usize,
    /// Index into the defs table, or None if undeclared.
    def: Option<usize>,
    /// Receiver's final identifier (for messages on undeclared locks).
    recv: String,
    /// Guard binding name, if bound with `let <name> = …`.
    binder: Option<String>,
    /// Last line (inclusive) the guard is provably held.
    end_line: usize,
}

/// Blocking tokens: operations that can park the thread indefinitely or
/// for I/O. Matched against the blanked code stream.
const BLOCKING: &[(&str, &str)] = &[
    ("read_frame(", "TCP frame read"),
    ("write_frame(", "TCP frame write"),
    (".read_exact(", "socket/file read"),
    (".write_all(", "socket/file write"),
    (".flush()", "stream flush"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv"),
    (".join()", "JoinHandle::join"),
    ("thread::sleep(", "thread::sleep"),
    (".accept()", "TcpListener::accept"),
    ("TcpStream::connect", "TCP connect"),
    ("File::open(", "file open"),
    ("File::create(", "file create"),
    ("fs::read", "file read"),
    ("fs::write", "file write"),
];

/// Call-site names never used for summary propagation: too generic to
/// resolve to one function, or std methods that shadow workspace fns.
const CALL_STOPLIST: &[&str] = &[
    "new",
    "default",
    "drop",
    "clone",
    "len",
    "is_empty",
    "fmt",
    "read",
    "write",
    "lock",
    "wait",
    "join",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "take",
    "next",
    "send",
    "recv",
    "spawn",
    "flush",
    "accept",
    "connect",
    "iter",
    "map",
    "filter",
    "collect",
    "unwrap",
    "expect",
    "ok",
    "err",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "to_string",
    "run",
    "main",
    "name",
    "extend",
    "contains",
    "sleep",
    "load",
    "store",
];

/// Per-function facts extracted in pass 1 and closed over calls in
/// pass 2.
#[derive(Debug, Clone, Default)]
struct FnSummary {
    /// Defs (by index) of locks the function may acquire.
    locks: BTreeSet<usize>,
    /// Blocking operations it may perform: description, with call-chain
    /// provenance for propagated entries.
    blocking: BTreeSet<String>,
    /// Callee names invoked from the body.
    calls: BTreeSet<String>,
}

struct FileFacts<'a> {
    path: String,
    scan: &'a FileScan,
    /// `fn` name per body line (1-based), for summary attribution.
    fn_of_line: Vec<Option<String>>,
    sites: Vec<Site>,
}

/// Runs the lock-discipline pass over all scoped files. Returns
/// per-file findings keyed by repo-relative path; global problems
/// (hierarchy table inconsistencies, acquisition-graph cycles) are
/// reported under the pseudo-file `DESIGN.md`.
pub fn analyze(
    defs: &[LockDef],
    table_problems: &[String],
    files: &[(String, &FileScan)],
) -> BTreeMap<String, Vec<Finding>> {
    let mut findings: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for p in table_problems {
        findings
            .entry("DESIGN.md".to_string())
            .or_default()
            .push(Finding {
                line: 1,
                rule: "lock-order",
                key: "lock-order-ok",
                message: p.clone(),
            });
    }

    let facts: Vec<FileFacts> = files
        .iter()
        .filter(|(path, _)| in_lock_scope(path))
        .map(|(path, scan)| extract_facts(defs, path, scan))
        .collect();

    // Pass 2: function summaries to fixpoint. Names must resolve to
    // exactly one function across the scoped files to propagate.
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    for f in &facts {
        for name in f.fn_of_line.iter().flatten() {
            if !summaries.contains_key(name) && !ambiguous.is_empty() && ambiguous.contains(name) {
                continue;
            }
            summaries.entry(name.clone()).or_default();
        }
    }
    // Seed with direct facts.
    for f in &facts {
        collect_direct(f, &mut summaries, &mut ambiguous);
    }
    for name in &ambiguous {
        summaries.remove(name);
    }
    // Fixpoint closure over calls.
    loop {
        let mut changed = false;
        let names: Vec<String> = summaries.keys().cloned().collect();
        for name in &names {
            let calls: Vec<String> = summaries[name].calls.iter().cloned().collect();
            for callee in calls {
                if callee == *name {
                    continue; // trait-dispatch self-name (see extract)
                }
                let Some(cs) = summaries.get(&callee).cloned() else {
                    continue;
                };
                let s = summaries.get_mut(name).unwrap();
                for l in cs.locks {
                    changed |= s.locks.insert(l);
                }
                for b in cs.blocking {
                    let tagged = if b.contains(" via ") {
                        b
                    } else {
                        format!("{b} via `{callee}()`")
                    };
                    changed |= s.blocking.insert(tagged);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: walk each file with the summaries, tracking held guards.
    let mut edges: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for f in &facts {
        let file_findings = check_file_locks(defs, f, &summaries, &mut edges);
        if !file_findings.is_empty() {
            findings
                .entry(f.path.clone())
                .or_default()
                .extend(file_findings);
        }
    }

    // Acquisition-graph cycle check over every observed edge, waived or
    // not: a cycle is a deadlock recipe no local waiver can justify.
    if let Some(cycle) = find_cycle(defs.len(), &edges) {
        let names: Vec<&str> = cycle.iter().map(|&i| defs[i].name.as_str()).collect();
        findings
            .entry("DESIGN.md".to_string())
            .or_default()
            .push(Finding {
                line: 1,
                rule: "lock-order",
                key: "lock-order-ok",
                message: format!(
                    "acquisition graph contains a cycle: {} — a deadlock is \
                 schedulable; restructure, do not waive",
                    names.join(" -> ")
                ),
            });
    }

    findings
}

fn collect_direct(
    f: &FileFacts,
    summaries: &mut BTreeMap<String, FnSummary>,
    ambiguous: &mut BTreeSet<String>,
) {
    // A name defined in more than one place gets conservative treatment:
    // no propagation (union summaries proved too noisy in practice).
    let mut seen_here: BTreeSet<&String> = BTreeSet::new();
    for (idx, name) in f.fn_of_line.iter().enumerate() {
        let Some(name) = name else { continue };
        let line = idx + 1;
        if seen_here.insert(name) && f.fn_of_line.get(idx.wrapping_sub(1)).is_some() {
            // First body line of this fn in this file: if some other file
            // (or an earlier fn in this one) already claimed the name
            // with a *different* definition, mark ambiguous.
            let is_fn_start = idx == 0 || f.fn_of_line[idx - 1].as_ref() != Some(name);
            if is_fn_start {
                let s = summaries.entry(name.clone()).or_default();
                if s.calls.contains("\u{0}defined") {
                    ambiguous.insert(name.clone());
                } else {
                    s.calls.insert("\u{0}defined".to_string());
                }
            }
        }
        let code = &f.scan.code[idx];
        let summary = summaries.entry(name.clone()).or_default();
        for site in f.sites.iter().filter(|s| s.line == line) {
            if let Some(d) = site.def {
                summary.locks.insert(d);
            }
        }
        for (token, desc) in BLOCKING {
            if code.contains(token) {
                summary
                    .blocking
                    .insert(format!("{desc} (`{}`)", token.trim_end_matches('(')));
            }
        }
        for callee in call_sites(code) {
            summary.calls.insert(callee);
        }
    }
}

/// Extracts identifier call sites (`name(` / `.name(`) not on the
/// stoplist, lowercase-initial (types and variants are constructors),
/// and not macro invocations or `fn` definitions.
fn call_sites(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let ident = &code[start..i];
            let next = bytes.get(i).copied().map(|b| b as char);
            let prev_ident = code[..start].trim_end();
            let is_def = prev_ident.ends_with("fn");
            let is_macro = next == Some('!');
            if next == Some('(')
                && !is_def
                && !is_macro
                && ident.chars().next().is_some_and(|c| c.is_lowercase())
                && !CALL_STOPLIST.contains(&ident)
            {
                out.push(ident.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

fn extract_facts<'a>(defs: &[LockDef], path: &str, scan: &'a FileScan) -> FileFacts<'a> {
    let n = scan.code.len();
    // Brace depth *after* each line, and the fn owning each line.
    let mut depth_after = vec![0i32; n];
    let mut fn_of_line: Vec<Option<String>> = vec![None; n];
    let mut depth = 0i32;
    // Stack of (fn name, depth at which its body closes).
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for idx in 0..n {
        let line = idx + 1;
        if !scan.is_production(line) {
            depth_after[idx] = depth;
            continue;
        }
        let code = &scan.code[idx];
        if let Some(name) = fn_def_name(code) {
            pending_fn = Some(name);
        }
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        if opens > 0 {
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
        }
        depth += opens - closes;
        while let Some(&(_, d)) = fn_stack.last() {
            if depth <= d {
                fn_stack.pop();
            } else {
                break;
            }
        }
        fn_of_line[idx] = fn_stack.last().map(|(name, _)| name.clone());
        depth_after[idx] = depth;
    }

    let mut sites = Vec::new();
    for idx in 0..n {
        let line = idx + 1;
        if !scan.is_production(line) {
            continue;
        }
        let code = scan.code[idx].clone();
        for (pos, token) in acquisition_tokens(&code) {
            let recv = receiver(scan, idx, pos);
            let field = recv.rsplit('.').next().unwrap_or(&recv);
            let field = field.rsplit("::").next().unwrap_or(field);
            let field = field
                .trim_end_matches("()")
                .split('[')
                .next()
                .unwrap_or(field)
                .to_string();
            let def = resolve(defs, path, &field);
            let after = pos + token.len();
            let chained = next_nonspace(scan, idx, after) == Some('.');
            let trimmed = code.trim_start();
            let binder = if !chained && trimmed.starts_with("let ") {
                let rest = trimmed[4..].trim_start();
                let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                (!name.is_empty()).then_some(name)
            } else {
                None
            };
            let stmt_end = statement_end(scan, line);
            let end_line = if let Some(b) = &binder {
                if b == "_" {
                    stmt_end // `let _ =` drops at once; flagged below
                } else {
                    guard_scope_end(scan, &depth_after, idx, stmt_end, Some(b))
                }
            } else {
                // Temporary: to statement end — unless the statement
                // opens a block (if-let / while-let / for / match
                // scrutinee), where the temporary lives to block close.
                let opens_block =
                    (line..=stmt_end).any(|l| scan.code[l - 1].trim_end().ends_with('{'));
                if opens_block {
                    guard_scope_end(scan, &depth_after, stmt_end - 1, stmt_end, None)
                } else {
                    stmt_end
                }
            };
            sites.push(Site {
                line,
                def,
                recv: field,
                binder,
                end_line,
            });
        }
    }

    FileFacts {
        path: path.to_string(),
        scan,
        fn_of_line,
        sites,
    }
}

/// Positions of `.lock()` / bare `.read()` / `.write()` tokens.
fn acquisition_tokens(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for token in [".lock()", ".read()", ".write()"] {
        let mut start = 0;
        while let Some(p) = code[start..].find(token) {
            out.push((start + p, token));
            start += p + token.len();
        }
    }
    out.sort();
    out
}

/// Reconstructs the receiver chain ending at `pos` (the `.` of the
/// acquisition token), walking back across continuation lines.
fn receiver(scan: &FileScan, idx: usize, pos: usize) -> String {
    let mut chain = String::new();
    let mut line = idx;
    let mut chars: Vec<char> = scan.code[line].chars().collect();
    let mut i = byte_to_char(&scan.code[line], pos);
    loop {
        while i > 0 {
            let c = chars[i - 1];
            if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
                chain.insert(0, c);
                i -= 1;
            } else if c == ']' || c == ')' {
                // Skip a balanced index / call-argument group.
                let open = if c == ']' { '[' } else { '(' };
                let mut bal = 0i32;
                let mut j = i;
                while j > 0 {
                    let cc = chars[j - 1];
                    if cc == c {
                        bal += 1;
                    } else if cc == open {
                        bal -= 1;
                        if bal == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
                if j == 0 {
                    return chain; // unbalanced: give up with what we have
                }
                for k in (j - 1..i).rev() {
                    chain.insert(0, chars[k]);
                }
                i = j - 1;
            } else if c.is_whitespace() && chars[..i].iter().all(|c| c.is_whitespace()) {
                // Only indentation left on this line: continuation.
                break;
            } else {
                return chain;
            }
        }
        // Start of line (or its indentation) reached with the chain
        // still open (a rustfmt-wrapped chain like
        // `self.tenants\n    .lock()`): walk into the previous line if
        // the chain so far begins with `.` or is empty.
        if line == 0 || !(chain.is_empty() || chain.starts_with('.')) {
            return chain;
        }
        line -= 1;
        let prev = scan.code[line].trim_end();
        if prev.is_empty() {
            return chain;
        }
        chars = prev.chars().collect();
        i = chars.len();
    }
}

fn byte_to_char(s: &str, byte_pos: usize) -> usize {
    s[..byte_pos].chars().count()
}

/// First non-whitespace char at/after (`idx`, byte `from`), looking up
/// to 3 lines ahead (method chains re-wrapped by rustfmt).
fn next_nonspace(scan: &FileScan, idx: usize, from: usize) -> Option<char> {
    if let Some(c) = scan.code[idx][from..].chars().find(|c| !c.is_whitespace()) {
        return Some(c);
    }
    for l in idx + 1..(idx + 4).min(scan.code.len()) {
        if let Some(c) = scan.code[l].chars().find(|c| !c.is_whitespace()) {
            return Some(c);
        }
    }
    None
}

/// Last line the guard born on `idx` stays held: until brace depth
/// drops below the binding depth, or an explicit `drop(<binder>)`.
fn guard_scope_end(
    scan: &FileScan,
    depth_after: &[i32],
    idx: usize,
    stmt_end: usize,
    binder: Option<&str>,
) -> usize {
    let born_depth = depth_after[idx];
    let mut l = stmt_end + 1;
    while l <= scan.code.len() {
        if !scan.is_production(l) {
            return l - 1;
        }
        if let Some(b) = binder {
            let code = &scan.code[l - 1];
            for pat in [format!("drop({b})"), format!("drop({b});")] {
                if code.contains(pat.as_str()) {
                    return l;
                }
            }
        }
        if depth_after[l - 1] < born_depth {
            return l;
        }
        l += 1;
    }
    scan.code.len()
}

fn resolve(defs: &[LockDef], path: &str, field: &str) -> Option<usize> {
    defs.iter()
        .enumerate()
        .filter(|(_, d)| path.starts_with(&d.file_prefix) && d.fields.iter().any(|f| f == field))
        .max_by_key(|(_, d)| d.file_prefix.len())
        .map(|(i, _)| i)
}

fn fn_def_name(code: &str) -> Option<String> {
    let p = code.find("fn ")?;
    if p > 0 {
        let before = code[..p].chars().next_back();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
    }
    let rest = &code[p + 3..];
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Pass 3 for one file: walk lines with the active-guard set, emitting
/// rank-order, blocking-under-lock and guard-hygiene findings.
fn check_file_locks(
    defs: &[LockDef],
    f: &FileFacts,
    summaries: &BTreeMap<String, FnSummary>,
    edges: &mut BTreeSet<(usize, usize, String)>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let scan = f.scan;

    // Guard hygiene is per-site.
    for site in &f.sites {
        let code = &scan.code[site.line - 1];
        if site.binder.as_deref() == Some("_") {
            out.push(Finding {
                line: site.line,
                rule: "lock-guard",
                key: "lock-guard-ok",
                message: format!(
                    "guard of `{}` bound to `_` drops immediately — the \
                     critical section is empty; bind it to a named guard",
                    site_name(defs, site)
                ),
            });
        }
        for tok in [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"] {
            if code.contains(tok) {
                out.push(Finding {
                    line: site.line,
                    rule: "lock-guard",
                    key: "lock-guard-ok",
                    message: format!(
                        "`{tok}` — parking_lot guards are not Results; \
                         unwrapping a lock hides a poisoned-lock policy"
                    ),
                });
            }
        }
        if site.def.is_none() {
            out.push(Finding {
                line: site.line,
                rule: "lock-order",
                key: "lock-order-ok",
                message: format!(
                    "acquisition of undeclared lock `{}` — every lock must \
                     have a rank in the DESIGN.md §15 hierarchy table",
                    site.recv
                ),
            });
        }
    }

    // Active-guard walk.
    for idx in 0..scan.code.len() {
        let line = idx + 1;
        if !scan.is_production(line) {
            break;
        }
        let held: Vec<&Site> = f
            .sites
            .iter()
            .filter(|s| s.def.is_some() && s.line < line && line <= s.end_line)
            .collect();
        // New acquisitions on this line, checked against what is held.
        for site in f.sites.iter().filter(|s| s.line == line) {
            let Some(d) = site.def else { continue };
            for h in &held {
                let hd = h.def.unwrap();
                edges.insert((hd, d, format!("{}:{}", f.path, line)));
                if defs[hd].rank >= defs[d].rank && hd != d {
                    out.push(Finding {
                        line,
                        rule: "lock-order",
                        key: "lock-order-ok",
                        message: format!(
                            "acquiring `{}` (rank {}) while holding `{}` (rank {}) \
                             — acquisition order must be strictly ascending",
                            defs[d].name, defs[d].rank, defs[hd].name, defs[hd].rank
                        ),
                    });
                } else if hd == d {
                    out.push(Finding {
                        line,
                        rule: "lock-order",
                        key: "lock-order-ok",
                        message: format!(
                            "reacquiring `{}` while already holding it — \
                             self-deadlock on a non-reentrant lock",
                            defs[d].name
                        ),
                    });
                }
            }
        }
        if held.is_empty() {
            continue;
        }
        let code = &scan.code[idx];
        let held_names = || {
            held.iter()
                .map(|h| defs[h.def.unwrap()].name.as_str())
                .collect::<Vec<_>>()
                .join("`, `")
        };
        // Direct blocking tokens under a held lock.
        for (token, desc) in BLOCKING {
            if code.contains(token) {
                out.push(Finding {
                    line,
                    rule: "lock-blocking",
                    key: "lock-blocking-ok",
                    message: format!(
                        "{desc} (`{}`) while holding `{}`",
                        token.trim_end_matches('('),
                        held_names()
                    ),
                });
            }
        }
        // Condvar::wait with a guard argument: waiting is fine on the
        // lock being waited with, a deadlock with any *other* lock held.
        if let Some(p) = code.find(".wait(") {
            let arg: String = code[p + 6..]
                .trim_start_matches(['&', ' '])
                .trim_start_matches("mut ")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let foreign: Vec<&&Site> = held
                .iter()
                .filter(|h| h.binder.as_deref() != Some(arg.as_str()))
                .collect();
            if !foreign.is_empty() {
                let names = foreign
                    .iter()
                    .map(|h| defs[h.def.unwrap()].name.as_str())
                    .collect::<Vec<_>>()
                    .join("`, `");
                out.push(Finding {
                    line,
                    rule: "lock-blocking",
                    key: "lock-blocking-ok",
                    message: format!(
                        "Condvar::wait while holding foreign lock `{names}` — \
                         the wait releases only its own mutex"
                    ),
                });
            }
        }
        // Calls whose summary acquires locks or blocks.
        let current_fn = f.fn_of_line[idx].as_deref();
        for callee in call_sites(code) {
            if Some(callee.as_str()) == current_fn {
                continue; // same-name dispatch is usually a trait impl
            }
            let Some(s) = summaries.get(&callee) else {
                continue;
            };
            for &d in &s.locks {
                for h in &held {
                    let hd = h.def.unwrap();
                    edges.insert((hd, d, format!("{}:{}", f.path, line)));
                    if defs[hd].rank >= defs[d].rank && hd != d {
                        out.push(Finding {
                            line,
                            rule: "lock-order",
                            key: "lock-order-ok",
                            message: format!(
                                "call to `{callee}()` may acquire `{}` (rank {}) \
                                 while holding `{}` (rank {})",
                                defs[d].name, defs[d].rank, defs[hd].name, defs[hd].rank
                            ),
                        });
                    } else if hd == d {
                        out.push(Finding {
                            line,
                            rule: "lock-order",
                            key: "lock-order-ok",
                            message: format!(
                                "call to `{callee}()` may reacquire `{}` already \
                                 held here — self-deadlock",
                                defs[d].name
                            ),
                        });
                    }
                }
            }
            for b in &s.blocking {
                out.push(Finding {
                    line,
                    rule: "lock-blocking",
                    key: "lock-blocking-ok",
                    message: format!("{b} via `{callee}()` while holding `{}`", held_names()),
                });
            }
        }
    }
    out.sort_by_key(|f| (f.line, f.message.clone()));
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    out
}

fn site_name(defs: &[LockDef], site: &Site) -> String {
    match site.def {
        Some(d) => defs[d].name.clone(),
        None => site.recv.clone(),
    }
}

/// DFS cycle search over the observed acquisition edges.
fn find_cycle(n: usize, edges: &BTreeSet<(usize, usize, String)>) -> Option<Vec<usize>> {
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for &(a, b, _) in edges {
        if a != b {
            adj[a].insert(b);
        }
    }
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack = Vec::new();
    fn dfs(
        u: usize,
        adj: &[BTreeSet<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[u] = 1;
        stack.push(u);
        for &v in &adj[u] {
            if color[v] == 1 {
                let start = stack.iter().position(|&x| x == v).unwrap();
                let mut cycle = stack[start..].to_vec();
                cycle.push(v);
                return Some(cycle);
            }
            if color[v] == 0 {
                if let Some(c) = dfs(v, adj, color, stack) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        color[u] = 2;
        None
    }
    (0..n).find_map(|u| {
        if color[u] == 0 {
            dfs(u, &adj, &mut color, &mut stack)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn defs() -> Vec<LockDef> {
        let rows = [
            (10u16, "svc.a", "crates/mapreduce/src/", vec!["a"]),
            (20, "svc.b", "crates/mapreduce/src/", vec!["b"]),
            (30, "svc.c", "crates/mapreduce/src/", vec!["c"]),
        ];
        rows.iter()
            .map(|(rank, name, file, fields)| LockDef {
                rank: *rank,
                name: name.to_string(),
                file_prefix: file.to_string(),
                fields: fields.iter().map(|s| s.to_string()).collect(),
                nests_inside: vec![],
                row_line: 1,
            })
            .collect()
    }

    fn run(src: &str) -> Vec<Finding> {
        let s = scan(src);
        let files = vec![("crates/mapreduce/src/service.rs".to_string(), &s)];
        let map = analyze(&defs(), &[], &files);
        map.get("crates/mapreduce/src/service.rs")
            .cloned()
            .unwrap_or_default()
    }

    #[test]
    fn ascending_nesting_is_clean() {
        let src = "\
fn ok(&self) {
    let ga = self.a.lock();
    let gb = self.b.lock();
    drop(gb);
    drop(ga);
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn descending_nesting_is_flagged() {
        let src = "\
fn bad(&self) {
    let gc = self.c.lock();
    let ga = self.a.lock();
}
";
        let v = run(src);
        assert!(
            v.iter().any(|f| f.rule == "lock-order" && f.line == 3),
            "{v:?}"
        );
    }

    #[test]
    fn temporary_guard_does_not_outlive_statement() {
        let src = "\
fn ok(&self) {
    self.c.lock().touch();
    let ga = self.a.lock();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let src = "\
fn ok(&self) {
    let gc = self.c.lock();
    drop(gc);
    let ga = self.a.lock();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn blocking_under_lock_is_flagged() {
        let src = "\
fn bad(&self) {
    let ga = self.a.lock();
    stream.write_all(&buf);
}
";
        let v = run(src);
        assert!(v.iter().any(|f| f.rule == "lock-blocking"), "{v:?}");
    }

    #[test]
    fn blocking_via_call_summary_is_flagged() {
        let src = "\
fn helper(&self) {
    self.stream.write_all(&buf);
}
fn bad(&self) {
    let ga = self.a.lock();
    self.helper();
}
";
        let v = run(src);
        assert!(
            v.iter()
                .any(|f| f.rule == "lock-blocking" && f.message.contains("helper")),
            "{v:?}"
        );
    }

    #[test]
    fn rank_violation_via_call_summary_is_flagged() {
        let src = "\
fn takes_a(&self) {
    let ga = self.a.lock();
}
fn bad(&self) {
    let gc = self.c.lock();
    self.takes_a();
}
";
        let v = run(src);
        assert!(
            v.iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("takes_a")),
            "{v:?}"
        );
    }

    #[test]
    fn underscore_binding_and_unwrap_are_guard_violations() {
        let src = "\
fn bad(&self) {
    let _ = self.a.lock();
    let g = self.b.lock().unwrap();
}
";
        let v = run(src);
        assert_eq!(
            v.iter().filter(|f| f.rule == "lock-guard").count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn undeclared_lock_is_flagged() {
        let src = "\
fn bad(&self) {
    let g = self.mystery.lock();
}
";
        let v = run(src);
        assert!(
            v.iter().any(|f| f.message.contains("undeclared lock")),
            "{v:?}"
        );
    }

    #[test]
    fn condvar_wait_with_foreign_lock_is_flagged() {
        let src = "\
fn bad(&self) {
    let ga = self.a.lock();
    let mut gb = self.b.lock();
    self.cv.wait(&mut gb);
}
";
        let v = run(src);
        assert!(
            v.iter().any(|f| f.message.contains("foreign lock")),
            "{v:?}"
        );
        let own = "\
fn ok(&self) {
    let mut gb = self.b.lock();
    self.cv.wait(&mut gb);
}
";
        assert!(run(own).is_empty(), "{:?}", run(own));
    }

    #[test]
    fn waived_reverse_edges_forming_a_cycle_are_reported() {
        let src_ab = "\
fn fwd(&self) {
    let ga = self.a.lock();
    let gb = self.b.lock();
}
fn rev(&self) {
    let gb = self.b.lock();
    let ga = self.a.lock();
}
";
        let s = scan(src_ab);
        let files = vec![("crates/mapreduce/src/service.rs".to_string(), &s)];
        let map = analyze(&defs(), &[], &files);
        let global = map.get("DESIGN.md").cloned().unwrap_or_default();
        assert!(
            global.iter().any(|f| f.message.contains("cycle")),
            "{global:?}"
        );
    }

    #[test]
    fn continuation_line_receiver_is_resolved() {
        let src = "\
fn ok(&self) {
    let g = self
        .a
        .lock();
    let gb = self.b.lock();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn table_parser_reads_rows_and_checks_consistency() {
        let dir = std::env::temp_dir().join("p3c-audit-locks-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("DESIGN.md");
        std::fs::write(
            &path,
            "\
## 15. Lock hierarchy

| Rank | Lock | File | Fields | Protects | Acquired while holding |
|-----:|------|------|--------|----------|------------------------|
| 10 | `svc.a` | `crates/x.rs` | `a` | stuff | — |
| 20 | `svc.b` | `crates/x.rs` | `b`, `b2` | stuff | `svc.a` |
| 20 | `svc.dup` | `crates/x.rs` | `d` | stuff | `svc.missing` |
",
        )
        .unwrap();
        let (defs, problems) = load_hierarchy(&path).unwrap();
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[1].fields, vec!["b", "b2"]);
        assert_eq!(defs[1].nests_inside, vec!["svc.a"]);
        assert!(
            problems.iter().any(|p| p.contains("rank 20")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("svc.missing")),
            "{problems:?}"
        );
    }
}
