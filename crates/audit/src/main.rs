//! Workspace determinism auditor.
//!
//! Walks the workspace sources and enforces the invariant catalog of
//! DESIGN.md §10: no hash-ordered iteration on emitted paths, no
//! panics in error-propagating engine code, no wall-clock or entropy
//! dependence in result-affecting code, disciplined atomic orderings,
//! and order-exact float reductions. Violations can be waived inline
//! with `// audit: <key> — <reason>`; stale or unjustified waivers are
//! violations themselves.
//!
//! Run with `cargo run -p p3c-audit`. Exits 1 if any violation stands,
//! so CI can gate on it (see ci.sh tier 2).

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories under the repo root that contain audited sources.
const ROOTS: &[&str] = &["crates", "src"];

fn main() -> ExitCode {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("audit crate lives two levels under the repo root");

    let mut files = Vec::new();
    for root in ROOTS {
        collect_rs_files(&repo_root.join(root), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut waivers_in_force = 0usize;
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("p3c-audit: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scan = lexer::scan(&source);
        waivers_in_force += scan.waivers.len();
        violations.extend(rules::check_file(&rel, &scan));
    }

    for v in &violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    println!(
        "p3c-audit: {} file(s) scanned, {} waiver(s), {} violation(s)",
        files.len(),
        waivers_in_force,
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
