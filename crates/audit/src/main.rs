//! Workspace determinism auditor.
//!
//! Walks the workspace sources and enforces the invariant catalog of
//! DESIGN.md §10: no hash-ordered iteration on emitted paths, no
//! panics in error-propagating engine code, no wall-clock or entropy
//! dependence in result-affecting code, disciplined atomic orderings,
//! and order-exact float reductions. Violations can be waived inline
//! with `// audit: <key> — <reason>`; stale or unjustified waivers are
//! violations themselves.
//!
//! Run with `cargo run -p p3c-audit`. Exits 1 if any violation stands,
//! so CI can gate on it (see ci.sh tier 2).

mod lexer;
mod locks;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories under the repo root that contain audited sources.
const ROOTS: &[&str] = &["crates", "src"];

fn main() -> ExitCode {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("audit crate lives two levels under the repo root");

    let mut files = Vec::new();
    for root in ROOTS {
        collect_rs_files(&repo_root.join(root), &mut files);
    }
    files.sort();

    // Lex everything first: the lock-discipline pass is whole-workspace
    // (function summaries cross files), so per-file rule checks run only
    // after its findings are known.
    let mut scans = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("p3c-audit: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scans.push((rel, lexer::scan(&source)));
    }

    let (defs, table_problems) = match locks::load_hierarchy(&repo_root.join("DESIGN.md")) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("p3c-audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scan_refs: Vec<(String, &lexer::FileScan)> =
        scans.iter().map(|(rel, s)| (rel.clone(), s)).collect();
    let mut lock_findings = locks::analyze(&defs, &table_problems, &scan_refs);
    // Findings attributed to DESIGN.md itself (table inconsistencies,
    // acquisition-graph cycles) have no source line to waive on — they
    // surface directly.
    let mut violations: Vec<rules::Violation> = lock_findings
        .remove("DESIGN.md")
        .unwrap_or_default()
        .into_iter()
        .map(|f| rules::Violation {
            file: "DESIGN.md".to_string(),
            line: f.line,
            rule: f.rule,
            message: f.message,
        })
        .collect();

    let mut waivers_in_force = 0usize;
    for (rel, scan) in &scans {
        waivers_in_force += scan.waivers.len();
        let extra = lock_findings.get(rel).map(Vec::as_slice).unwrap_or(&[]);
        violations.extend(rules::check_file(rel, scan, extra));
    }

    for v in &violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    println!(
        "p3c-audit: {} file(s) scanned, {} waiver(s), {} violation(s)",
        files.len(),
        waivers_in_force,
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
