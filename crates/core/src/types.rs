//! Core domain types: bin-based intervals and p-signatures.
//!
//! During cluster-core generation every interval is a **run of histogram
//! bins** on one attribute (relevant intervals arise by merging adjacent
//! marked bins, Section 3.2.2). Membership is therefore decided bin-wise
//! — a point is in the interval iff its bin index falls in the run —
//! which keeps the support arithmetic exactly consistent with the
//! histogram counts the statistical tests are computed from.

use p3c_stats::histogram::bin_index;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A run of histogram bins `[bin_lo, bin_hi]` on one attribute, out of
/// `bins` total equi-width bins on `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    /// Attribute (dimension) index the interval lives on.
    pub attr: usize,
    /// First bin of the run (inclusive).
    pub bin_lo: usize,
    /// Last bin of the run (inclusive).
    pub bin_hi: usize,
    /// Total bins of the discretization this interval belongs to.
    pub bins: usize,
}

impl Interval {
    /// New interval `[bin_lo, bin_hi]` out of `bins` total bins.
    ///
    /// # Panics
    /// Panics on an out-of-order or out-of-range bin run.
    pub fn new(attr: usize, bin_lo: usize, bin_hi: usize, bins: usize) -> Self {
        assert!(bin_lo <= bin_hi, "bin range out of order");
        assert!(bin_hi < bins, "bin range exceeds bin count");
        Self {
            attr,
            bin_lo,
            bin_hi,
            bins,
        }
    }

    /// Lower value bound.
    pub fn lo(&self) -> f64 {
        self.bin_lo as f64 / self.bins as f64
    }

    /// Upper value bound.
    pub fn hi(&self) -> f64 {
        (self.bin_hi + 1) as f64 / self.bins as f64
    }

    /// `width(I)` — the value-space width used by expected supports
    /// (Equations 2 and 7).
    pub fn width(&self) -> f64 {
        (self.bin_hi - self.bin_lo + 1) as f64 / self.bins as f64
    }

    /// Bin-wise membership of a point.
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        let b = bin_index(point[self.attr], self.bins);
        self.bin_lo <= b && b <= self.bin_hi
    }

    /// Whether this interval's bin run covers `other`'s (same attribute).
    pub fn covers(&self, other: &Interval) -> bool {
        self.attr == other.attr && self.bin_lo <= other.bin_lo && other.bin_hi <= self.bin_hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}∈[{:.3},{:.3}]", self.attr, self.lo(), self.hi())
    }
}

/// A p-signature: intervals on pairwise-distinct attributes
/// (Definition 2), kept sorted by attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Signature {
    intervals: Vec<Interval>,
}

impl Signature {
    /// Builds a signature; intervals are sorted by attribute.
    ///
    /// # Panics
    /// Panics if two intervals share an attribute (Definition 2 requires
    /// disjunct attributes).
    pub fn new(mut intervals: Vec<Interval>) -> Self {
        intervals.sort_by_key(|iv| iv.attr);
        for w in intervals.windows(2) {
            assert_ne!(w[0].attr, w[1].attr, "signature with duplicate attribute");
        }
        Self { intervals }
    }

    /// Single-interval signature.
    pub fn singleton(interval: Interval) -> Self {
        Self {
            intervals: vec![interval],
        }
    }

    /// The signature's dimensionality `p`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the signature spans no attribute at all.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The contained intervals, sorted by attribute.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// `Attr(S)` — the attribute set.
    pub fn attributes(&self) -> BTreeSet<usize> {
        self.intervals.iter().map(|iv| iv.attr).collect()
    }

    /// Whether a point lies in the support set (all intervals contain it).
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        self.intervals.iter().all(|iv| iv.contains(point))
    }

    /// Expected support under global uniformity (Equation 7):
    /// `n · Π width(I)`.
    pub fn expected_support(&self, n: usize) -> f64 {
        n as f64 * self.intervals.iter().map(Interval::width).product::<f64>()
    }

    /// The signature without its `i`-th interval (a (p−1)-subsignature).
    pub fn without_index(&self, i: usize) -> Signature {
        let mut ivs = self.intervals.clone();
        ivs.remove(i);
        Signature { intervals: ivs }
    }

    /// Extension by an interval on a fresh attribute; `None` if the
    /// attribute is already present.
    pub fn extended(&self, interval: Interval) -> Option<Signature> {
        if self.intervals.iter().any(|iv| iv.attr == interval.attr) {
            return None;
        }
        let mut ivs = self.intervals.clone();
        ivs.push(interval);
        ivs.sort_by_key(|iv| iv.attr);
        Some(Signature { intervals: ivs })
    }

    /// Apriori join: merges two p-signatures sharing exactly `p−1`
    /// intervals into a (p+1)-signature; `None` if not joinable (shared
    /// count wrong, or the two odd intervals collide on an attribute).
    pub fn join(&self, other: &Signature) -> Option<Signature> {
        if self.len() != other.len() || self.is_empty() {
            return None;
        }
        // Count shared intervals (both sorted by attr → merge scan).
        let mut shared = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.intervals.len() && j < other.intervals.len() {
            match self.intervals[i].cmp(&other.intervals[j]) {
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        if shared + 1 != self.len() {
            return None;
        }
        // Union; the two distinct intervals must not share an attribute.
        let mut ivs: Vec<Interval> = self
            .intervals
            .iter()
            .chain(other.intervals.iter())
            .copied()
            .collect();
        ivs.sort();
        ivs.dedup();
        debug_assert_eq!(ivs.len(), self.len() + 1);
        ivs.sort_by_key(|iv| iv.attr);
        for w in ivs.windows(2) {
            if w[0].attr == w[1].attr {
                return None;
            }
        }
        Some(Signature { intervals: ivs })
    }

    /// Whether `sub` is a (not necessarily proper) sub-signature.
    pub fn contains_signature(&self, sub: &Signature) -> bool {
        sub.intervals.iter().all(|iv| self.intervals.contains(iv))
    }

    /// All (p−1)-subsignatures.
    pub fn subsignatures(&self) -> impl Iterator<Item = Signature> + '_ {
        (0..self.len()).map(|i| self.without_index(i))
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    #[test]
    fn interval_geometry() {
        let i = iv(3, 2, 4);
        assert!((i.lo() - 0.2).abs() < 1e-15);
        assert!((i.hi() - 0.5).abs() < 1e-15);
        assert!((i.width() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn interval_binwise_membership() {
        let i = iv(0, 2, 4); // covers values in (0.2, 0.5]
        assert!(i.contains(&[0.25]));
        assert!(i.contains(&[0.5]));
        assert!(!i.contains(&[0.2])); // bin_index(0.2)=1 < 2
        assert!(!i.contains(&[0.55]));
    }

    #[test]
    fn interval_covers() {
        assert!(iv(0, 1, 5).covers(&iv(0, 2, 4)));
        assert!(iv(0, 1, 5).covers(&iv(0, 1, 5)));
        assert!(!iv(0, 2, 4).covers(&iv(0, 1, 5)));
        assert!(!iv(1, 0, 9).covers(&iv(0, 2, 4)));
    }

    #[test]
    fn signature_sorted_and_unique_attrs() {
        let s = Signature::new(vec![iv(5, 0, 1), iv(2, 3, 4)]);
        assert_eq!(s.intervals()[0].attr, 2);
        assert_eq!(s.attributes().into_iter().collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_rejected() {
        let _ = Signature::new(vec![iv(1, 0, 1), iv(1, 3, 4)]);
    }

    #[test]
    fn expected_support_eq7() {
        // widths 0.2 and 0.3 on n=1000 → 1000·0.06 = 60.
        let s = Signature::new(vec![iv(0, 0, 1), iv(1, 3, 5)]);
        assert!((s.expected_support(1000) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn membership_requires_all_intervals() {
        let s = Signature::new(vec![iv(0, 0, 2), iv(1, 5, 9)]);
        assert!(s.contains(&[0.15, 0.8]));
        assert!(!s.contains(&[0.15, 0.3]));
        assert!(!s.contains(&[0.5, 0.8]));
    }

    #[test]
    fn join_of_overlapping_signatures() {
        let a = Signature::new(vec![iv(0, 0, 1), iv(1, 2, 3)]);
        let b = Signature::new(vec![iv(0, 0, 1), iv(2, 4, 5)]);
        let joined = a.join(&b).expect("joinable");
        assert_eq!(joined.len(), 3);
        assert_eq!(
            joined.attributes().into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Join is symmetric.
        assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn join_rejects_wrong_overlap() {
        let a = Signature::new(vec![iv(0, 0, 1), iv(1, 2, 3)]);
        let c = Signature::new(vec![iv(2, 0, 1), iv(3, 2, 3)]);
        assert!(a.join(&c).is_none(), "no shared intervals");
        assert!(
            a.join(&a).is_none(),
            "identical signatures share p intervals"
        );
    }

    #[test]
    fn join_rejects_attribute_collision() {
        // Share interval on attr 0; odd intervals both on attr 1.
        let a = Signature::new(vec![iv(0, 0, 1), iv(1, 2, 3)]);
        let b = Signature::new(vec![iv(0, 0, 1), iv(1, 5, 6)]);
        assert!(a.join(&b).is_none());
    }

    #[test]
    fn singleton_join() {
        let a = Signature::singleton(iv(0, 0, 1));
        let b = Signature::singleton(iv(1, 2, 3));
        let j = a.join(&b).unwrap();
        assert_eq!(j.len(), 2);
        // Singletons on the same attribute cannot join.
        let c = Signature::singleton(iv(0, 4, 5));
        assert!(a.join(&c).is_none());
    }

    #[test]
    fn subsignatures_and_containment() {
        let s = Signature::new(vec![iv(0, 0, 1), iv(1, 2, 3), iv(2, 4, 5)]);
        let subs: Vec<Signature> = s.subsignatures().collect();
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert_eq!(sub.len(), 2);
            assert!(s.contains_signature(sub));
            assert!(!sub.contains_signature(&s));
        }
    }

    #[test]
    fn extension() {
        let s = Signature::singleton(iv(0, 0, 1));
        let e = s.extended(iv(3, 2, 3)).unwrap();
        assert_eq!(e.len(), 2);
        assert!(s.extended(iv(0, 5, 6)).is_none());
    }
}
