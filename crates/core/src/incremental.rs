//! Incremental P3C+-Light over an append/retract block log — the
//! engine behind the multi-tenant clustering service (DESIGN.md §14).
//!
//! Every statistic the paper decomposes into MapReduce jobs is in
//! summation form, which makes histogram bin supports and signature
//! supports *mergeable deltas*: the statistic over the cumulative
//! dataset is the exact sum of per-block contributions. The engine
//! exploits this to keep re-cluster latency sublinear in the total
//! `n` for steady append streams, while staying **byte-identical** to a
//! from-scratch [`P3cPlusLight`](crate::p3cplus::P3cPlusLight) run on
//! the cumulative data:
//!
//! * **Maintained histograms** — an appended block's values are folded
//!   into the per-attribute histograms with exact `+1.0` increments; a
//!   retract subtracts the block's partial histogram. Counts are
//!   integer-valued f64s far below 2⁵³, so the maintained counts equal
//!   a from-scratch scan bit-for-bit. When the bin rule steps (bin
//!   count is a function of `n`), the histograms are rebuilt from the
//!   cumulative data at the next recluster — an amortized-rare O(n)
//!   event.
//! * **Maintained signature supports** — a [`SupportCache`] holds every
//!   signature support ever counted at the current discretization and
//!   folds each delta block in with one RSSC pass over the *delta*
//!   (exact `u64` adds/subtracts). At recluster, Algorithm 1 runs with
//!   a cached [`LevelCounter`]: levels whose candidates are all cached
//!   touch no data at all; only never-seen candidates trigger a scan.
//! * **Maintained memberships** — appends only add rows at the end, so
//!   while the core set is unchanged the Light membership mapping grows
//!   monotonically in id order. The engine classifies each appended row
//!   against the current cores and maintains per-core min/max bounds
//!   and unique-member histograms, from which the finalization
//!   (attribute inspection + interval tightening) is recomputed without
//!   reading any old row.
//!
//! Re-execution is **lineage-dirty**: each recluster re-runs only the
//! pipeline stages whose maintained inputs were invalidated. The cheap
//! guards are checked from maintained state — bin-rule step dirties the
//! histogram stage, a cache miss dirties one support-count level, a
//! retract or a changed core set dirties the finalization stage — and
//! any stage that is *not* dirty is answered from summation-form state.
//! When everything is dirty the engine degrades to exactly the batch
//! pipeline over the cumulative rows (trivially byte-identical); when
//! nothing is, a recluster costs `O(result)` instead of `O(n · d)`.
//!
//! The full-EM pipeline is deliberately *not* maintained here: an EM
//! parameter trajectory depends on every point in every iteration, so
//! an exact incremental variant is Ω(n) by the byte-identity contract.
//! The Light pipeline (no EM, Section 6) is the service path.

use crate::config::{BinRuleChoice, P3cParams};
use crate::cores::{ClusterCore, LevelCounter};
use crate::histogram::{build_histograms_columnar_threads, AttributeHistograms};
use crate::inspect::inspect_from_histograms;
use crate::mr::pipeline::row_block_seg_codec;
use crate::p3cplus::{
    core_phase_from_histograms, empty_result, light_finalize, light_membership, LightMembership,
    P3cResult,
};
use crate::support::SupportCache;
use crate::types::{Interval, Signature};
use p3c_dataset::journal::{self, ByteReader};
use p3c_dataset::{AttrInterval, BlockEntry, BlockLog, Clustering, ProjectedCluster, RowBlock};
use p3c_mapreduce::{DatasetHandle, DatasetStore};
use p3c_stats::{bin_rows, Histogram};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which lineage path a recluster took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclusterPath {
    /// No live rows: the empty clustering, no stage executed.
    Empty,
    /// Append-only since the last recluster and the core set came out
    /// unchanged: the finalization was answered entirely from
    /// maintained per-core state — no old row was read.
    Fast,
    /// Some stage's lineage was dirty (first run, retract, bin-rule
    /// step, or a changed core set): membership and finalization were
    /// re-executed over the cumulative rows.
    Full,
}

impl ReclusterPath {
    /// Stable lowercase label (CLI/bench output).
    pub fn label(self) -> &'static str {
        match self {
            ReclusterPath::Empty => "empty",
            ReclusterPath::Fast => "fast",
            ReclusterPath::Full => "full",
        }
    }
}

/// A recluster's result plus the lineage path that produced it.
#[derive(Debug, Clone)]
pub struct ReclusterOutcome {
    /// The clustering — byte-identical to a from-scratch
    /// `P3cPlusLight` run on the cumulative dataset.
    pub result: P3cResult,
    /// Which path produced it.
    pub path: ReclusterPath,
}

/// Lifetime counters of one incremental engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalStats {
    /// Blocks appended.
    pub appends: u64,
    /// Blocks retracted.
    pub retracts: u64,
    /// Rows folded into maintained statistics via delta passes.
    pub delta_rows: u64,
    /// Reclusters served.
    pub reclusters: u64,
    /// Reclusters that finalized from maintained state only.
    pub fast_reclusters: u64,
    /// Reclusters that re-executed membership over the cumulative rows.
    pub full_reclusters: u64,
    /// Histogram rebuilds forced by bin-rule steps.
    pub hist_rebuilds: u64,
    /// Core-generation levels answered with a data scan (cache miss).
    pub support_scans: u64,
    /// Core-generation levels answered from the support cache alone.
    pub cached_levels: u64,
}

/// Per-core maintained finalization state: exact min/max bounds over
/// members and unique members (all `d` attributes — which attributes
/// inspection will pick is not known until recluster) and the
/// unique-member histograms that drive attribute inspection.
#[derive(Debug, Clone)]
struct CoreFinalizeState {
    member_min: Vec<f64>,
    member_max: Vec<f64>,
    unique_min: Vec<f64>,
    unique_max: Vec<f64>,
    /// Per-attribute histograms over the unique members, at bin count
    /// `rule(|unique|)` — exactly what batch attribute inspection
    /// builds.
    unique_hists: Vec<Histogram>,
    /// Set when `rule(|unique|)` stepped past the maintained bin count;
    /// the histograms are rebuilt from the rows at the next recluster.
    unique_hists_stale: bool,
}

impl CoreFinalizeState {
    fn empty(d: usize) -> Self {
        Self {
            member_min: vec![f64::INFINITY; d],
            member_max: vec![f64::NEG_INFINITY; d],
            unique_min: vec![f64::INFINITY; d],
            unique_max: vec![f64::NEG_INFINITY; d],
            unique_hists: Vec::new(),
            unique_hists_stale: false,
        }
    }

    fn absorb_member(&mut self, row: &[f64]) {
        for (j, &v) in row.iter().enumerate() {
            self.member_min[j] = self.member_min[j].min(v);
            self.member_max[j] = self.member_max[j].max(v);
        }
    }

    fn absorb_unique(&mut self, row: &[f64], unique_len_after: usize, params: &P3cParams) {
        for (j, &v) in row.iter().enumerate() {
            self.unique_min[j] = self.unique_min[j].min(v);
            self.unique_max[j] = self.unique_max[j].max(v);
        }
        if self.unique_hists_stale {
            return;
        }
        let target = params.bin_rule.to_rule().num_bins(unique_len_after).max(1);
        let current = self.unique_hists.first().map(Histogram::num_bins);
        if current == Some(target) {
            for (j, &v) in row.iter().enumerate() {
                self.unique_hists[j].add(v);
            }
        } else {
            // Bin rule stepped (or the histograms were never built):
            // rebuild lazily at the next recluster.
            self.unique_hists_stale = true;
        }
    }
}

/// The maintained model: the cores of the last recluster, the Light
/// membership mapping kept current under appends, and the per-core
/// finalization state.
#[derive(Debug, Clone)]
struct ModelState {
    cores: Vec<ClusterCore>,
    membership: LightMembership,
    per_core: Vec<CoreFinalizeState>,
}

/// Incremental P3C+-Light over one named dataset's block log.
///
/// Row payloads live in a [`DatasetStore`] (one segmented-codec entry
/// per appended block, named `incr/<name>/block-<id>`), so a budgeted
/// store can spill cold blocks through the columnar codec and the
/// engine's resident state stays `O(maintained statistics + model)`.
/// Every method that touches rows takes the store explicitly — the
/// service owns one shared budgeted store across tenants.
#[derive(Debug)]
pub struct IncrementalLight {
    name: String,
    params: P3cParams,
    log: BlockLog,
    /// Maintained per-attribute histograms at the current uniform
    /// discretization; meaningless while `hists_valid` is false.
    hists: AttributeHistograms,
    hists_valid: bool,
    /// The current uniform bin count `rule(n)` the maintained
    /// histograms and support cache are stated at.
    bins: usize,
    supports: SupportCache,
    model: Option<ModelState>,
    /// Set by retracts: maintained memberships are id-shifted and the
    /// next recluster must re-execute the membership stage.
    dirty_full: bool,
    stats: IncrementalStats,
}

impl IncrementalLight {
    /// New engine for the named dataset.
    ///
    /// # Panics
    /// Panics on invalid params or on the exact-IQR bin rule: per-
    /// attribute data-dependent bin counts change with every block, so
    /// there is no stable discretization to maintain deltas against —
    /// the service restricts itself to the uniform rules.
    pub fn new(name: impl Into<String>, params: P3cParams) -> Self {
        params.validate();
        assert!(
            params.bin_rule != BinRuleChoice::FreedmanDiaconisIqr,
            "incremental maintenance requires a uniform bin rule"
        );
        Self {
            name: name.into(),
            params,
            log: BlockLog::new(),
            hists: AttributeHistograms {
                histograms: Vec::new(),
                bins: 0,
            },
            hists_valid: false,
            bins: 0,
            supports: SupportCache::new(),
            model: None,
            dirty_full: false,
            stats: IncrementalStats::default(),
        }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// The dataset name this engine maintains.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cumulative live rows.
    pub fn total_rows(&self) -> usize {
        self.log.total_rows()
    }

    /// Live block ids in log order.
    pub fn block_ids(&self) -> Vec<u64> {
        self.log.entries().iter().map(|e| e.id).collect()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    fn block_name(&self, id: u64) -> String {
        format!("incr/{}/block-{id}", self.name)
    }

    fn rule_bins(&self, n: usize) -> usize {
        self.params.bin_rule.to_rule().num_bins(n).max(1)
    }

    /// Drops maintained histogram/support state (bin-rule step); the
    /// next recluster rebuilds both from the cumulative rows.
    fn invalidate_stats(&mut self, new_bins: usize) {
        self.hists_valid = false;
        self.supports.clear();
        self.bins = new_bins;
    }

    /// Appends a block of rows and folds it into every maintained
    /// statistic; returns the block's id. Cost is `O(|block| · (d +
    /// cached signatures + cores))` — independent of the cumulative
    /// dataset size.
    pub fn append(&mut self, store: &DatasetStore, block: RowBlock) -> Result<u64, String> {
        let old_n = self.log.total_rows();
        let id = self.log.append(block.len(), block.dim())?;
        self.stats.appends += 1;
        if block.is_empty() {
            return Ok(id);
        }
        let d = block.dim();
        let new_bins = self.rule_bins(old_n + block.len());

        // Maintained histograms + signature supports (summation form).
        if self.hists.histograms.is_empty() && !self.hists_valid && self.bins == 0 {
            // First rows ever: start maintaining from scratch at the
            // fresh discretization instead of forcing a rebuild.
            self.bins = new_bins;
            self.hists = AttributeHistograms {
                histograms: vec![Histogram::new(new_bins); d],
                bins: new_bins,
            };
            self.hists_valid = true;
        }
        if new_bins != self.bins {
            self.invalidate_stats(new_bins);
        } else if self.hists_valid {
            bin_rows(&mut self.hists.histograms, d, block.as_slice());
            self.supports.apply_delta(&block.row_refs(), false);
            self.stats.delta_rows += block.len() as u64;
        }

        // Maintained memberships: classify each appended row against
        // the current cores. Valid only while no retract intervened;
        // whether the cores themselves survived is checked at
        // recluster.
        if !self.dirty_full {
            if let Some(model) = &mut self.model {
                for (l, row) in block.rows().enumerate() {
                    let id = old_n + l;
                    let mut containing: Vec<usize> = Vec::new();
                    for (c, core) in model.cores.iter().enumerate() {
                        if core.signature.contains(row) {
                            containing.push(c);
                        }
                    }
                    match containing.as_slice() {
                        [] => model.membership.outliers.push(id),
                        cs => {
                            for &c in cs {
                                model.membership.members[c].push(id);
                                model.per_core[c].absorb_member(row);
                            }
                            if let [only] = cs {
                                let c = *only;
                                model.membership.unique_members[c].push(id);
                                let len = model.membership.unique_members[c].len();
                                model.per_core[c].absorb_unique(row, len, &self.params);
                            }
                        }
                    }
                }
            }
        }

        let bytes = 16 + 8 * block.as_slice().len();
        let handle: DatasetHandle<RowBlock> = DatasetHandle::new(self.block_name(id));
        store.put_segmented(&handle, block, bytes, row_block_seg_codec());
        Ok(id)
    }

    /// Retracts block `id`, subtracting it from the maintained
    /// histograms and signature supports (exact — integer-valued f64
    /// and u64 arithmetic). Returns `false` if no live block has that
    /// id. Retraction shifts the ids of every later row, so the next
    /// recluster re-executes the membership stage.
    pub fn retract(&mut self, store: &DatasetStore, id: u64) -> Result<bool, String> {
        if !self.log.contains(id) {
            return Ok(false);
        }
        let handle: DatasetHandle<RowBlock> = DatasetHandle::new(self.block_name(id));
        let entry_rows = self
            .log
            .entries()
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.rows);
        let block = match entry_rows {
            Some(0) => None,
            _ => Some(store.get(&handle).map_err(|e| e.to_string())?),
        };
        self.log.retract(id);
        self.stats.retracts += 1;
        if let Some(block) = block {
            let d = block.dim();
            let new_bins = self.rule_bins(self.log.total_rows());
            if new_bins != self.bins {
                self.invalidate_stats(new_bins);
            } else if self.hists_valid {
                let mut delta = vec![Histogram::new(self.bins); d];
                bin_rows(&mut delta, d, block.as_slice());
                for (h, dh) in self.hists.histograms.iter_mut().zip(&delta) {
                    h.subtract(dh);
                }
                self.supports.apply_delta(&block.row_refs(), true);
                self.stats.delta_rows += block.len() as u64;
            }
            store.remove(handle.name());
        }
        self.dirty_full = true;
        Ok(true)
    }

    /// Materializes the cumulative dataset (live blocks in log order) —
    /// the exact row sequence a from-scratch batch run would see.
    pub fn materialize(&self, store: &DatasetStore) -> Result<RowBlock, String> {
        let mut blocks = Vec::new();
        for e in self.log.entries() {
            if e.rows == 0 {
                continue;
            }
            let handle: DatasetHandle<RowBlock> = DatasetHandle::new(self.block_name(e.id));
            blocks.push(store.get(&handle).map_err(|e| e.to_string())?);
        }
        let refs: Vec<&RowBlock> = blocks.iter().map(|b| b.as_ref()).collect();
        Ok(RowBlock::concat(&refs))
    }

    /// Removes every stored block of this dataset from the store.
    pub fn drop_data(&mut self, store: &DatasetStore) {
        for e in self.log.entries() {
            store.remove(&self.block_name(e.id));
        }
        self.log = BlockLog::new();
        self.invalidate_stats(0);
        self.hists.histograms.clear();
        self.hists.bins = 0;
        self.model = None;
        self.dirty_full = false;
    }

    /// Estimated resident bytes of the maintained state (admission
    /// accounting; block payloads are accounted by the store itself).
    pub fn mem_bytes(&self) -> usize {
        let hist_bytes = self.hists.histograms.len() * self.bins * 8;
        let model_bytes = self.model.as_ref().map_or(0, |m| {
            let ids: usize = m
                .membership
                .members
                .iter()
                .chain(m.membership.unique_members.iter())
                .map(Vec::len)
                .sum::<usize>()
                + m.membership.outliers.len();
            let per_core: usize = m
                .per_core
                .iter()
                .map(|cs| {
                    (cs.member_min.len() * 4
                        + cs.unique_hists
                            .iter()
                            .map(Histogram::num_bins)
                            .sum::<usize>())
                        * 8
                })
                .sum();
            ids * 8 + per_core
        });
        hist_bytes + self.supports.mem_bytes() + model_bytes
    }

    /// Rough working-set bytes of a recluster job (admission
    /// accounting): the cumulative rows a fallback path would
    /// materialize, plus the resident state.
    pub fn recluster_estimate(&self) -> usize {
        self.log.total_rows() * self.log.dim().unwrap_or(0) * 8 + self.mem_bytes()
    }

    /// Re-clusters the cumulative dataset, re-executing only the
    /// lineage-dirty stages. The returned model is byte-identical to
    /// `P3cPlusLight::new(params).cluster(&cumulative)`.
    pub fn recluster(&mut self, store: &DatasetStore) -> Result<ReclusterOutcome, String> {
        self.stats.reclusters += 1;
        let n = self.log.total_rows();
        let threads = self.params.threads;
        if n == 0 {
            // A 0-row dataset has dimension 0; run the same (empty)
            // pure functions batch would.
            let hists = build_histograms_columnar_threads(0, 0, &[], &[], threads);
            let mut counter = NoRowsCounter;
            let (cores, stats) = core_phase_from_histograms(&hists, 0, &self.params, &mut counter)?;
            debug_assert!(cores.is_empty());
            self.model = Some(ModelState {
                cores: Vec::new(),
                membership: LightMembership::default(),
                per_core: Vec::new(),
            });
            self.dirty_full = false;
            return Ok(ReclusterOutcome {
                result: empty_result(0, stats),
                path: ReclusterPath::Empty,
            });
        }
        let d = self.log.dim().expect("n > 0 implies known dimension");

        let cum = CumulativeRows::new(self, store);

        // Stage 1: histograms — from maintained counts, or rebuilt over
        // the cumulative rows if the bin rule stepped.
        if !self.hists_valid {
            let block = cum.fetch()?;
            let bins_per_attr = vec![self.bins; d];
            self.hists =
                build_histograms_columnar_threads(n, d, block.as_slice(), &bins_per_attr, threads);
            self.hists_valid = true;
            self.stats.hist_rebuilds += 1;
        }

        // Stages 2–4: relevant intervals, core generation (cached
        // supports), redundancy filter. Pure functions of the
        // histograms and the support counts.
        let mut counter = CachedCounter {
            cache: &mut self.supports,
            cum: &cum,
            scans: 0,
            cached_levels: 0,
        };
        let (cores, mut stats) =
            core_phase_from_histograms(&self.hists, n, &self.params, &mut counter)?;
        self.stats.support_scans += counter.scans;
        self.stats.cached_levels += counter.cached_levels;

        // Stage 5: membership + finalization — from maintained state
        // when its lineage is clean (append-only and the core set came
        // out unchanged), else re-executed over the cumulative rows.
        // Supports (and expected supports) legitimately grow with every
        // append; membership and finalization depend only on the core
        // *signatures*, so the guard compares those — in order, since
        // maintained per-core state is indexed by core position.
        let fast = !self.dirty_full
            && self.model.as_ref().is_some_and(|m| {
                m.cores.len() == cores.len()
                    && m.cores
                        .iter()
                        .zip(&cores)
                        .all(|(a, b)| a.signature == b.signature)
            });
        let outcome = if cores.is_empty() {
            // Batch's empty path: every point an outlier, stats.outliers
            // left untouched. Maintain the (trivial) model so future
            // appends keep classifying rows.
            self.model = Some(ModelState {
                cores: Vec::new(),
                membership: LightMembership {
                    members: Vec::new(),
                    unique_members: Vec::new(),
                    outliers: (0..n).collect(),
                },
                per_core: Vec::new(),
            });
            ReclusterOutcome {
                result: empty_result(n, stats),
                path: if fast {
                    ReclusterPath::Fast
                } else {
                    ReclusterPath::Full
                },
            }
        } else if fast {
            self.stats.fast_reclusters += 1;
            let model = self.model.as_mut().expect("fast implies model");
            // Same signatures, fresher supports: keep the stored cores
            // current so the next guard compares against this run.
            model.cores = cores.clone();
            refresh_stale_unique_hists(model, &cum, &self.params)?;
            stats.outliers = model.membership.outliers.len();
            let clustering = finalize_from_state(model, &self.params);
            ReclusterOutcome {
                result: P3cResult {
                    clustering,
                    cores,
                    stats,
                },
                path: ReclusterPath::Fast,
            }
        } else {
            self.stats.full_reclusters += 1;
            let block = cum.fetch()?;
            let rows = block.row_refs();
            let membership = light_membership(&rows, &cores);
            stats.outliers = membership.outliers.len();
            let clustering = light_finalize(&rows, &cores, &membership, &self.params);
            let per_core = build_finalize_state(&rows, d, &membership, &self.params);
            self.model = Some(ModelState {
                cores: cores.clone(),
                membership,
                per_core,
            });
            ReclusterOutcome {
                result: P3cResult {
                    clustering,
                    cores,
                    stats,
                },
                path: ReclusterPath::Full,
            }
        };
        self.dirty_full = false;
        Ok(outcome)
    }
}

/// [`IncrementalLight`] is the P3C+ tenant of the generic clustering
/// service: blocks are [`RowBlock`]s and a re-cluster yields the
/// [`ReclusterOutcome`] (model + lineage path).
impl p3c_mapreduce::service::Tenant for IncrementalLight {
    type Block = RowBlock;
    type Model = ReclusterOutcome;

    fn append(&mut self, store: &DatasetStore, block: RowBlock) -> Result<u64, String> {
        IncrementalLight::append(self, store, block)
    }

    fn retract(&mut self, store: &DatasetStore, id: u64) -> Result<bool, String> {
        IncrementalLight::retract(self, store, id)
    }

    fn recluster(&mut self, store: &DatasetStore) -> Result<ReclusterOutcome, String> {
        IncrementalLight::recluster(self, store)
    }

    fn mem_bytes(&self) -> usize {
        IncrementalLight::mem_bytes(self)
    }

    fn recluster_estimate(&self) -> usize {
        IncrementalLight::recluster_estimate(self)
    }

    fn drop_data(&mut self, store: &DatasetStore) {
        IncrementalLight::drop_data(self, store)
    }
}

// ---- Durable snapshot codec (service crash recovery, DESIGN.md §16) ----
//
// Hand-rolled little-endian encoding over the `p3c_dataset::journal`
// primitives. The snapshot captures *everything* a restarted process
// needs to continue byte-identically: params, block log, maintained
// histograms, support cache, model state, stats — and the live block
// payloads themselves, because the `DatasetStore` is volatile.

/// Snapshot body version; bump on any layout change.
const STATE_VERSION: u32 = 1;

fn put_params(buf: &mut Vec<u8>, p: &P3cParams) {
    journal::put_f64(buf, p.alpha_chi2);
    journal::put_f64(buf, p.alpha_poisson);
    journal::put_f64(buf, p.theta_cc);
    journal::put_bool(buf, p.use_effect_size);
    journal::put_bool(buf, p.use_redundancy_filter);
    journal::put_bool(buf, p.use_ai_proving);
    buf.push(match p.bin_rule {
        BinRuleChoice::Sturges => 0,
        BinRuleChoice::FreedmanDiaconis => 1,
        BinRuleChoice::FreedmanDiaconisIqr => 2,
    });
    buf.push(match p.outlier {
        crate::config::OutlierMethod::Naive => 0,
        crate::config::OutlierMethod::Mvb => 1,
        crate::config::OutlierMethod::Mcd => 2,
    });
    journal::put_f64(buf, p.alpha_outlier);
    journal::put_usize(buf, p.em_max_iters);
    journal::put_f64(buf, p.em_tol);
    journal::put_usize(buf, p.t_gen);
    journal::put_usize(buf, p.t_c);
    journal::put_usize(buf, p.max_levels);
    journal::put_usize(buf, p.max_candidates_per_level);
    journal::put_usize(buf, p.threads);
}

fn read_params(r: &mut ByteReader) -> Result<P3cParams, String> {
    let alpha_chi2 = r.f64()?;
    let alpha_poisson = r.f64()?;
    let theta_cc = r.f64()?;
    let use_effect_size = r.bool()?;
    let use_redundancy_filter = r.bool()?;
    let use_ai_proving = r.bool()?;
    let bin_rule = match r.u8()? {
        0 => BinRuleChoice::Sturges,
        1 => BinRuleChoice::FreedmanDiaconis,
        2 => BinRuleChoice::FreedmanDiaconisIqr,
        t => return Err(format!("unknown bin rule tag {t}")),
    };
    let outlier = match r.u8()? {
        0 => crate::config::OutlierMethod::Naive,
        1 => crate::config::OutlierMethod::Mvb,
        2 => crate::config::OutlierMethod::Mcd,
        t => return Err(format!("unknown outlier method tag {t}")),
    };
    Ok(P3cParams {
        alpha_chi2,
        alpha_poisson,
        theta_cc,
        use_effect_size,
        use_redundancy_filter,
        use_ai_proving,
        bin_rule,
        outlier,
        alpha_outlier: r.f64()?,
        em_max_iters: r.usize()?,
        em_tol: r.f64()?,
        t_gen: r.usize()?,
        t_c: r.usize()?,
        max_levels: r.usize()?,
        max_candidates_per_level: r.usize()?,
        threads: r.usize()?,
    })
}

fn put_signature(buf: &mut Vec<u8>, sig: &Signature) {
    journal::put_usize(buf, sig.intervals().len());
    for iv in sig.intervals() {
        journal::put_usize(buf, iv.attr);
        journal::put_usize(buf, iv.bin_lo);
        journal::put_usize(buf, iv.bin_hi);
        journal::put_usize(buf, iv.bins);
    }
}

fn read_signature(r: &mut ByteReader) -> Result<Signature, String> {
    let k = r.usize()?;
    let mut intervals = Vec::with_capacity(k.min(1 << 16));
    for _ in 0..k {
        let attr = r.usize()?;
        let bin_lo = r.usize()?;
        let bin_hi = r.usize()?;
        let bins = r.usize()?;
        intervals.push(Interval::new(attr, bin_lo, bin_hi, bins));
    }
    Ok(Signature::new(intervals))
}

fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    journal::put_usize(buf, values.len());
    for &v in values {
        journal::put_f64(buf, v);
    }
}

fn read_f64s(r: &mut ByteReader) -> Result<Vec<f64>, String> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

fn put_histogram(buf: &mut Vec<u8>, h: &Histogram) {
    put_f64s(buf, h.counts());
}

fn read_histogram(r: &mut ByteReader) -> Result<Histogram, String> {
    let counts = read_f64s(r)?;
    if counts.is_empty() {
        return Err("histogram with zero bins".to_string());
    }
    Ok(Histogram::from_counts(counts))
}

fn put_ids(buf: &mut Vec<u8>, ids: &[usize]) {
    journal::put_usize(buf, ids.len());
    for &i in ids {
        journal::put_usize(buf, i);
    }
}

fn read_ids(r: &mut ByteReader) -> Result<Vec<usize>, String> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.usize()?);
    }
    Ok(out)
}

fn put_id_lists(buf: &mut Vec<u8>, lists: &[Vec<usize>]) {
    journal::put_usize(buf, lists.len());
    for ids in lists {
        put_ids(buf, ids);
    }
}

fn read_id_lists(r: &mut ByteReader) -> Result<Vec<Vec<usize>>, String> {
    let k = r.usize()?;
    let mut out = Vec::with_capacity(k.min(1 << 16));
    for _ in 0..k {
        out.push(read_ids(r)?);
    }
    Ok(out)
}

impl IncrementalLight {
    /// Serializes the complete engine state — maintained statistics,
    /// model, *and* the live block payloads (the store is volatile) —
    /// for the service's durable snapshot.
    pub fn snapshot_bytes(&self, store: &DatasetStore) -> Result<Vec<u8>, String> {
        let buf = &mut Vec::new();
        journal::put_u32(buf, STATE_VERSION);
        put_params(buf, &self.params);

        journal::put_usize(buf, self.log.entries().len());
        for e in self.log.entries() {
            journal::put_u64(buf, e.id);
            journal::put_usize(buf, e.rows);
        }
        journal::put_u64(buf, self.log.next_id());
        journal::put_bool(buf, self.log.dim().is_some());
        journal::put_usize(buf, self.log.dim().unwrap_or(0));

        journal::put_usize(buf, self.hists.histograms.len());
        for h in &self.hists.histograms {
            put_histogram(buf, h);
        }
        journal::put_usize(buf, self.hists.bins);
        journal::put_bool(buf, self.hists_valid);
        journal::put_usize(buf, self.bins);

        journal::put_usize(buf, self.supports.len());
        for (sig, count) in self.supports.iter() {
            put_signature(buf, sig);
            journal::put_u64(buf, count);
        }

        journal::put_bool(buf, self.model.is_some());
        if let Some(m) = &self.model {
            journal::put_usize(buf, m.cores.len());
            for core in &m.cores {
                put_signature(buf, &core.signature);
                journal::put_f64(buf, core.support);
                journal::put_f64(buf, core.expected);
            }
            put_id_lists(buf, &m.membership.members);
            put_id_lists(buf, &m.membership.unique_members);
            put_ids(buf, &m.membership.outliers);
            journal::put_usize(buf, m.per_core.len());
            for cs in &m.per_core {
                put_f64s(buf, &cs.member_min);
                put_f64s(buf, &cs.member_max);
                put_f64s(buf, &cs.unique_min);
                put_f64s(buf, &cs.unique_max);
                journal::put_usize(buf, cs.unique_hists.len());
                for h in &cs.unique_hists {
                    put_histogram(buf, h);
                }
                journal::put_bool(buf, cs.unique_hists_stale);
            }
        }

        journal::put_bool(buf, self.dirty_full);
        let s = &self.stats;
        for v in [
            s.appends,
            s.retracts,
            s.delta_rows,
            s.reclusters,
            s.fast_reclusters,
            s.full_reclusters,
            s.hist_rebuilds,
            s.support_scans,
            s.cached_levels,
        ] {
            journal::put_u64(buf, v);
        }

        // Live block payloads, log order; zero-row blocks have none.
        let live: Vec<&BlockEntry> = self.log.entries().iter().filter(|e| e.rows > 0).collect();
        journal::put_usize(buf, live.len());
        for e in live {
            let handle: DatasetHandle<RowBlock> = DatasetHandle::new(self.block_name(e.id));
            let block = store.get(&handle).map_err(|e| e.to_string())?;
            journal::put_u64(buf, e.id);
            journal::put_usize(buf, block.len());
            journal::put_usize(buf, block.dim());
            for &v in block.as_slice() {
                journal::put_f64(buf, v);
            }
        }
        Ok(std::mem::take(buf))
    }

    /// Rehydrates an engine from [`IncrementalLight::snapshot_bytes`]
    /// output, re-inserting the block payloads into `store`. The result
    /// continues byte-identically to the engine that was snapshotted.
    pub fn from_snapshot_bytes(
        name: &str,
        bytes: &[u8],
        store: &DatasetStore,
    ) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32()?;
        if version != STATE_VERSION {
            return Err(format!("unsupported engine snapshot version {version}"));
        }
        let params = read_params(&mut r)?;

        let num_entries = r.usize()?;
        let mut entries = Vec::with_capacity(num_entries.min(1 << 20));
        for _ in 0..num_entries {
            let id = r.u64()?;
            let rows = r.usize()?;
            entries.push(BlockEntry { id, rows });
        }
        let next_id = r.u64()?;
        let has_dim = r.bool()?;
        let dim_val = r.usize()?;
        let log = BlockLog::from_parts(entries, next_id, has_dim.then_some(dim_val))?;

        let num_hists = r.usize()?;
        let mut histograms = Vec::with_capacity(num_hists.min(1 << 16));
        for _ in 0..num_hists {
            histograms.push(read_histogram(&mut r)?);
        }
        let hist_bins = r.usize()?;
        let hists_valid = r.bool()?;
        let bins = r.usize()?;

        let num_supports = r.usize()?;
        let mut supports = SupportCache::new();
        for _ in 0..num_supports {
            let sig = read_signature(&mut r)?;
            let count = r.u64()?;
            supports.insert(sig, count);
        }

        let model = if r.bool()? {
            let num_cores = r.usize()?;
            let mut cores = Vec::with_capacity(num_cores.min(1 << 16));
            for _ in 0..num_cores {
                let signature = read_signature(&mut r)?;
                let support = r.f64()?;
                let expected = r.f64()?;
                cores.push(ClusterCore {
                    signature,
                    support,
                    expected,
                });
            }
            let members = read_id_lists(&mut r)?;
            let unique_members = read_id_lists(&mut r)?;
            let outliers = read_ids(&mut r)?;
            let num_per_core = r.usize()?;
            let mut per_core = Vec::with_capacity(num_per_core.min(1 << 16));
            for _ in 0..num_per_core {
                let member_min = read_f64s(&mut r)?;
                let member_max = read_f64s(&mut r)?;
                let unique_min = read_f64s(&mut r)?;
                let unique_max = read_f64s(&mut r)?;
                let num_uh = r.usize()?;
                let mut unique_hists = Vec::with_capacity(num_uh.min(1 << 16));
                for _ in 0..num_uh {
                    unique_hists.push(read_histogram(&mut r)?);
                }
                let unique_hists_stale = r.bool()?;
                per_core.push(CoreFinalizeState {
                    member_min,
                    member_max,
                    unique_min,
                    unique_max,
                    unique_hists,
                    unique_hists_stale,
                });
            }
            if members.len() != cores.len()
                || unique_members.len() != cores.len()
                || per_core.len() != cores.len()
            {
                return Err("model state arrays disagree on core count".to_string());
            }
            Some(ModelState {
                cores,
                membership: LightMembership {
                    members,
                    unique_members,
                    outliers,
                },
                per_core,
            })
        } else {
            None
        };

        let dirty_full = r.bool()?;
        let mut counters = [0u64; 9];
        for c in &mut counters {
            *c = r.u64()?;
        }
        let stats = IncrementalStats {
            appends: counters[0],
            retracts: counters[1],
            delta_rows: counters[2],
            reclusters: counters[3],
            fast_reclusters: counters[4],
            full_reclusters: counters[5],
            hist_rebuilds: counters[6],
            support_scans: counters[7],
            cached_levels: counters[8],
        };

        let mut engine = IncrementalLight::new(name, params);
        engine.log = log;
        engine.hists = AttributeHistograms {
            histograms,
            bins: hist_bins,
        };
        engine.hists_valid = hists_valid;
        engine.bins = bins;
        engine.supports = supports;
        engine.model = model;
        engine.dirty_full = dirty_full;
        engine.stats = stats;

        let num_blocks = r.usize()?;
        for _ in 0..num_blocks {
            let id = r.u64()?;
            let rows = r.usize()?;
            let d = r.usize()?;
            let len = rows
                .checked_mul(d)
                .ok_or_else(|| "block payload size overflow".to_string())?;
            let mut data = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                data.push(r.f64()?);
            }
            if !engine.log.contains(id) {
                return Err(format!("payload for block {id} not in the log"));
            }
            let bytes = 16 + 8 * data.len();
            let handle: DatasetHandle<RowBlock> = DatasetHandle::new(engine.block_name(id));
            store.put_segmented(
                &handle,
                RowBlock::new(rows, d, data),
                bytes,
                row_block_seg_codec(),
            );
        }
        r.finish()?;
        Ok(engine)
    }
}

/// [`IncrementalLight`] is also the *durable* tenant: the service
/// journals each block before applying it and snapshots the full engine
/// state, giving `p3c serve` crash recovery with bounded replay
/// (DESIGN.md §16).
impl p3c_mapreduce::service::DurableTenant for IncrementalLight {
    fn encode_create(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        journal::put_u32(&mut buf, STATE_VERSION);
        put_params(&mut buf, &self.params);
        buf
    }

    fn decode_create(name: &str, bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32()?;
        if version != STATE_VERSION {
            return Err(format!("unsupported create record version {version}"));
        }
        let params = read_params(&mut r)?;
        r.finish()?;
        Ok(IncrementalLight::new(name, params))
    }

    fn encode_block(block: &RowBlock) -> Vec<u8> {
        let mut buf = Vec::new();
        journal::put_usize(&mut buf, block.len());
        journal::put_usize(&mut buf, block.dim());
        for &v in block.as_slice() {
            journal::put_f64(&mut buf, v);
        }
        buf
    }

    fn decode_block(bytes: &[u8]) -> Result<RowBlock, String> {
        let mut r = ByteReader::new(bytes);
        let rows = r.usize()?;
        let d = r.usize()?;
        let len = rows
            .checked_mul(d)
            .ok_or_else(|| "block size overflow".to_string())?;
        let mut data = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            data.push(r.f64()?);
        }
        r.finish()?;
        Ok(RowBlock::new(rows, d, data))
    }

    fn snapshot_state(&self, store: &DatasetStore) -> Result<Vec<u8>, String> {
        self.snapshot_bytes(store)
    }

    fn restore_state(name: &str, bytes: &[u8], store: &DatasetStore) -> Result<Self, String> {
        IncrementalLight::from_snapshot_bytes(name, bytes, store)
    }

    fn discretization_stamp(&self) -> u64 {
        self.bins as u64
    }
}

/// Lazily-materialized cumulative row block, fetched at most once per
/// recluster and shared by every stage that falls back to raw rows.
struct CumulativeRows<'a> {
    block_names: Vec<String>,
    store: &'a DatasetStore,
    cached: RefCell<Option<Arc<RowBlock>>>,
}

impl<'a> CumulativeRows<'a> {
    fn new(engine: &IncrementalLight, store: &'a DatasetStore) -> Self {
        let block_names = engine
            .log
            .entries()
            .iter()
            .filter(|e| e.rows > 0)
            .map(|e| engine.block_name(e.id))
            .collect();
        Self {
            block_names,
            store,
            cached: RefCell::new(None),
        }
    }

    fn fetch(&self) -> Result<Arc<RowBlock>, String> {
        let mut cached = self.cached.borrow_mut();
        if let Some(block) = cached.as_ref() {
            return Ok(Arc::clone(block));
        }
        let mut blocks = Vec::with_capacity(self.block_names.len());
        for name in &self.block_names {
            let handle: DatasetHandle<RowBlock> = DatasetHandle::new(name.clone());
            blocks.push(self.store.get(&handle).map_err(|e| e.to_string())?);
        }
        let refs: Vec<&RowBlock> = blocks.iter().map(|b| b.as_ref()).collect();
        let block = Arc::new(RowBlock::concat(&refs));
        *cached = Some(Arc::clone(&block));
        Ok(block)
    }
}

/// [`LevelCounter`] answering from the maintained [`SupportCache`];
/// only candidates the cache has never seen trigger a pass over the
/// cumulative rows (fetched lazily, at most once per recluster).
struct CachedCounter<'a, 'b> {
    cache: &'a mut SupportCache,
    cum: &'a CumulativeRows<'b>,
    scans: u64,
    cached_levels: u64,
}

impl LevelCounter for CachedCounter<'_, '_> {
    fn count_level(&mut self, candidates: &[Signature]) -> Result<Vec<u64>, String> {
        let mut counts = vec![0u64; candidates.len()];
        let mut missing: Vec<usize> = Vec::new();
        for (i, sig) in candidates.iter().enumerate() {
            match self.cache.get(sig) {
                Some(c) => counts[i] = c,
                None => missing.push(i),
            }
        }
        if missing.is_empty() {
            if !candidates.is_empty() {
                self.cached_levels += 1;
            }
            return Ok(counts);
        }
        let block = self.cum.fetch()?;
        let rows = block.row_refs();
        let miss_sigs: Vec<Signature> = missing.iter().map(|&i| candidates[i].clone()).collect();
        let fresh = crate::support::count_supports_rssc(&miss_sigs, &rows);
        for (&i, (sig, c)) in missing.iter().zip(miss_sigs.iter().zip(fresh)) {
            counts[i] = c;
            self.cache.insert(sig.clone(), c);
        }
        self.scans += 1;
        Ok(counts)
    }
}

/// Counter for the 0-row path: there are no relevant intervals, so no
/// level is ever counted.
struct NoRowsCounter;

impl LevelCounter for NoRowsCounter {
    fn count_level(&mut self, candidates: &[Signature]) -> Result<Vec<u64>, String> {
        Ok(vec![0; candidates.len()])
    }
}

/// Rebuilds any per-core unique-member histograms whose bin rule
/// stepped since they were last built, from the unique members' rows.
fn refresh_stale_unique_hists(
    model: &mut ModelState,
    cum: &CumulativeRows<'_>,
    params: &P3cParams,
) -> Result<(), String> {
    if model
        .per_core
        .iter()
        .all(|cs| !cs.unique_hists_stale && !cs.unique_hists.is_empty())
    {
        // Also fine: empty unique sets never consult the histograms.
        if model
            .per_core
            .iter()
            .zip(&model.membership.unique_members)
            .all(|(cs, u)| u.is_empty() || !cs.unique_hists.is_empty())
        {
            return Ok(());
        }
    }
    let needs_rebuild: Vec<usize> = model
        .per_core
        .iter()
        .zip(&model.membership.unique_members)
        .enumerate()
        .filter(|(_, (cs, u))| {
            !u.is_empty() && (cs.unique_hists_stale || cs.unique_hists.is_empty())
        })
        .map(|(c, _)| c)
        .collect();
    if needs_rebuild.is_empty() {
        return Ok(());
    }
    let block = cum.fetch()?;
    for c in needs_rebuild {
        let ids = &model.membership.unique_members[c];
        let cs = &mut model.per_core[c];
        cs.unique_hists = unique_histograms(ids, &block, params);
        cs.unique_hists_stale = false;
    }
    Ok(())
}

/// Builds the per-attribute histograms over one core's unique members,
/// exactly as batch attribute inspection does: bin count
/// `rule(|unique|)`, rows added in ascending id order.
fn unique_histograms(ids: &[usize], block: &RowBlock, params: &P3cParams) -> Vec<Histogram> {
    let d = block.dim();
    let bins = params.bin_rule.to_rule().num_bins(ids.len()).max(1);
    let mut hists = vec![Histogram::new(bins); d];
    for &i in ids {
        for (j, h) in hists.iter_mut().enumerate() {
            h.add(block.row(i)[j]);
        }
    }
    hists
}

/// The Light finalization answered entirely from maintained state —
/// mirrors [`light_finalize`] stage by stage, with each row scan
/// replaced by its maintained summary:
/// `inspect_attributes(unique_rows)` becomes
/// [`inspect_from_histograms`] over the maintained unique histograms,
/// and `tighten_intervals` reads the maintained min/max bounds.
fn finalize_from_state(model: &ModelState, params: &P3cParams) -> Clustering {
    let mut clusters = Vec::with_capacity(model.cores.len());
    for (c, core) in model.cores.iter().enumerate() {
        let cs = &model.per_core[c];
        let members = &model.membership.members[c];
        let unique = &model.membership.unique_members[c];
        let core_attrs = core.signature.attributes();
        let extra = if unique.is_empty() {
            Vec::new()
        } else {
            inspect_from_histograms(&cs.unique_hists, unique.len(), &core_attrs, params)
        };
        let mut attrs = core_attrs.clone();
        attrs.extend(extra.iter().map(|iv| iv.attr));
        let mut intervals = tighten_from_bounds(
            &core_attrs,
            &cs.member_min,
            &cs.member_max,
            members.is_empty(),
        );
        let ai_attrs: BTreeSet<usize> = extra.iter().map(|iv| iv.attr).collect();
        intervals.extend(tighten_from_bounds(
            &ai_attrs,
            &cs.unique_min,
            &cs.unique_max,
            unique.is_empty(),
        ));
        clusters.push(ProjectedCluster::new(members.clone(), attrs, intervals));
    }
    Clustering::new(clusters, model.membership.outliers.clone())
}

/// `tighten_intervals` from maintained bounds: identical output, since
/// min/max over a set of (non-NaN) values is order-free. An empty
/// member set maps to `[0, 0]`, matching the batch helper.
fn tighten_from_bounds(
    attrs: &BTreeSet<usize>,
    min: &[f64],
    max: &[f64],
    empty: bool,
) -> Vec<AttrInterval> {
    attrs
        .iter()
        .map(|&attr| {
            if empty {
                AttrInterval::new(attr, 0.0, 0.0)
            } else {
                AttrInterval::new(attr, min[attr], max[attr])
            }
        })
        .collect()
}

/// Builds the per-core finalization state from the cumulative rows —
/// the full-path twin of the append-time maintenance.
fn build_finalize_state(
    rows: &[&[f64]],
    d: usize,
    membership: &LightMembership,
    params: &P3cParams,
) -> Vec<CoreFinalizeState> {
    let k = membership.members.len();
    let mut out = Vec::with_capacity(k);
    for c in 0..k {
        let mut cs = CoreFinalizeState::empty(d);
        for &i in &membership.members[c] {
            cs.absorb_member(rows[i]);
        }
        let unique = &membership.unique_members[c];
        for &i in unique {
            for (j, &v) in rows[i].iter().enumerate() {
                cs.unique_min[j] = cs.unique_min[j].min(v);
                cs.unique_max[j] = cs.unique_max[j].max(v);
            }
        }
        if !unique.is_empty() {
            let bins = params.bin_rule.to_rule().num_bins(unique.len()).max(1);
            let mut hists = vec![Histogram::new(bins); d];
            for &i in unique {
                for (j, h) in hists.iter_mut().enumerate() {
                    h.add(rows[i][j]);
                }
            }
            cs.unique_hists = hists;
        }
        out.push(cs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};
    use p3c_dataset::Dataset;

    fn spec(n: usize, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n,
            d: 8,
            num_clusters: 3,
            noise_fraction: 0.1,
            max_cluster_dims: 4,
            seed,
            ..SyntheticSpec::default()
        }
    }

    fn chunk(block: &RowBlock, start: usize, len: usize) -> RowBlock {
        let rows: Vec<Vec<f64>> = (start..start + len)
            .map(|i| block.row(i).to_vec())
            .collect();
        RowBlock::from_rows(&rows)
    }

    fn batch(cumulative: &RowBlock, params: &P3cParams) -> P3cResult {
        let ds = Dataset::from(cumulative.clone());
        crate::p3cplus::P3cPlusLight::new(params.clone()).cluster(&ds)
    }

    fn assert_identical(inc: &P3cResult, bat: &P3cResult) {
        assert_eq!(inc.clustering, bat.clustering);
        assert_eq!(inc.cores, bat.cores);
        assert_eq!(inc.stats.bins, bat.stats.bins);
        assert_eq!(inc.stats.relevant_intervals, bat.stats.relevant_intervals);
        assert_eq!(inc.stats.cores, bat.stats.cores);
        assert_eq!(inc.stats.outliers, bat.stats.outliers);
        assert_eq!(
            inc.stats.core_gen.candidates_per_level,
            bat.stats.core_gen.candidates_per_level
        );
        assert_eq!(
            inc.stats.core_gen.proven_per_level,
            bat.stats.core_gen.proven_per_level
        );
        assert_eq!(inc.stats.redundancy_removed, bat.stats.redundancy_removed);
    }

    #[test]
    fn append_stream_matches_batch_and_goes_fast() {
        let data = generate(&spec(4000, 7));
        let all = RowBlock::from(data.dataset.clone());
        let store = DatasetStore::new();
        let params = P3cParams::default();
        let mut eng = IncrementalLight::new("t", params.clone());
        let mut fed = 0usize;
        let mut saw_fast = false;
        for step in [1000usize, 1000, 500, 500, 500, 500] {
            eng.append(&store, chunk(&all, fed, step)).unwrap();
            fed += step;
            let outcome = eng.recluster(&store).unwrap();
            let cumulative = chunk(&all, 0, fed);
            assert_identical(&outcome.result, &batch(&cumulative, &params));
            saw_fast |= outcome.path == ReclusterPath::Fast;
        }
        assert!(saw_fast, "append-only stream never took the fast path");
        assert!(eng.stats().cached_levels > 0, "{:?}", eng.stats());
    }

    #[test]
    fn retract_falls_back_but_stays_identical() {
        let data = generate(&spec(3000, 13));
        let all = RowBlock::from(data.dataset.clone());
        let store = DatasetStore::new();
        let params = P3cParams::default();
        let mut eng = IncrementalLight::new("t", params.clone());
        let a = eng.append(&store, chunk(&all, 0, 1000)).unwrap();
        let _b = eng.append(&store, chunk(&all, 1000, 1000)).unwrap();
        let c = eng.append(&store, chunk(&all, 2000, 1000)).unwrap();
        eng.recluster(&store).unwrap();
        assert!(eng.retract(&store, a).unwrap());
        assert!(!eng.retract(&store, a).unwrap(), "double retract");
        let outcome = eng.recluster(&store).unwrap();
        assert_eq!(outcome.path, ReclusterPath::Full);
        // Cumulative is now blocks b then c.
        let mut rows: Vec<Vec<f64>> = (1000..3000).map(|i| all.row(i).to_vec()).collect();
        let cumulative = RowBlock::from_rows(&rows);
        assert_identical(&outcome.result, &batch(&cumulative, &params));
        // Retract down to one block, then to nothing.
        assert!(eng.retract(&store, c).unwrap());
        rows.truncate(1000);
        let outcome = eng.recluster(&store).unwrap();
        assert_identical(
            &outcome.result,
            &batch(&RowBlock::from_rows(&rows), &params),
        );
    }

    #[test]
    fn empty_and_trivial_cases() {
        let store = DatasetStore::new();
        let mut eng = IncrementalLight::new("t", P3cParams::default());
        let outcome = eng.recluster(&store).unwrap();
        assert_eq!(outcome.path, ReclusterPath::Empty);
        assert_eq!(outcome.result.clustering.num_clusters(), 0);
        // Append everything, retract everything: back to empty.
        let block = RowBlock::from_rows(&[vec![0.5, 0.5], vec![0.2, 0.8]]);
        let id = eng.append(&store, block).unwrap();
        assert!(eng.retract(&store, id).unwrap());
        let outcome = eng.recluster(&store).unwrap();
        assert_eq!(outcome.path, ReclusterPath::Empty);
        assert!(eng.materialize(&store).unwrap().is_empty());
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let store = DatasetStore::new();
        let mut eng = IncrementalLight::new("t", P3cParams::default());
        eng.append(&store, RowBlock::from_rows(&[vec![0.1, 0.2]]))
            .unwrap();
        assert!(eng
            .append(&store, RowBlock::from_rows(&[vec![0.1, 0.2, 0.3]]))
            .is_err());
    }

    #[test]
    fn snapshot_roundtrip_continues_byte_identically() {
        use p3c_mapreduce::service::DurableTenant;
        let data = generate(&spec(2500, 21));
        let all = RowBlock::from(data.dataset.clone());
        let params = P3cParams::default();
        let store = DatasetStore::new();
        let mut eng = IncrementalLight::new("t", params.clone());
        eng.append(&store, chunk(&all, 0, 1000)).unwrap();
        eng.recluster(&store).unwrap();
        eng.append(&store, chunk(&all, 1000, 1000)).unwrap();
        // Snapshot mid-stream: model, support cache, and maintained
        // memberships are all live.
        let state = eng.snapshot_state(&store).unwrap();
        let store2 = DatasetStore::new();
        let mut back = IncrementalLight::from_snapshot_bytes("t", &state, &store2).unwrap();
        assert_eq!(back.stats().appends, eng.stats().appends);
        assert_eq!(back.total_rows(), eng.total_rows());
        assert_eq!(back.block_ids(), eng.block_ids());
        // Both engines continue on the same stream and must stay
        // byte-identical to each other and to batch.
        eng.append(&store, chunk(&all, 2000, 500)).unwrap();
        back.append(&store2, chunk(&all, 2000, 500)).unwrap();
        let a = eng.recluster(&store).unwrap();
        let b = back.recluster(&store2).unwrap();
        assert_eq!(a.path, b.path);
        assert_identical(&a.result, &b.result);
        assert_identical(&b.result, &batch(&chunk(&all, 0, 2500), &params));
        // Retract through the restored engine too.
        let first = back.block_ids()[0];
        assert!(back.retract(&store2, first).unwrap());
        let rows: Vec<Vec<f64>> = (1000..2500).map(|i| all.row(i).to_vec()).collect();
        let outcome = back.recluster(&store2).unwrap();
        assert_identical(
            &outcome.result,
            &batch(&RowBlock::from_rows(&rows), &params),
        );
    }

    #[test]
    fn block_codec_roundtrips_and_rejects_garbage() {
        use p3c_mapreduce::service::DurableTenant;
        let block = RowBlock::from_rows(&[vec![0.25, 0.5], vec![0.75, 1.0]]);
        let bytes = IncrementalLight::encode_block(&block);
        let back = IncrementalLight::decode_block(&bytes).unwrap();
        assert_eq!(back.as_slice(), block.as_slice());
        assert_eq!((back.len(), back.dim()), (2, 2));
        assert!(IncrementalLight::decode_block(&bytes[..bytes.len() - 1]).is_err());
        assert!(IncrementalLight::decode_block(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(IncrementalLight::decode_block(&extra).is_err());
    }

    #[test]
    fn create_codec_roundtrips_params() {
        use p3c_mapreduce::service::DurableTenant;
        let params = P3cParams {
            alpha_poisson: 1e-20,
            bin_rule: BinRuleChoice::Sturges,
            t_c: 123,
            ..P3cParams::default()
        };
        let eng = IncrementalLight::new("t", params.clone());
        let bytes = eng.encode_create();
        let back = IncrementalLight::decode_create("t", &bytes).unwrap();
        assert_eq!(back.name(), "t");
        assert_eq!(back.params().alpha_poisson, params.alpha_poisson);
        assert_eq!(back.params().bin_rule, params.bin_rule);
        assert_eq!(back.params().t_c, params.t_c);
        assert!(IncrementalLight::decode_create("t", &bytes[..4]).is_err());
    }

    #[test]
    #[should_panic(expected = "uniform bin rule")]
    fn exact_iqr_rule_rejected() {
        IncrementalLight::new(
            "t",
            P3cParams {
                bin_rule: BinRuleChoice::FreedmanDiaconisIqr,
                ..P3cParams::default()
            },
        );
    }
}
