//! Relevant interval detection (paper Section 3.2.2).
//!
//! Per attribute: apply the χ² uniformity test; while the histogram is
//! significantly non-uniform, mark the fullest bin and remove it from the
//! test. Adjacent marked bins are then merged into relevant intervals `Î`.

use crate::types::Interval;
use p3c_stats::chi2::chi2_uniformity_test;
use p3c_stats::Histogram;

/// Marks relevant bins of one attribute's histogram.
///
/// Returns the marked bin indices (sorted). The loop marks the bin with
/// the highest support, removes it, and repeats as long as the remaining
/// bins reject uniformity at `alpha` — exactly the paper's procedure.
pub fn mark_relevant_bins(hist: &Histogram, alpha: f64) -> Vec<usize> {
    let mut remaining: Vec<(usize, f64)> = hist.counts().iter().copied().enumerate().collect();
    let mut marked = Vec::new();
    loop {
        let counts: Vec<f64> = remaining.iter().map(|&(_, c)| c).collect();
        let reject = match chi2_uniformity_test(&counts) {
            Some(t) => t.is_non_uniform(alpha),
            None => false, // fewer than 2 bins left, or all empty
        };
        if !reject {
            break;
        }
        // Mark the fullest remaining bin (ties → lowest index).
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).unwrap())
            .expect("nonempty");
        marked.push(remaining.remove(pos).0);
    }
    marked.sort_unstable();
    marked
}

/// Merges adjacent marked bins of one attribute into intervals.
pub fn merge_marked_bins(attr: usize, marked: &[usize], bins: usize) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut iter = marked.iter().copied();
    let Some(first) = iter.next() else { return out };
    let mut lo = first;
    let mut hi = first;
    for b in iter {
        if b == hi + 1 {
            hi = b;
        } else {
            out.push(Interval::new(attr, lo, hi, bins));
            lo = b;
            hi = b;
        }
    }
    out.push(Interval::new(attr, lo, hi, bins));
    out
}

/// Detects all relevant intervals `Î` across attributes. Each attribute
/// uses its own histogram's bin count (per-attribute binning is what the
/// exact-IQR Freedman–Diaconis extension produces).
pub fn relevant_intervals(histograms: &[Histogram], alpha: f64) -> Vec<Interval> {
    let mut out = Vec::new();
    for (attr, hist) in histograms.iter().enumerate() {
        let marked = mark_relevant_bins(hist, alpha);
        out.extend(merge_marked_bins(attr, &marked, hist.num_bins()));
    }
    out
}

/// Support of an interval directly from its histogram (sum of bin counts).
pub fn interval_support(hist: &Histogram, interval: &Interval) -> f64 {
    (interval.bin_lo..=interval.bin_hi)
        .map(|b| hist.count(b))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: &[f64]) -> Histogram {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            // add c observations into bin i via its midpoint
            let mid = (i as f64 + 0.5) / counts.len() as f64;
            h.add_weighted(mid, c);
        }
        h
    }

    #[test]
    fn uniform_histogram_marks_nothing() {
        let h = hist(&[100.0; 10]);
        assert!(mark_relevant_bins(&h, 0.001).is_empty());
    }

    #[test]
    fn single_spike_marked() {
        let mut counts = vec![100.0; 10];
        counts[4] = 1200.0;
        let h = hist(&counts);
        let marked = mark_relevant_bins(&h, 0.001);
        assert_eq!(marked, vec![4]);
    }

    #[test]
    fn two_spikes_marked() {
        let mut counts = vec![100.0; 10];
        counts[2] = 900.0;
        counts[7] = 1100.0;
        let h = hist(&counts);
        let marked = mark_relevant_bins(&h, 0.001);
        assert_eq!(marked, vec![2, 7]);
    }

    #[test]
    fn adjacent_spikes_merge_into_one_interval() {
        let mut counts = vec![100.0; 10];
        counts[3] = 800.0;
        counts[4] = 900.0;
        let h = hist(&counts);
        let marked = mark_relevant_bins(&h, 0.001);
        let ivs = merge_marked_bins(0, &marked, 10);
        assert_eq!(ivs.len(), 1);
        assert_eq!((ivs[0].bin_lo, ivs[0].bin_hi), (3, 4));
    }

    #[test]
    fn separated_spikes_give_two_intervals() {
        let ivs = merge_marked_bins(2, &[1, 2, 5], 10);
        assert_eq!(ivs.len(), 2);
        assert_eq!((ivs[0].bin_lo, ivs[0].bin_hi), (1, 2));
        assert_eq!((ivs[1].bin_lo, ivs[1].bin_hi), (5, 5));
        assert!(ivs.iter().all(|iv| iv.attr == 2));
    }

    #[test]
    fn empty_marks_give_no_intervals() {
        assert!(merge_marked_bins(0, &[], 10).is_empty());
    }

    #[test]
    fn interval_support_sums_bins() {
        let h = hist(&[10.0, 20.0, 30.0, 40.0]);
        let iv = Interval::new(0, 1, 2, 4);
        assert_eq!(interval_support(&h, &iv), 50.0);
    }

    #[test]
    fn relevant_intervals_across_attributes() {
        let mut a0 = vec![100.0; 10];
        a0[0] = 1500.0;
        let a1 = vec![100.0; 10];
        let ivs = relevant_intervals(&[hist(&a0), hist(&a1)], 0.001);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].attr, 0);
        assert_eq!((ivs[0].bin_lo, ivs[0].bin_hi), (0, 0));
    }

    #[test]
    fn marking_terminates_on_pathological_input() {
        // Strictly increasing counts: should mark some and stop without
        // looping forever even at a loose alpha.
        let counts: Vec<f64> = (1..=20).map(|i| (i * i) as f64).collect();
        let h = hist(&counts);
        let marked = mark_relevant_bins(&h, 0.05);
        assert!(!marked.is_empty());
        assert!(marked.len() <= 20);
    }
}
