//! Cluster-core redundancy filtering (paper Section 4.2.1).
//!
//! A signature describing only the *intersection region* of other hidden
//! clusters passes the Poisson test (the paper's Figure 2 example) but
//! reports a cluster that does not exist. P3C+ removes such signatures:
//!
//! ```text
//! S redundant in Ŝ  ⟺  S ⊆ ∪ { Sᵢ ∈ Ŝ : Sᵢ >_r S }          (Eq. 5)
//! S₁ >_r S₂          ⟺  Supp(S₁)/Supp_exp(S₁) > Supp(S₂)/Supp_exp(S₂)  (Eq. 6)
//! ```
//!
//! Containment `S ⊆ ∪ Sᵢ` is interval coverage: every interval of `S` is
//! covered (same attribute, enclosing bin range) by an interval of some
//! strictly-more-interesting signature.

use crate::cores::ClusterCore;

/// Whether `core`'s signature is covered by the union of the given
/// (more interesting) signatures.
fn covered_by_union(core: &ClusterCore, better: &[&ClusterCore]) -> bool {
    core.signature.intervals().iter().all(|iv| {
        better
            .iter()
            .any(|b| b.signature.intervals().iter().any(|biv| biv.covers(iv)))
    })
}

/// Applies the redundancy filter to a core set, returning the surviving
/// cores (input order preserved) and the number removed.
pub fn filter_redundant(cores: Vec<ClusterCore>) -> (Vec<ClusterCore>, usize) {
    let n = cores.len();
    let keep: Vec<bool> = cores
        .iter()
        .map(|core| {
            let ratio = core.interest_ratio();
            let better: Vec<&ClusterCore> = cores
                .iter()
                .filter(|c| c.interest_ratio() > ratio)
                .collect();
            if better.is_empty() {
                return true;
            }
            !covered_by_union(core, &better)
        })
        .collect();
    let survivors: Vec<ClusterCore> = cores
        .into_iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(c, _)| c)
        .collect();
    let removed = n - survivors.len();
    (survivors, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interval, Signature};

    fn core(intervals: Vec<Interval>, support: f64, n: usize) -> ClusterCore {
        let signature = Signature::new(intervals);
        let expected = signature.expected_support(n);
        ClusterCore {
            signature,
            support,
            expected,
        }
    }

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    /// The paper's Figure 2 scenario: C1 clustered on {a1,a3}, C2 on
    /// {a1,a2} (both 50 points of n=100, interval width 0.1); the
    /// intersection region yields a redundant {a2,a3} signature with
    /// support 10.
    #[test]
    fn figure2_redundant_signature_removed() {
        let n = 100;
        // S1 = {I1 on a1, I3 on a3}, S2 = {I2 on a2, I4 on a1}, S3 = {I2 on a2, I3 on a3}.
        let s1 = core(vec![iv(1, 0, 0), iv(3, 5, 5)], 50.0, n);
        let s2 = core(vec![iv(2, 2, 2), iv(1, 0, 0)], 50.0, n);
        let s3 = core(vec![iv(2, 2, 2), iv(3, 5, 5)], 10.0, n);
        // Interest ratios: S1 = S2 = 50/1 = 50; S3 = 10/1 = 10.
        let (kept, removed) = filter_redundant(vec![s1.clone(), s2.clone(), s3]);
        assert_eq!(removed, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|c| c.signature == s1.signature));
        assert!(kept.iter().any(|c| c.signature == s2.signature));
    }

    #[test]
    fn non_covered_signature_survives() {
        let n = 100;
        let s1 = core(vec![iv(0, 0, 0), iv(1, 0, 0)], 50.0, n);
        // S3 has an interval on a fresh attribute 5 — not coverable.
        let s3 = core(vec![iv(1, 0, 0), iv(5, 3, 3)], 10.0, n);
        let (kept, removed) = filter_redundant(vec![s1, s3]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn equal_interest_does_not_dominate() {
        // Eq. 6 is strict: equal ratios never make each other redundant.
        let n = 100;
        let a = core(vec![iv(0, 0, 0)], 30.0, n);
        let b = core(vec![iv(0, 0, 0)], 30.0, n);
        let (kept, removed) = filter_redundant(vec![a, b]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn wider_interval_covers_narrower() {
        let n = 1000;
        // Strong wide cluster core on a0 bins 2..5.
        let wide = core(vec![iv(0, 2, 5)], 900.0, n);
        // Weak core inside it.
        let narrow = core(vec![iv(0, 3, 4)], 250.0, n);
        // Ratios: wide = 900/(1000·0.4) = 2.25; narrow = 250/200 = 1.25.
        let (kept, removed) = filter_redundant(vec![wide.clone(), narrow]);
        assert_eq!(removed, 1);
        assert_eq!(kept[0].signature, wide.signature);
    }

    #[test]
    fn coverage_needs_every_interval() {
        let n = 100;
        let better = core(vec![iv(0, 0, 0)], 90.0, n);
        // Candidate has intervals on attrs 0 and 1; only attr 0 covered.
        let cand = core(vec![iv(0, 0, 0), iv(1, 4, 4)], 5.0, n);
        let (kept, removed) = filter_redundant(vec![better, cand]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input() {
        let (kept, removed) = filter_redundant(vec![]);
        assert!(kept.is_empty());
        assert_eq!(removed, 0);
    }

    #[test]
    fn union_coverage_across_multiple_better_signatures() {
        // Figure 2's essence: S3 is covered by S1 ∪ S2 even though neither
        // alone covers it.
        let n = 100;
        let s1 = core(vec![iv(0, 0, 0), iv(2, 5, 5)], 50.0, n);
        let s2 = core(vec![iv(1, 3, 3), iv(0, 0, 0)], 50.0, n);
        let s3 = core(vec![iv(1, 3, 3), iv(2, 5, 5)], 10.0, n);
        let (_, removed) = filter_redundant(vec![s1, s2, s3]);
        assert_eq!(removed, 1);
    }
}
