//! Cluster-core redundancy filtering (paper Section 4.2.1).
//!
//! A signature describing only the *intersection region* of other hidden
//! clusters passes the Poisson test (the paper's Figure 2 example) but
//! reports a cluster that does not exist. P3C+ removes such signatures:
//!
//! ```text
//! S redundant in Ŝ  ⟺  S ⊆ ∪ { Sᵢ ∈ Ŝ : Sᵢ >_r S }          (Eq. 5)
//! S₁ >_r S₂          ⟺  Supp(S₁)/Supp_exp(S₁) > Supp(S₂)/Supp_exp(S₂)  (Eq. 6)
//! ```
//!
//! Containment `S ⊆ ∪ Sᵢ` is interval coverage: every interval of `S` is
//! covered (same attribute, enclosing bin range) by an interval of some
//! strictly-more-interesting signature.
//!
//! [`filter_redundant`] applies Eq. 5/6 verbatim with the width-based
//! Eq. 7 expected supports. [`filter_redundant_proven`] is the variant
//! the pipelines use: it scores signatures against the
//! attribute-independence null (observed singleton supports instead of
//! interval widths), runs Eq. 5 over the *full* proven set, and only
//! then keeps the maximal survivors — see the module tests and
//! DESIGN.md §11 for why the order matters.

use crate::cores::ClusterCore;
use crate::support::SupportTable;
use crate::types::Signature;

/// Whether `core`'s signature is covered by the union of the given
/// (more interesting) signatures.
fn covered_by_union(core: &ClusterCore, better: &[&ClusterCore]) -> bool {
    core.signature.intervals().iter().all(|iv| {
        better
            .iter()
            .any(|b| b.signature.intervals().iter().any(|biv| biv.covers(iv)))
    })
}

/// Applies the redundancy filter to a core set, returning the surviving
/// cores (input order preserved) and the number removed.
pub fn filter_redundant(cores: Vec<ClusterCore>) -> (Vec<ClusterCore>, usize) {
    let n = cores.len();
    let keep: Vec<bool> = cores
        .iter()
        .map(|core| {
            let ratio = core.interest_ratio();
            let better: Vec<&ClusterCore> = cores
                .iter()
                .filter(|c| c.interest_ratio() > ratio)
                .collect();
            if better.is_empty() {
                return true;
            }
            !covered_by_union(core, &better)
        })
        .collect();
    let survivors: Vec<ClusterCore> = cores
        .into_iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(c, _)| c)
        .collect();
    let removed = n - survivors.len();
    (survivors, removed)
}

/// Expected support of `sig` under the attribute-independence null:
/// `n · ∏ᵢ Supp(Iᵢ)/n`, with the observed singleton supports taken from
/// the support table (falling back to the width-based Eq. 7 term when a
/// singleton is missing, which cannot happen for Apriori-generated
/// signatures — every level-1 candidate is counted).
///
/// Unlike Eq. 7's width product, this null absorbs the marginal
/// densities: a signature scores above 1 only through genuine
/// *cross-attribute* correlation, so the interest ordering no longer
/// systematically favors higher-dimensional signatures.
pub fn independence_expected(sig: &Signature, table: &SupportTable, n: usize) -> f64 {
    let nf = n as f64;
    let mut expected = nf;
    for iv in sig.intervals() {
        let single = Signature::new(vec![*iv]);
        let supp = table.get(&single).unwrap_or_else(|| iv.width() * nf);
        expected *= supp / nf;
    }
    expected
}

/// Redundancy filter over the **full proven set** (paper Eq. 5, with the
/// interest ordering of Eq. 6 evaluated against the
/// attribute-independence null of [`independence_expected`]), followed
/// by a maximality pass over the survivors.
///
/// Running Eq. 5 before maximality is what fixes the overlap-region
/// artifact failure: a statistically proven signature describing only
/// the intersection of two true clusters can be *higher-dimensional*
/// than the true cluster cores it overlaps, so a maximality-first order
/// discards the true cores in its favor. Under the independence null the
/// artifact's interest collapses to ≈ 1 (its support is what independent
/// marginals already predict), every one of its intervals is covered by
/// a strictly-more-interesting true core, and Eq. 5 removes it — after
/// which the true cores are maximal among the survivors.
///
/// The survivor set of Eq. 5 is **not** downward closed, so the
/// immediate-subsignature marking of `cores::filter_maximal` is invalid
/// here; maximality is decided by general strict-subsignature
/// containment instead. Returned cores keep the proven order
/// (level-major, sorted within level) and carry `expected = 0.0`; the
/// caller attaches the Eq. 7 expected supports.
pub fn filter_redundant_proven(
    proven: &[(Signature, f64)],
    table: &SupportTable,
    n: usize,
) -> Vec<ClusterCore> {
    let ratios: Vec<f64> = proven
        .iter()
        .map(|(sig, supp)| {
            let expected = independence_expected(sig, table, n);
            if expected <= 0.0 {
                f64::INFINITY
            } else {
                supp / expected
            }
        })
        .collect();
    // Eq. 5: S is redundant iff every interval of S is covered by the
    // union of the strictly-more-interesting signatures.
    let survivors: Vec<usize> = (0..proven.len())
        .filter(|&i| {
            let better: Vec<&Signature> = (0..proven.len())
                .filter(|&j| ratios[j] > ratios[i])
                .map(|j| &proven[j].0)
                .collect();
            better.is_empty()
                || !proven[i].0.intervals().iter().all(|iv| {
                    better
                        .iter()
                        .any(|b| b.intervals().iter().any(|biv| biv.covers(iv)))
                })
        })
        .collect();
    // Maximality among the survivors (Definition 5), by general strict
    // subsignature containment. Apriori-joined signatures share the
    // exact `Interval` values of the relevant-interval list, so interval
    // equality decides membership.
    survivors
        .iter()
        .filter(|&&i| {
            let (sig, _) = &proven[i];
            !survivors.iter().any(|&j| {
                let (sup, _) = &proven[j];
                sup.len() > sig.len()
                    && sig
                        .intervals()
                        .iter()
                        .all(|iv| sup.intervals().iter().any(|siv| siv == iv))
            })
        })
        .map(|&i| ClusterCore {
            signature: proven[i].0.clone(),
            support: proven[i].1,
            expected: 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interval, Signature};

    fn core(intervals: Vec<Interval>, support: f64, n: usize) -> ClusterCore {
        let signature = Signature::new(intervals);
        let expected = signature.expected_support(n);
        ClusterCore {
            signature,
            support,
            expected,
        }
    }

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    /// The paper's Figure 2 scenario: C1 clustered on {a1,a3}, C2 on
    /// {a1,a2} (both 50 points of n=100, interval width 0.1); the
    /// intersection region yields a redundant {a2,a3} signature with
    /// support 10.
    #[test]
    fn figure2_redundant_signature_removed() {
        let n = 100;
        // S1 = {I1 on a1, I3 on a3}, S2 = {I2 on a2, I4 on a1}, S3 = {I2 on a2, I3 on a3}.
        let s1 = core(vec![iv(1, 0, 0), iv(3, 5, 5)], 50.0, n);
        let s2 = core(vec![iv(2, 2, 2), iv(1, 0, 0)], 50.0, n);
        let s3 = core(vec![iv(2, 2, 2), iv(3, 5, 5)], 10.0, n);
        // Interest ratios: S1 = S2 = 50/1 = 50; S3 = 10/1 = 10.
        let (kept, removed) = filter_redundant(vec![s1.clone(), s2.clone(), s3]);
        assert_eq!(removed, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|c| c.signature == s1.signature));
        assert!(kept.iter().any(|c| c.signature == s2.signature));
    }

    #[test]
    fn non_covered_signature_survives() {
        let n = 100;
        let s1 = core(vec![iv(0, 0, 0), iv(1, 0, 0)], 50.0, n);
        // S3 has an interval on a fresh attribute 5 — not coverable.
        let s3 = core(vec![iv(1, 0, 0), iv(5, 3, 3)], 10.0, n);
        let (kept, removed) = filter_redundant(vec![s1, s3]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn equal_interest_does_not_dominate() {
        // Eq. 6 is strict: equal ratios never make each other redundant.
        let n = 100;
        let a = core(vec![iv(0, 0, 0)], 30.0, n);
        let b = core(vec![iv(0, 0, 0)], 30.0, n);
        let (kept, removed) = filter_redundant(vec![a, b]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn wider_interval_covers_narrower() {
        let n = 1000;
        // Strong wide cluster core on a0 bins 2..5.
        let wide = core(vec![iv(0, 2, 5)], 900.0, n);
        // Weak core inside it.
        let narrow = core(vec![iv(0, 3, 4)], 250.0, n);
        // Ratios: wide = 900/(1000·0.4) = 2.25; narrow = 250/200 = 1.25.
        let (kept, removed) = filter_redundant(vec![wide.clone(), narrow]);
        assert_eq!(removed, 1);
        assert_eq!(kept[0].signature, wide.signature);
    }

    #[test]
    fn coverage_needs_every_interval() {
        let n = 100;
        let better = core(vec![iv(0, 0, 0)], 90.0, n);
        // Candidate has intervals on attrs 0 and 1; only attr 0 covered.
        let cand = core(vec![iv(0, 0, 0), iv(1, 4, 4)], 5.0, n);
        let (kept, removed) = filter_redundant(vec![better, cand]);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input() {
        let (kept, removed) = filter_redundant(vec![]);
        assert!(kept.is_empty());
        assert_eq!(removed, 0);
    }

    /// Builds a support table holding the given (signature, support)
    /// pairs — the shape `filter_redundant_proven` reads singletons from.
    fn table_of(entries: &[(&Signature, f64)]) -> crate::support::SupportTable {
        let mut table = crate::support::SupportTable::default();
        for (sig, supp) in entries {
            table.insert((*sig).clone(), *supp);
        }
        table
    }

    /// The overlap-artifact scenario behind the RNIA ordering failure:
    /// two true clusters A = {a0,a1} and B = {a0,a2} share their a0
    /// interval, and their intersection region proves both a spurious
    /// {a1,a2} and a spurious {a0,a1,a2}. Maximality-first filtering
    /// would keep only the 3-dim artifact and discard both true cores;
    /// the independence-null proven-set filter keeps exactly A and B.
    #[test]
    fn overlap_artifacts_removed_and_true_cores_resurrected() {
        let n = 1000;
        let s0 = Signature::new(vec![iv(0, 0, 0)]);
        let s1 = Signature::new(vec![iv(1, 2, 2)]);
        let s2 = Signature::new(vec![iv(2, 4, 4)]);
        let a = Signature::new(vec![iv(0, 0, 0), iv(1, 2, 2)]);
        let b = Signature::new(vec![iv(0, 0, 0), iv(2, 4, 4)]);
        let artifact2 = Signature::new(vec![iv(1, 2, 2), iv(2, 4, 4)]);
        let artifact3 = Signature::new(vec![iv(0, 0, 0), iv(1, 2, 2), iv(2, 4, 4)]);
        let table = table_of(&[(&s0, 800.0), (&s1, 450.0), (&s2, 450.0)]);
        // Interest under independence: A = B = 400/360 ≈ 1.11;
        // singletons = 1.0; artifacts = 150/202.5 ≈ 0.74 and
        // 150/162 ≈ 0.93 — both below the true cores covering them.
        let proven = vec![
            (s0, 800.0),
            (s1, 450.0),
            (s2, 450.0),
            (a.clone(), 400.0),
            (b.clone(), 400.0),
            (artifact2, 150.0),
            (artifact3, 150.0),
        ];
        let kept = filter_redundant_proven(&proven, &table, n);
        let sigs: Vec<&Signature> = kept.iter().map(|c| &c.signature).collect();
        assert_eq!(sigs, vec![&a, &b], "kept {sigs:?}");
    }

    /// A singleton on an attribute no better signature touches is a
    /// legitimate 1-dim core and must survive both passes.
    #[test]
    fn standalone_singleton_survives_proven_filter() {
        let n = 1000;
        let s0 = Signature::new(vec![iv(0, 0, 0)]);
        let s7 = Signature::new(vec![iv(7, 3, 3)]);
        let pair = Signature::new(vec![iv(0, 0, 0), iv(1, 2, 2)]);
        let s1 = Signature::new(vec![iv(1, 2, 2)]);
        let table = table_of(&[(&s0, 500.0), (&s1, 400.0), (&s7, 300.0)]);
        let proven = vec![(s0, 500.0), (s7.clone(), 300.0), (pair.clone(), 350.0)];
        let kept = filter_redundant_proven(&proven, &table, n);
        let sigs: Vec<&Signature> = kept.iter().map(|c| &c.signature).collect();
        // s0 is covered by the more interesting pair (ratio 1.75);
        // s7's attribute appears nowhere better, so it stays.
        assert_eq!(sigs, vec![&s7, &pair]);
    }

    /// Equal interest never triggers Eq. 5 (strict ordering), but the
    /// maximality pass still drops a strict subsignature of another
    /// survivor — the case where `cores::filter_maximal`'s
    /// immediate-subsignature marking would be unsound on the
    /// non-downward-closed survivor set.
    #[test]
    fn maximality_over_survivors_uses_general_containment() {
        let n = 1000;
        let s0 = Signature::new(vec![iv(0, 0, 0)]);
        let s1 = Signature::new(vec![iv(1, 2, 2)]);
        let s3 = Signature::new(vec![iv(3, 5, 5)]);
        let triple = Signature::new(vec![iv(0, 0, 0), iv(1, 2, 2), iv(3, 5, 5)]);
        let table = table_of(&[(&s0, 500.0), (&s1, 400.0), (&s3, 300.0)]);
        // triple's support equals the independence prediction
        // (1000·0.5·0.4·0.3 = 60), so its ratio ties the singletons at
        // 1.0 and Eq. 5 removes nothing; without the intermediate pairs
        // in the survivor set, only general containment can see that the
        // singletons sit inside the triple.
        let proven = vec![
            (s0, 500.0),
            (s1, 400.0),
            (s3, 300.0),
            (triple.clone(), 60.0),
        ];
        let kept = filter_redundant_proven(&proven, &table, n);
        let sigs: Vec<&Signature> = kept.iter().map(|c| &c.signature).collect();
        assert_eq!(sigs, vec![&triple]);
    }

    #[test]
    fn independence_expected_multiplies_singleton_fractions() {
        let n = 200;
        let s0 = Signature::new(vec![iv(0, 0, 0)]);
        let s1 = Signature::new(vec![iv(1, 2, 2)]);
        let pair = Signature::new(vec![iv(0, 0, 0), iv(1, 2, 2)]);
        let table = table_of(&[(&s0, 100.0), (&s1, 50.0)]);
        let expected = independence_expected(&pair, &table, n);
        assert!((expected - 200.0 * 0.5 * 0.25).abs() < 1e-12);
        // A missing singleton falls back to the Eq. 7 width term.
        let s9 = Signature::new(vec![iv(9, 0, 1)]);
        let width_only = independence_expected(&s9, &table, n);
        assert!((width_only - 200.0 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn union_coverage_across_multiple_better_signatures() {
        // Figure 2's essence: S3 is covered by S1 ∪ S2 even though neither
        // alone covers it.
        let n = 100;
        let s1 = core(vec![iv(0, 0, 0), iv(2, 5, 5)], 50.0, n);
        let s2 = core(vec![iv(1, 3, 3), iv(0, 0, 0)], 50.0, n);
        let s3 = core(vec![iv(1, 3, 3), iv(2, 5, 5)], 10.0, n);
        let (_, removed) = filter_redundant(vec![s1, s2, s3]);
        assert_eq!(removed, 1);
    }
}
