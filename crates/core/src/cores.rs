//! Cluster-core generation — the paper's Algorithm 1.
//!
//! Starting from the relevant intervals `Î`, candidates are grown
//! Apriori-style: two proven p-signatures sharing p−1 intervals join into
//! a (p+1)-candidate, which survives only if **every** leave-one-out
//! support test (Equation 1) passes:
//!
//! ```text
//! ∀ I ∈ S:  Supp_exp(S∖{I}, I)  <_p  Supp(S)
//! ```
//!
//! with `Supp_exp(Q, I) = Supp(Q) · width(I)` (Equation 2). P3C+
//! additionally requires the Cohen's d effect size of each comparison to
//! reach `θ_cc` (Section 4.1.2). Cluster cores are the *maximal* proven
//! signatures (Definition 5; extension-maximality is realized as
//! subset-filtering over the complete proven set, as in the original P3C).

use crate::config::P3cParams;
use crate::support::{count_supports_rssc, SupportTable};
use crate::types::Signature;
use p3c_stats::effect::effect_is_strong;
use p3c_stats::PoissonTest;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A proven, maximal signature with its support bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCore {
    /// The core's interval signature.
    pub signature: Signature,
    /// Observed support (rows contained in the signature).
    pub support: f64,
    /// Expected support under global uniformity (Equation 7).
    pub expected: f64,
}

impl ClusterCore {
    /// The interest ratio `Supp / Supp_exp` that orders signatures in the
    /// redundancy filter (Equation 6).
    pub fn interest_ratio(&self) -> f64 {
        if self.expected <= 0.0 {
            f64::INFINITY
        } else {
            self.support / self.expected
        }
    }
}

/// Per-run statistics of the generation process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreGenStats {
    /// Candidates generated per level (level 1 first).
    pub candidates_per_level: Vec<usize>,
    /// Proven signatures per level.
    pub proven_per_level: Vec<usize>,
    /// Total proven signatures across levels.
    pub total_proven: usize,
    /// Maximal signatures (before redundancy filtering).
    pub maximal: usize,
    /// Levels truncated by the `max_candidates_per_level` safety valve.
    pub truncated_levels: usize,
}

/// The combined P3C/P3C+ support test: Poisson significance, optionally
/// strengthened by the effect-size threshold.
#[derive(Debug, Clone, Copy)]
pub struct SupportTester {
    poisson: PoissonTest,
    theta_cc: Option<f64>,
}

impl SupportTester {
    /// Tester configured from the pipeline parameters.
    pub fn from_params(params: &P3cParams) -> Self {
        Self {
            poisson: PoissonTest::new(params.alpha_poisson),
            theta_cc: params.use_effect_size.then_some(params.theta_cc),
        }
    }

    /// One leave-one-out comparison: is `support` significantly (and, for
    /// P3C+, strongly) larger than `expected`?
    pub fn accepts(&self, support: f64, expected: f64) -> bool {
        if !self.poisson.significantly_larger(support, expected) {
            return false;
        }
        match self.theta_cc {
            Some(theta) => effect_is_strong(support, expected, theta),
            None => true,
        }
    }

    /// The full Equation 1 test of a signature with known support, using
    /// the support table for its (p−1)-subsignatures. A signature whose
    /// subsignature support is unknown fails (cannot be validated).
    pub fn passes_equation1(
        &self,
        sig: &Signature,
        support: f64,
        n: usize,
        table: &SupportTable,
    ) -> bool {
        for i in 0..sig.len() {
            let sub = sig.without_index(i);
            let sub_support = if sub.is_empty() {
                n as f64
            } else {
                match table.get(&sub) {
                    Some(s) => s,
                    None => return false,
                }
            };
            let expected = sub_support * sig.intervals()[i].width();
            if !self.accepts(support, expected) {
                return false;
            }
        }
        true
    }
}

/// Result of cluster-core generation.
#[derive(Debug, Clone)]
pub struct CoreGenResult {
    /// Maximal proven signatures — the cluster cores of Definition 5
    /// (redundancy filtering is a separate subsequent step in P3C+).
    pub cores: Vec<ClusterCore>,
    /// Every proven signature with its support.
    pub proven: Vec<(Signature, f64)>,
    /// Support table over all counted signatures.
    pub table: SupportTable,
    /// Per-level generation statistics.
    pub stats: CoreGenStats,
}

/// Generates the candidate set `Cand_{p+1}` from a set of p-signatures by
/// the Apriori join, with the standard all-subsets prune against
/// `prune_against` (signatures whose every p-subsignature must be known).
///
/// Implemented as the classic prefix-bucket join: two p-signatures are
/// joinable into a surviving candidate only if they agree on their first
/// p−1 intervals (any (p+1)-signature whose p-subsignatures are all
/// present has exactly one such parent pair), so signatures are grouped
/// by prefix and joined within groups. This is semantically identical to
/// the paper's all-pairs enumeration followed by the prune — the
/// [`crate::mr::coregen`] job keeps the pair-index form for fidelity —
/// but costs `Σ bucket²` instead of `k²`.
pub fn generate_candidates(
    level: &[Signature],
    prune_against: &HashSet<Signature>,
) -> Vec<Signature> {
    let mut sorted: Vec<&Signature> = level.iter().collect();
    sorted.sort();
    sorted.dedup();
    let mut out = Vec::new();
    for (start, end) in prefix_buckets(&sorted) {
        for i in start..end {
            for j in (i + 1)..end {
                if let Some(cand) = join_in_bucket(sorted[i], sorted[j], prune_against) {
                    out.push(cand);
                }
            }
        }
    }
    // Prefix-pair generation is duplicate-free; sorting suffices.
    out.sort();
    out
}

/// Bucket boundaries `(start, end)` over a sorted signature list: maximal
/// runs of equal-length signatures sharing their first p−1 intervals.
pub(crate) fn prefix_buckets<S: std::borrow::Borrow<Signature>>(
    sorted: &[S],
) -> Vec<(usize, usize)> {
    let mut buckets = Vec::new();
    let mut start = 0;
    while start < sorted.len() {
        let first = sorted[start].borrow();
        let prefix_len = first.len().saturating_sub(1);
        let mut end = start + 1;
        while end < sorted.len() {
            let next = sorted[end].borrow();
            if next.len() != first.len()
                || next.intervals()[..prefix_len] != first.intervals()[..prefix_len]
            {
                break;
            }
            end += 1;
        }
        buckets.push((start, end));
        start = end;
    }
    buckets
}

/// Joins two same-bucket signatures (shared (p−1)-prefix) into their
/// (p+1)-candidate and applies the Apriori prune, skipping the two parent
/// subsignatures (present by construction). Returns `None` when the tail
/// intervals collide on an attribute or the prune rejects.
pub(crate) fn join_in_bucket(
    a: &Signature,
    b: &Signature,
    prune_against: &HashSet<Signature>,
) -> Option<Signature> {
    let p = a.len();
    debug_assert_eq!(p, b.len());
    let a_last = a.intervals()[p - 1];
    let b_last = b.intervals()[p - 1];
    if a_last.attr == b_last.attr {
        return None;
    }
    // prefix + both tails, sorted by attribute (tails have the largest
    // attrs of their signatures, but may interleave with each other).
    let mut intervals = Vec::with_capacity(p + 1);
    intervals.extend_from_slice(&a.intervals()[..p - 1]);
    if a_last.attr < b_last.attr {
        intervals.push(a_last);
        intervals.push(b_last);
    } else {
        intervals.push(b_last);
        intervals.push(a_last);
    }
    let cand = Signature::new(intervals);
    // Prune: all (p)-subsignatures must be present. Dropping the tails
    // reproduces the parents a and b — skip those two indices.
    let (skip1, skip2) = (p - 1, p);
    for i in 0..cand.len() {
        if i == skip1 || i == skip2 {
            continue;
        }
        if !prune_against.contains(&cand.without_index(i)) {
            return None;
        }
    }
    Some(cand)
}

/// Resolves the supports of one level's candidates over the whole
/// database — the seam between Algorithm 1's control flow and *how*
/// supports are obtained. The batch pipelines scan the full row set per
/// level ([`ScanCounter`]); the incremental service answers from its
/// maintained support cache and scans only for candidates the cache has
/// never seen (which may require fetching spilled data, hence the
/// `Result`).
pub trait LevelCounter {
    /// Supports of `candidates`, in candidate order.
    fn count_level(&mut self, candidates: &[Signature]) -> Result<Vec<u64>, String>;
}

/// The batch [`LevelCounter`]: one RSSC pass over the full row set per
/// level (paper Section 5.3). Infallible.
pub struct ScanCounter<'a> {
    rows: &'a [&'a [f64]],
}

impl<'a> ScanCounter<'a> {
    /// Counter over the full row set.
    pub fn new(rows: &'a [&'a [f64]]) -> Self {
        Self { rows }
    }
}

impl LevelCounter for ScanCounter<'_> {
    fn count_level(&mut self, candidates: &[Signature]) -> Result<Vec<u64>, String> {
        Ok(count_supports_rssc(candidates, self.rows))
    }
}

/// Runs the full serial generation (Algorithm 1) over the given rows.
///
/// `intervals` are the relevant intervals `Î` (each carrying its
/// attribute's discretization).
pub fn generate_cluster_cores(
    intervals: &[crate::types::Interval],
    rows: &[&[f64]],
    params: &P3cParams,
) -> CoreGenResult {
    let mut counter = ScanCounter::new(rows);
    generate_cluster_cores_with(intervals, rows.len(), params, &mut counter)
        .expect("scan counter is infallible")
}

/// Algorithm 1 with the support-counting step abstracted behind a
/// [`LevelCounter`]. For equal counter answers the result is identical
/// to [`generate_cluster_cores`] — every downstream step (proving,
/// candidate generation, maximality) is a pure function of the counts —
/// which is the byte-identity lever the incremental service's cached
/// counter relies on.
pub fn generate_cluster_cores_with(
    intervals: &[crate::types::Interval],
    n: usize,
    params: &P3cParams,
    counter: &mut dyn LevelCounter,
) -> Result<CoreGenResult, String> {
    let threads = params.threads;
    let tester = SupportTester::from_params(params);
    let mut table = SupportTable::new();
    let mut stats = CoreGenStats::default();
    let mut all_proven: Vec<(Signature, f64)> = Vec::new();

    // Level 1: singleton signatures from the relevant intervals.
    let mut candidates: Vec<Signature> = intervals
        .iter()
        .map(|&iv| Signature::singleton(iv))
        .collect();
    candidates.sort();
    candidates.dedup();

    let mut level = 1usize;
    while !candidates.is_empty() && level <= params.max_levels {
        truncate_level(&mut candidates, params, &mut stats);
        stats.candidates_per_level.push(candidates.len());
        // Resolve supports of this level's candidates (one data pass in
        // the batch path).
        let counts = counter.count_level(&candidates)?;
        for (sig, &c) in candidates.iter().zip(&counts) {
            table.insert(sig.clone(), c as f64);
        }
        // Prove: the per-candidate Equation-1 verdicts are independent
        // reads of the (now frozen) support table, so they run blocked
        // on the worker pool; assembly stays in candidate order, making
        // the proven list identical for every thread count.
        let verdicts = prove_level_blocked(&tester, &candidates, &counts, n, &table, threads);
        let proven: Vec<(Signature, f64)> = candidates
            .iter()
            .zip(&counts)
            .zip(&verdicts)
            .filter(|(_, &ok)| ok)
            .map(|((sig, &c), _)| (sig.clone(), c as f64))
            .collect();
        stats.proven_per_level.push(proven.len());

        let prev_proven_set: HashSet<Signature> = proven.iter().map(|(s, _)| s.clone()).collect();
        let prev_level: Vec<Signature> = proven.iter().map(|(s, _)| s.clone()).collect();
        all_proven.extend(proven);

        candidates = generate_candidates(&prev_level, &prev_proven_set);
        level += 1;
    }

    stats.total_proven = all_proven.len();
    let cores = filter_maximal(&all_proven);
    stats.maximal = cores.len();
    Ok(CoreGenResult {
        cores,
        proven: all_proven,
        table,
        stats,
    })
}

/// Candidates per proving block: the Poisson test is cheap per
/// candidate, so blocks are sized to amortize pool dispatch.
const PROVE_BLOCK: usize = 64;

/// Runs the Equation-1 test over one level's candidates, blocked at
/// [`PROVE_BLOCK`] granularity on the engine worker pool. Each block
/// yields its verdicts in candidate order and blocks are concatenated
/// in block-index order, so the result is the exact boolean sequence of
/// the serial scan for every `threads` value (DESIGN.md §11).
fn prove_level_blocked(
    tester: &SupportTester,
    candidates: &[Signature],
    counts: &[u64],
    n: usize,
    table: &SupportTable,
    threads: usize,
) -> Vec<bool> {
    let num_blocks = candidates.len().div_ceil(PROVE_BLOCK);
    let blocks = p3c_mapreduce::parallel_for_blocks(threads, num_blocks, |b| {
        let start = b * PROVE_BLOCK;
        let end = (start + PROVE_BLOCK).min(candidates.len());
        (start..end)
            .map(|i| tester.passes_equation1(&candidates[i], counts[i] as f64, n, table))
            .collect::<Vec<bool>>()
    });
    blocks.concat()
}

/// Applies the `max_candidates_per_level` safety valve to one level.
pub(crate) fn truncate_level(
    candidates: &mut Vec<Signature>,
    params: &P3cParams,
    stats: &mut CoreGenStats,
) {
    let cap = params.max_candidates_per_level;
    if cap > 0 && candidates.len() > cap {
        candidates.truncate(cap);
        stats.truncated_levels += 1;
    }
}

/// Keeps signatures not strictly contained in another proven signature
/// (line 11 of Algorithm 1). Expected supports are left at zero; callers
/// fill them via [`attach_expected_supports`] once the database size is
/// in scope.
///
/// Provenness is downward closed by construction (a signature is proven
/// only when all its subsignatures are), so a proven signature is
/// non-maximal **iff** it is an immediate (p−1)-subsignature of some
/// proven p-signature. Marking those costs `Σ proven_p · p` set
/// operations instead of the quadratic pairwise containment scan.
pub fn filter_maximal(proven: &[(Signature, f64)]) -> Vec<ClusterCore> {
    let mut non_maximal: HashSet<Signature> = HashSet::new();
    for (sig, _) in proven {
        for sub in sig.subsignatures() {
            non_maximal.insert(sub);
        }
    }
    proven
        .iter()
        .filter(|(sig, _)| !non_maximal.contains(sig))
        .map(|(sig, supp)| ClusterCore {
            signature: sig.clone(),
            support: *supp,
            expected: 0.0,
        })
        .collect()
}

/// Fills Equation-7 expected supports on a core list for a database of
/// size `n`.
pub fn attach_expected_supports(cores: &mut [ClusterCore], n: usize) {
    for core in cores {
        core.expected = core.signature.expected_support(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interval;

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    /// A dataset with one strong 2D cluster on attrs (0,1) and uniform attr 2.
    fn clustered_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        // 200 cluster points in [0.1,0.2]×[0.55,0.65] (bins 1 and 5–6).
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0;
            rows.push(vec![0.11 + 0.08 * t, 0.56 + 0.08 * t, t]);
        }
        // 200 uniform noise points.
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0;
            rows.push(vec![t, (t * 7.0) % 1.0, (t * 13.0) % 1.0]);
        }
        rows
    }

    #[test]
    fn tester_combined_is_stricter_than_poisson() {
        let poisson_only = SupportTester::from_params(&P3cParams {
            use_effect_size: false,
            alpha_poisson: 0.01,
            ..P3cParams::default()
        });
        let combined = SupportTester::from_params(&P3cParams {
            use_effect_size: true,
            theta_cc: 0.35,
            alpha_poisson: 0.01,
            ..P3cParams::default()
        });
        // Large-n small-effect case: significant but weak.
        let expected = 100_000.0;
        let observed = 1.01 * expected;
        assert!(poisson_only.accepts(observed, expected));
        assert!(!combined.accepts(observed, expected));
        // Strong effect accepted by both.
        assert!(combined.accepts(2.0 * expected, expected));
    }

    #[test]
    fn equation1_requires_all_leave_one_outs() {
        let params = P3cParams {
            alpha_poisson: 0.01,
            use_effect_size: false,
            ..P3cParams::default()
        };
        let tester = SupportTester::from_params(&params);
        let mut table = SupportTable::new();
        let a = Signature::singleton(iv(0, 0, 0));
        let b = Signature::singleton(iv(1, 0, 0));
        let ab = a.join(&b).unwrap();
        // Supp(a)=500 of n=1000, Supp(b)=500; Supp(ab)=400 ≫ exp from
        // either side (500·0.1 = 50) → passes.
        table.insert(a.clone(), 500.0);
        table.insert(b.clone(), 500.0);
        assert!(tester.passes_equation1(&ab, 400.0, 1000, &table));
        // Supp(ab)=50 == expectation → fails.
        assert!(!tester.passes_equation1(&ab, 50.0, 1000, &table));
    }

    #[test]
    fn equation1_fails_on_missing_subset() {
        let params = P3cParams::default();
        let tester = SupportTester::from_params(&params);
        let table = SupportTable::new();
        let ab = Signature::new(vec![iv(0, 0, 0), iv(1, 0, 0)]);
        assert!(!tester.passes_equation1(&ab, 1000.0, 1000, &table));
    }

    #[test]
    fn generation_finds_planted_2d_core() {
        let data = clustered_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        // Relevant intervals: attr0 bins 1–2, attr1 bins 5–6 (the cluster),
        // plus a decoy on attr2 covering everything (width 1 → never
        // significant).
        let intervals = vec![iv(0, 1, 2), iv(1, 5, 6), iv(2, 0, 9)];
        let params = P3cParams {
            alpha_poisson: 1e-6,
            use_effect_size: true,
            theta_cc: 0.35,
            ..P3cParams::default()
        };
        let result = generate_cluster_cores(&intervals, &rows, &params);
        // The maximal core must be the 2-signature on attrs {0,1}.
        assert!(
            result
                .cores
                .iter()
                .any(|c| c.signature.attributes().into_iter().collect::<Vec<_>>() == vec![0, 1]),
            "cores: {:?}",
            result
                .cores
                .iter()
                .map(|c| c.signature.to_string())
                .collect::<Vec<_>>()
        );
        // The full-width decoy interval must not appear in any core.
        assert!(result
            .cores
            .iter()
            .all(|c| !c.signature.attributes().contains(&2)));
    }

    #[test]
    fn maximal_filter_drops_subsignatures() {
        let a = Signature::singleton(iv(0, 0, 1));
        let ab = Signature::new(vec![iv(0, 0, 1), iv(1, 2, 3)]);
        let c = Signature::singleton(iv(2, 4, 5));
        let proven = vec![(a.clone(), 100.0), (ab.clone(), 90.0), (c.clone(), 50.0)];
        let cores = filter_maximal(&proven);
        let sigs: Vec<&Signature> = cores.iter().map(|c| &c.signature).collect();
        assert_eq!(sigs.len(), 2);
        assert!(sigs.contains(&&ab));
        assert!(sigs.contains(&&c));
    }

    #[test]
    fn candidate_generation_join_and_prune() {
        let a = Signature::singleton(iv(0, 0, 1));
        let b = Signature::singleton(iv(1, 2, 3));
        let c = Signature::singleton(iv(2, 4, 5));
        let level: Vec<Signature> = vec![a.clone(), b.clone(), c.clone()];
        let proven: HashSet<Signature> = level.iter().cloned().collect();
        let cands = generate_candidates(&level, &proven);
        assert_eq!(cands.len(), 3); // ab, ac, bc
                                    // Drop b from the level (an unproven signature never reaches the
                                    // join): only the ac candidate remains.
        let level2: Vec<Signature> = vec![a.clone(), c.clone()];
        let pruned: HashSet<Signature> = level2.iter().cloned().collect();
        let cands2 = generate_candidates(&level2, &pruned);
        assert_eq!(cands2.len(), 1);
        assert_eq!(cands2[0], a.join(&c).unwrap());
    }

    #[test]
    fn prune_rejects_candidates_with_missing_middle_subsets() {
        // Level-2 signatures ab, ac, bc minus bc: the abc candidate needs
        // bc proven; with bc absent from the prune set it must not emerge.
        let a = iv(0, 0, 1);
        let b = iv(1, 2, 3);
        let c = iv(2, 4, 5);
        let ab = Signature::new(vec![a, b]);
        let ac = Signature::new(vec![a, c]);
        let bc = Signature::new(vec![b, c]);
        let with_all: HashSet<Signature> =
            [ab.clone(), ac.clone(), bc.clone()].into_iter().collect();
        let cands = generate_candidates(&[ab.clone(), ac.clone(), bc.clone()], &with_all);
        assert_eq!(cands.len(), 1); // abc
        let without_bc: HashSet<Signature> = [ab.clone(), ac.clone()].into_iter().collect();
        let cands2 = generate_candidates(&[ab, ac], &without_bc);
        assert!(
            cands2.is_empty(),
            "abc must be pruned without bc: {cands2:?}"
        );
    }

    #[test]
    fn stats_are_recorded() {
        let data = clustered_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let intervals = vec![iv(0, 1, 2), iv(1, 5, 6)];
        let result = generate_cluster_cores(&intervals, &rows, &P3cParams::default());
        assert!(!result.stats.candidates_per_level.is_empty());
        assert_eq!(result.stats.candidates_per_level[0], 2);
        assert_eq!(result.stats.total_proven, result.proven.len());
        assert_eq!(result.stats.maximal, result.cores.len());
    }

    #[test]
    fn expected_supports_attach() {
        let mut cores = vec![ClusterCore {
            signature: Signature::new(vec![iv(0, 0, 1), iv(1, 0, 4)]),
            support: 100.0,
            expected: 0.0,
        }];
        attach_expected_supports(&mut cores, 1000);
        // widths 0.2 · 0.5 → expected 100.
        assert!((cores[0].expected - 100.0).abs() < 1e-9);
        assert!((cores[0].interest_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_intervals_give_no_cores() {
        let rows: Vec<&[f64]> = vec![];
        let result = generate_cluster_cores(&[], &rows, &P3cParams::default());
        assert!(result.cores.is_empty());
        assert!(result.proven.is_empty());
    }
}
