//! Serial histogram building over all attributes (paper Section 5.1).
//!
//! For a dataset of `n` points and `d` attributes, one `m`-bin histogram
//! per attribute is built, with `m` decided by the configured bin rule.
//! The MapReduce variant lives in [`crate::mr::histogram`] and must
//! produce bit-identical counts (tested there).

use p3c_dataset::Dataset;
use p3c_stats::{BinRule, Histogram};

/// All per-attribute histograms of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeHistograms {
    /// One histogram per attribute. Bin counts are usually uniform, but
    /// the exact-IQR Freedman–Diaconis extension produces per-attribute
    /// counts — read them via `histograms[j].num_bins()`.
    pub histograms: Vec<Histogram>,
    /// The largest bin count across attributes (uniform rules: the count).
    pub bins: usize,
}

impl AttributeHistograms {
    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.histograms.len()
    }
}

/// Builds per-attribute histograms with the bin count given by `rule`.
pub fn build_histograms(data: &Dataset, rule: BinRule) -> AttributeHistograms {
    let bins = rule.num_bins(data.len()).max(1);
    build_histograms_with_bins(data, bins)
}

/// Builds per-attribute histograms with an explicit bin count.
pub fn build_histograms_with_bins(data: &Dataset, bins: usize) -> AttributeHistograms {
    build_histograms_columnar(
        data.len(),
        data.dim(),
        data.as_slice(),
        &vec![bins; data.dim()],
    )
}

/// Flat-buffer histogram kernel over a row-major buffer: each block of
/// rows is binned in one streaming pass ([`p3c_stats::bin_rows`]) with
/// the bin-index conversion state hoisted per attribute, reading every
/// cache line exactly once (a per-attribute strided re-scan was tried
/// and re-reads each line `d` times, losing to per-row dispatch).
/// Counts are exact `+1.0` increments, so the result is bit-identical
/// to the per-row path regardless of scan order.
pub fn build_histograms_columnar(
    n: usize,
    d: usize,
    data: &[f64],
    bins_per_attr: &[usize],
) -> AttributeHistograms {
    build_histograms_columnar_threads(n, d, data, bins_per_attr, 1)
}

/// [`build_histograms_columnar`] with the block scan parallelized over
/// `threads` workers on the engine worker pool
/// ([`p3c_mapreduce::parallel_for_blocks`]). Each worker bins its
/// claimed blocks into private per-attribute histograms; the per-block
/// partials merge in fixed block-index order. Counts are exact `+1.0`
/// sums (far below 2^53), so every merge order — and every thread
/// count, including the inline serial path — yields bit-identical
/// histograms (DESIGN.md §11).
pub fn build_histograms_columnar_threads(
    n: usize,
    d: usize,
    data: &[f64],
    bins_per_attr: &[usize],
    threads: usize,
) -> AttributeHistograms {
    assert_eq!(data.len(), n * d, "row-major buffer has wrong length");
    assert_eq!(bins_per_attr.len(), d, "one bin count per attribute");
    let fresh = || -> Vec<Histogram> {
        bins_per_attr
            .iter()
            .map(|&b| Histogram::new(b.max(1)))
            .collect()
    };
    // ~256 KiB of f64 per block, rounded to whole rows.
    let stride = d.max(1);
    let block = (32_768 / stride).max(1) * stride;
    let num_blocks = data.len().div_ceil(block);
    let partials = p3c_mapreduce::parallel_for_blocks(threads, num_blocks, |b| {
        let chunk = &data[b * block..(b * block + block).min(data.len())];
        let mut hists = fresh();
        p3c_stats::bin_rows(&mut hists, stride, chunk);
        hists
    });
    let mut histograms = fresh();
    for part in &partials {
        for (hist, partial) in histograms.iter_mut().zip(part) {
            hist.merge(partial);
        }
    }
    let bins = bins_per_attr.iter().copied().max().unwrap_or(1).max(1);
    AttributeHistograms { histograms, bins }
}

/// Builds per-attribute histograms over row slices (no dataset needed).
pub fn build_histograms_rows(rows: &[&[f64]], bins: usize) -> AttributeHistograms {
    let d = rows.first().map_or(0, |r| r.len());
    build_histograms_per_attr(rows, &vec![bins; d])
}

/// Builds histograms with a per-attribute bin count (the exact-IQR
/// Freedman–Diaconis extension; see `config::BinRuleChoice`).
pub fn build_histograms_per_attr(rows: &[&[f64]], bins_per_attr: &[usize]) -> AttributeHistograms {
    let mut histograms: Vec<Histogram> = bins_per_attr
        .iter()
        .map(|&b| Histogram::new(b.max(1)))
        .collect();
    for row in rows {
        for (j, &v) in row.iter().enumerate() {
            histograms[j].add(v);
        }
    }
    let bins = bins_per_attr.iter().copied().max().unwrap_or(1).max(1);
    AttributeHistograms { histograms, bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::Dataset;

    fn grid_dataset(n: usize) -> Dataset {
        // Attribute 0: uniform grid; attribute 1: everything in one spot.
        let rows = (0..n)
            .map(|i| vec![(i as f64 + 0.5) / n as f64, 0.42])
            .collect();
        Dataset::from_rows(rows)
    }

    #[test]
    fn counts_sum_to_n_per_attribute() {
        let ds = grid_dataset(100);
        let h = build_histograms(&ds, BinRule::FreedmanDiaconis);
        for hist in &h.histograms {
            assert_eq!(hist.total(), 100.0);
        }
        assert_eq!(h.dim(), 2);
    }

    #[test]
    fn uniform_attribute_is_flat() {
        let ds = grid_dataset(1000);
        let h = build_histograms_with_bins(&ds, 10);
        for i in 0..10 {
            assert_eq!(h.histograms[0].count(i), 100.0);
        }
    }

    #[test]
    fn concentrated_attribute_spikes() {
        let ds = grid_dataset(1000);
        let h = build_histograms_with_bins(&ds, 10);
        // 0.42 → bin ⌈4.2⌉−1 = 4.
        assert_eq!(h.histograms[1].count(4), 1000.0);
    }

    #[test]
    fn bin_rule_decides_bin_count() {
        let ds = grid_dataset(1000);
        let fd = build_histograms(&ds, BinRule::FreedmanDiaconis);
        let st = build_histograms(&ds, BinRule::Sturges);
        assert_eq!(fd.bins, 10); // 1000^(1/3)
        assert_eq!(st.bins, 11); // ⌈1+log2(1000)⌉
    }

    #[test]
    fn per_attribute_bin_counts() {
        let ds = grid_dataset(100);
        let rows: Vec<&[f64]> = ds.rows().collect();
        let h = build_histograms_per_attr(&rows, &[4, 16]);
        assert_eq!(h.histograms[0].num_bins(), 4);
        assert_eq!(h.histograms[1].num_bins(), 16);
        assert_eq!(h.bins, 16);
        assert_eq!(h.histograms[0].total(), 100.0);
        assert_eq!(h.histograms[1].total(), 100.0);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_rows(vec![]);
        let h = build_histograms(&ds, BinRule::Sturges);
        assert_eq!(h.dim(), 0);
        assert_eq!(h.bins, 1);
    }

    #[test]
    fn columnar_scan_matches_per_row_binning() {
        // Awkward values near bin edges; counts must agree exactly.
        let rows: Vec<Vec<f64>> = (0..257)
            .map(|i| {
                let t = i as f64 / 257.0;
                vec![t, (t * 7.3).fract(), 1.0 - t, 0.5]
            })
            .collect();
        let ds = Dataset::from_rows(rows.clone());
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        for bins in [2usize, 7, 16] {
            let per_attr = vec![bins; ds.dim()];
            let columnar = build_histograms_columnar(ds.len(), ds.dim(), ds.as_slice(), &per_attr);
            let per_row = build_histograms_per_attr(&refs, &per_attr);
            assert_eq!(columnar, per_row, "bins = {bins}");
        }
    }
}
