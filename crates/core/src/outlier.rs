//! Outlier detection after EM (paper Sections 4.2.2 and 5.5).
//!
//! A member `x` of cluster `C` is an outlier iff its squared Mahalanobis
//! distance to `C` exceeds the χ² critical value with `|A_rel|` degrees of
//! freedom at `α = 0.001`. Two estimators for `(μ_C, Σ_C)`:
//!
//! * **naive** — straight from the EM Gaussians (suffers from masking:
//!   outliers inflate the covariance that is supposed to expose them);
//! * **MVB** — minimum volume ball: center = dimension-wise median of the
//!   cluster, radius = median distance to the center; mean/covariance are
//!   then computed from the points *inside the ball* only (the paper's
//!   tractable approximation of the minimum-volume-ellipsoid estimator).

use crate::em::{lanes_enabled, DensityEvaluator, EstepScratch};
use p3c_linalg::{Cholesky, CovarianceAccumulator, LaneScratch};
use p3c_stats::descriptive::{dimensionwise_median, median_in_place};
use p3c_stats::ChiSquared;

/// Per-point result: the EM cluster (index) or `-1` for outliers.
pub type Assignment = Vec<i64>;

/// Hard-assigns every row to its maximum-density component.
pub fn assign_clusters(eval: &DensityEvaluator, rows: &[&[f64]]) -> Vec<usize> {
    if lanes_enabled() && eval.arel_len() > 0 {
        let mut proj = Vec::with_capacity(rows.len() * eval.arel_len());
        for row in rows {
            eval.project_append(row, &mut proj);
        }
        let mut scratch = EstepScratch::new();
        let mut out = Vec::new();
        eval.assign_block_lanes(&proj, &mut scratch, &mut out);
        return out;
    }
    let mut x = Vec::new();
    let mut y = Vec::new();
    rows.iter()
        .map(|row| eval.assign_scratch(row, &mut x, &mut y))
        .collect()
}

/// Naive outlier detection: Mahalanobis against the EM parameters.
pub fn detect_outliers_naive(
    eval: &DensityEvaluator,
    rows: &[&[f64]],
    assignment: &[usize],
    alpha: f64,
    arel_len: usize,
) -> Assignment {
    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    if lanes_enabled() {
        // Lane path: group each cluster's projected members (in row
        // order) into one contiguous block, score the block through the
        // 8-wide kernel, and scatter the distances back to row order.
        // Per point the kernel runs the exact scalar operation
        // sequence, so the verdicts are bit-identical to the per-point
        // loop below.
        let mut dists = vec![0.0; rows.len()];
        let mut gather = ClusterGather::default();
        for c in 0..eval.num_components() {
            gather.collect(rows, assignment, c, |row, buf| {
                eval.project_append(row, buf);
            });
            eval.mahalanobis_sq_component_block(
                c,
                &gather.buf,
                &mut gather.scratch,
                &mut gather.out,
            );
            gather.scatter(&mut dists);
        }
        return rows
            .iter()
            .zip(assignment)
            .zip(&dists)
            .map(|((_, &k), &d2)| if d2 > crit { -1 } else { k as i64 })
            .collect();
    }
    let mut x = Vec::new();
    let mut y = Vec::new();
    rows.iter()
        .zip(assignment)
        .map(|(row, &k)| {
            eval.project_into(row, &mut x);
            if eval.mahalanobis_sq_scratch(k, &x, &mut y) > crit {
                -1
            } else {
                k as i64
            }
        })
        .collect()
}

/// Gather/scatter state for the grouped lane-batched cluster scans: one
/// cluster's projected members packed contiguously (`buf`), their row
/// indices (`idx`), the kernel scratch, and the distances (`out`).
#[derive(Default)]
struct ClusterGather {
    buf: Vec<f64>,
    idx: Vec<usize>,
    scratch: LaneScratch,
    out: Vec<f64>,
}

impl ClusterGather {
    /// Packs cluster `c`'s rows (in row order) via `project`.
    fn collect(
        &mut self,
        rows: &[&[f64]],
        assignment: &[usize],
        c: usize,
        mut project: impl FnMut(&[f64], &mut Vec<f64>),
    ) {
        self.buf.clear();
        self.idx.clear();
        for (i, (row, &a)) in rows.iter().zip(assignment).enumerate() {
            if a == c {
                project(row, &mut self.buf);
                self.idx.push(i);
            }
        }
    }

    /// Writes the block kernel's distances back to row positions.
    fn scatter(&self, dists: &mut [f64]) {
        for (&i, &d2) in self.idx.iter().zip(&self.out) {
            dists[i] = d2;
        }
    }
}

/// The MVB (minimum volume ball) statistics of one cluster, in `A_rel`
/// coordinates.
#[derive(Debug, Clone)]
pub struct MvbStats {
    /// Ball center in `A_rel` coordinates.
    pub center: Vec<f64>,
    /// Ball radius.
    pub radius: f64,
}

/// Computes the MVB of a set of projected points: dimension-wise median
/// center and median distance radius. `None` for empty input.
pub fn mvb_of(points: &[Vec<f64>]) -> Option<MvbStats> {
    if points.is_empty() {
        return None;
    }
    let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
    let center = dimensionwise_median(&refs)?;
    let mut dists: Vec<f64> = refs.iter().map(|p| p3c_linalg::dist(p, &center)).collect();
    let radius = median_in_place(&mut dists);
    Some(MvbStats { center, radius })
}

/// Robust per-cluster mean/covariance from the points inside each
/// cluster's MVB; clusters are given by `assignment` (indices into
/// `0..k`). Returns one `(mean, Cholesky)` per cluster, or `None` entries
/// for degenerate clusters (fallback: treat all its points as inliers).
pub fn robust_cluster_estimates(
    eval: &DensityEvaluator,
    rows: &[&[f64]],
    assignment: &[usize],
    k: usize,
) -> Vec<Option<(Vec<f64>, Cholesky)>> {
    // Collect projected members per cluster.
    let mut members: Vec<Vec<Vec<f64>>> = vec![Vec::new(); k];
    for (row, &c) in rows.iter().zip(assignment) {
        members[c].push(eval.project(row));
    }
    members
        .iter()
        .map(|pts| {
            let mvb = mvb_of(pts)?;
            let d = mvb.center.len();
            let mut acc = CovarianceAccumulator::new(d);
            for p in pts {
                if p3c_linalg::dist(p, &mvb.center) <= mvb.radius + 1e-12 {
                    acc.push(p, 1.0);
                }
            }
            let mean = acc.mean()?;
            let mut cov = acc.covariance()?;
            cov.add_ridge(1e-9);
            let chol = Cholesky::new_regularized(&cov)?;
            Some((mean, chol))
        })
        .collect()
}

/// One MCD concentration step (FastMCD's C-step): fit mean/covariance on
/// the current subset, then keep the `h` points of the cluster with the
/// smallest Mahalanobis distances under that fit. Iterating can only
/// shrink the covariance determinant, so a few steps concentrate the
/// estimate onto the densest half of the cluster.
///
/// Returns robust `(mean, Cholesky)` estimates, or `None` for degenerate
/// inputs (fewer than `dim + 2` points).
pub fn mcd_estimate(
    points: &[Vec<f64>],
    h_fraction: f64,
    max_steps: usize,
) -> Option<(Vec<f64>, Cholesky)> {
    let n = points.len();
    let d = points.first()?.len();
    if n < d + 2 {
        return None;
    }
    let h = ((n as f64 * h_fraction).ceil() as usize).clamp(d + 1, n);
    // Start from the full set.
    let mut subset: Vec<usize> = (0..n).collect();
    let mut current: Option<(Vec<f64>, Cholesky)> = None;
    for _ in 0..max_steps.max(1) {
        let mut acc = CovarianceAccumulator::new(d);
        for &i in &subset {
            acc.push(&points[i], 1.0);
        }
        let mean = acc.mean()?;
        let mut cov = acc.covariance()?;
        cov.add_ridge(1e-9);
        let chol = Cholesky::new_regularized(&cov)?;
        // Order all cluster points by Mahalanobis distance; keep h.
        let mut dists: Vec<(f64, usize)> = if lanes_enabled() {
            // Lane path: score the whole cluster through the 8-wide
            // block kernel (bit-identical per point to the scalar
            // scratch loop below).
            let mut flat = Vec::with_capacity(n * d);
            for p in points {
                flat.extend_from_slice(p);
            }
            let mut lane_scratch = LaneScratch::new();
            let mut out = Vec::new();
            chol.mahalanobis_sq_block(&flat, &mean, &mut lane_scratch, &mut out);
            out.iter().copied().zip(0..n).collect()
        } else {
            let mut scratch = Vec::with_capacity(d);
            points
                .iter()
                .enumerate()
                .map(|(i, p)| (chol.mahalanobis_sq_scratch(p, &mean, &mut scratch), i))
                .collect()
        };
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let next: Vec<usize> = dists.iter().take(h).map(|&(_, i)| i).collect();
        let converged = {
            let mut a = subset.clone();
            let mut b = next.clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        };
        current = Some((mean, chol));
        subset = next;
        if converged {
            break;
        }
    }
    // Final fit on the concentrated subset.
    let mut acc = CovarianceAccumulator::new(d);
    for &i in &subset {
        acc.push(&points[i], 1.0);
    }
    let mean = acc.mean()?;
    let mut cov = acc.covariance()?;
    cov.add_ridge(1e-9);
    match Cholesky::new_regularized(&cov) {
        Some(chol) => Some((mean, chol)),
        None => current,
    }
}

/// Scores every row against its cluster's robust `(mean, Cholesky)`
/// estimate and flags outliers above `crit`; clusters with `None`
/// estimates (degenerate) keep all their points. Dispatches between
/// the grouped lane-batched block scan and the per-point scalar loop —
/// bit-identical verdicts either way (each point's distance runs the
/// same float operation sequence).
fn detect_with_estimates(
    eval: &DensityEvaluator,
    rows: &[&[f64]],
    assignment: &[usize],
    estimates: &[Option<(Vec<f64>, Cholesky)>],
    crit: f64,
) -> Assignment {
    if lanes_enabled() {
        // NEG_INFINITY never exceeds `crit`, so rows of degenerate
        // clusters (no estimate, hence never scattered) stay members.
        let mut dists = vec![f64::NEG_INFINITY; rows.len()];
        let mut gather = ClusterGather::default();
        for (c, est) in estimates.iter().enumerate() {
            let Some((mean, chol)) = est else { continue };
            gather.collect(rows, assignment, c, |row, buf| {
                eval.project_append(row, buf);
            });
            chol.mahalanobis_sq_block(&gather.buf, mean, &mut gather.scratch, &mut gather.out);
            gather.scatter(&mut dists);
        }
        return assignment
            .iter()
            .zip(&dists)
            .map(|(&c, &d2)| if d2 > crit { -1 } else { c as i64 })
            .collect();
    }
    let mut x = Vec::new();
    let mut y = Vec::new();
    rows.iter()
        .zip(assignment)
        .map(|(row, &c)| {
            eval.project_into(row, &mut x);
            match &estimates[c] {
                Some((mean, chol)) => {
                    if chol.mahalanobis_sq_scratch(&x, mean, &mut y) > crit {
                        -1
                    } else {
                        c as i64
                    }
                }
                None => c as i64, // degenerate cluster: keep its points
            }
        })
        .collect()
}

/// MCD-based outlier detection (extension; see [`mcd_estimate`]).
pub fn detect_outliers_mcd(
    eval: &DensityEvaluator,
    rows: &[&[f64]],
    assignment: &[usize],
    alpha: f64,
    arel_len: usize,
) -> Assignment {
    let k = eval.num_components();
    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    let mut members: Vec<Vec<Vec<f64>>> = vec![Vec::new(); k];
    for (row, &c) in rows.iter().zip(assignment) {
        members[c].push(eval.project(row));
    }
    let estimates: Vec<Option<(Vec<f64>, Cholesky)>> = members
        .iter()
        .map(|pts| mcd_estimate(pts, 0.5, 4))
        .collect();
    detect_with_estimates(eval, rows, assignment, &estimates, crit)
}

/// MVB-based outlier detection.
pub fn detect_outliers_mvb(
    eval: &DensityEvaluator,
    rows: &[&[f64]],
    assignment: &[usize],
    alpha: f64,
    arel_len: usize,
) -> Assignment {
    let k = eval.num_components();
    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    let estimates = robust_cluster_estimates(eval, rows, assignment, k);
    detect_with_estimates(eval, rows, assignment, &estimates, crit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{Component, MixtureModel};
    use p3c_linalg::Matrix;

    /// One tight Gaussian-ish cluster at (0.5, 0.5) plus planted outliers.
    fn rows_with_outliers() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..200 {
            let t = i as f64 / 200.0;
            rows.push(vec![0.45 + 0.1 * t, 0.55 - 0.1 * t]);
        }
        // Planted far-away outliers.
        rows.push(vec![0.0, 1.0]);
        rows.push(vec![1.0, 0.0]);
        rows
    }

    fn single_component_model() -> MixtureModel {
        let mut cov = Matrix::identity(2);
        cov[(0, 0)] = 0.001;
        cov[(1, 1)] = 0.001;
        MixtureModel {
            arel: vec![0, 1],
            components: vec![Component {
                mean: vec![0.5, 0.5],
                cov,
                weight: 1.0,
            }],
        }
    }

    #[test]
    fn naive_detects_planted_outliers() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = single_component_model().evaluator();
        let assignment = assign_clusters(&eval, &rows);
        let result = detect_outliers_naive(&eval, &rows, &assignment, 0.001, 2);
        assert_eq!(result[200], -1);
        assert_eq!(result[201], -1);
        // The bulk must remain members.
        let inliers = result.iter().filter(|&&a| a == 0).count();
        assert!(inliers >= 195, "only {inliers} inliers");
    }

    #[test]
    fn mvb_detects_planted_outliers() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = single_component_model().evaluator();
        let assignment = assign_clusters(&eval, &rows);
        let result = detect_outliers_mvb(&eval, &rows, &assignment, 0.001, 2);
        assert_eq!(result[200], -1);
        assert_eq!(result[201], -1);
        let inliers = result.iter().filter(|&&a| a == 0).count();
        assert!(inliers >= 180, "only {inliers} inliers");
    }

    #[test]
    fn mvb_resists_masking_better_than_naive() {
        // Heavy contamination: 30% of points far away, inflating the naive
        // covariance so much that the contaminated region gets masked.
        let mut data = Vec::new();
        for i in 0..140 {
            let t = i as f64 / 140.0;
            data.push(vec![0.48 + 0.04 * t, 0.52 - 0.04 * t]);
        }
        for i in 0..60 {
            let t = i as f64 / 60.0;
            data.push(vec![0.9 + 0.1 * t * 0.5, 0.05 + 0.1 * t * 0.5]);
        }
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        // A naive full-sample estimate (what EM would deliver here).
        let mut acc = CovarianceAccumulator::new(2);
        for r in &rows {
            acc.push(r, 1.0);
        }
        let model = MixtureModel {
            arel: vec![0, 1],
            components: vec![Component {
                mean: acc.mean().unwrap(),
                cov: acc.covariance().unwrap(),
                weight: 1.0,
            }],
        };
        let eval = model.evaluator();
        let assignment = vec![0usize; rows.len()];
        let naive = detect_outliers_naive(&eval, &rows, &assignment, 0.001, 2);
        let mvb = detect_outliers_mvb(&eval, &rows, &assignment, 0.001, 2);
        let naive_caught = naive[140..].iter().filter(|&&a| a == -1).count();
        let mvb_caught = mvb[140..].iter().filter(|&&a| a == -1).count();
        assert!(
            mvb_caught > naive_caught,
            "MVB caught {mvb_caught}, naive caught {naive_caught}"
        );
        assert!(mvb_caught >= 55, "MVB caught only {mvb_caught}/60");
    }

    #[test]
    fn mcd_detects_planted_outliers() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = single_component_model().evaluator();
        let assignment = assign_clusters(&eval, &rows);
        let result = detect_outliers_mcd(&eval, &rows, &assignment, 0.001, 2);
        assert_eq!(result[200], -1);
        assert_eq!(result[201], -1);
        let inliers = result.iter().filter(|&&a| a == 0).count();
        assert!(inliers >= 180, "only {inliers} inliers");
    }

    #[test]
    fn mcd_resists_masking_like_mvb() {
        // Same heavy-contamination setup as the MVB masking test.
        let mut data = Vec::new();
        for i in 0..140 {
            let t = i as f64 / 140.0;
            data.push(vec![0.48 + 0.04 * t, 0.52 - 0.04 * t]);
        }
        for i in 0..60 {
            let t = i as f64 / 60.0;
            data.push(vec![0.9 + 0.05 * t, 0.05 + 0.05 * t]);
        }
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let mut acc = CovarianceAccumulator::new(2);
        for r in &rows {
            acc.push(r, 1.0);
        }
        let model = MixtureModel {
            arel: vec![0, 1],
            components: vec![Component {
                mean: acc.mean().unwrap(),
                cov: acc.covariance().unwrap(),
                weight: 1.0,
            }],
        };
        let eval = model.evaluator();
        let assignment = vec![0usize; rows.len()];
        let naive = detect_outliers_naive(&eval, &rows, &assignment, 0.001, 2);
        let mcd = detect_outliers_mcd(&eval, &rows, &assignment, 0.001, 2);
        let naive_caught = naive[140..].iter().filter(|&&a| a == -1).count();
        let mcd_caught = mcd[140..].iter().filter(|&&a| a == -1).count();
        assert!(
            mcd_caught > naive_caught,
            "MCD {mcd_caught} vs naive {naive_caught}"
        );
        assert!(mcd_caught >= 55, "MCD caught only {mcd_caught}/60");
    }

    #[test]
    fn mcd_estimate_concentrates_on_bulk() {
        // 80% tight bulk at (0,0), 20% contamination at (10,10): the MCD
        // mean must sit on the bulk, unlike the plain mean.
        let mut pts: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 9) as f64 * 0.01, (i % 7) as f64 * 0.01])
            .collect();
        for i in 0..20 {
            pts.push(vec![10.0 + (i % 3) as f64 * 0.01, 10.0]);
        }
        let (mean, _) = mcd_estimate(&pts, 0.5, 4).unwrap();
        assert!(mean[0] < 0.5, "MCD mean pulled to contamination: {mean:?}");
        assert!(mean[1] < 0.5);
    }

    #[test]
    fn mcd_estimate_degenerate_inputs() {
        assert!(mcd_estimate(&[], 0.5, 3).is_none());
        let two = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        assert!(mcd_estimate(&two, 0.5, 3).is_none(), "n < d + 2 must fail");
    }

    #[test]
    fn mvb_stats_are_medians() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![100.0, 0.0],
        ];
        let mvb = mvb_of(&pts).unwrap();
        assert_eq!(mvb.center, vec![2.0, 0.0]);
        // Distances to (2,0): [2,1,0,1,98] → median 1.
        assert_eq!(mvb.radius, 1.0);
    }

    #[test]
    fn mvb_of_empty_is_none() {
        assert!(mvb_of(&[]).is_none());
    }

    #[test]
    fn lane_and_scalar_outlier_scans_agree() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = single_component_model().evaluator();
        let assignment = assign_clusters(&eval, &rows);
        type Detect = fn(&DensityEvaluator, &[&[f64]], &[usize], f64, usize) -> Assignment;
        let detectors: [Detect; 3] = [
            detect_outliers_naive,
            detect_outliers_mvb,
            detect_outliers_mcd,
        ];
        for detect in detectors {
            crate::em::set_lane_mode(Some(false));
            let scalar = detect(&eval, &rows, &assignment, 0.001, 2);
            crate::em::set_lane_mode(Some(true));
            let lanes = detect(&eval, &rows, &assignment, 0.001, 2);
            crate::em::set_lane_mode(None);
            assert_eq!(scalar, lanes);
        }
    }

    #[test]
    fn all_points_kept_at_loose_alpha() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = single_component_model().evaluator();
        let assignment = assign_clusters(&eval, &rows);
        // α extremely small → critical value huge → nobody is an outlier.
        let result = detect_outliers_naive(&eval, &rows, &assignment, 1e-300_f64.max(1e-12), 2);
        let out = result.iter().filter(|&&a| a == -1).count();
        assert!(out <= 2);
    }
}
