//! The serial P3C+ pipelines: full (EM + outlier detection) and Light.
//!
//! These drive the whole algorithm in-process; the MapReduce versions in
//! [`crate::mr`] reuse the same building blocks, replacing each data scan
//! with a job. The serial pipelines also power the per-partition work of
//! the BoW baseline.

use crate::config::{BinRuleChoice, OutlierMethod, P3cParams};
use crate::cores::{
    attach_expected_supports, generate_cluster_cores_with, ClusterCore, CoreGenStats, LevelCounter,
    ScanCounter,
};
use crate::em::{em_fit_threads, initialize_from_cores};
use crate::histogram::build_histograms_columnar_threads;
use crate::inspect::{inspect_attributes, tighten_intervals};
use crate::outlier::{
    assign_clusters, detect_outliers_mcd, detect_outliers_mvb, detect_outliers_naive,
};
use crate::redundancy::filter_redundant_proven;
use crate::relevance::relevant_intervals;
use p3c_dataset::{Clustering, Dataset, ProjectedCluster};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Histogram bins used.
    pub bins: usize,
    /// Relevant intervals found.
    pub relevant_intervals: usize,
    /// Core generation counters.
    pub core_gen: CoreGenStats,
    /// Cores removed by the redundancy filter.
    pub redundancy_removed: usize,
    /// Cluster cores after all filtering.
    pub cores: usize,
    /// EM iterations executed (0 for Light).
    pub em_iterations: usize,
    /// Points flagged as outliers.
    pub outliers: usize,
}

/// Result of a P3C-family run.
#[derive(Debug, Clone)]
pub struct P3cResult {
    /// The projected clusters and outliers.
    pub clustering: Clustering,
    /// The cluster cores behind the clusters (parallel to
    /// `clustering.clusters` — core i produced cluster i).
    pub cores: Vec<ClusterCore>,
    /// Per-stage pipeline statistics.
    pub stats: PipelineStats,
}

/// The P3C+ algorithm (Section 4) with the full EM + outlier-detection
/// refinement. Configure via [`P3cParams`]; `P3cParams::original_p3c()`
/// turns this into the original P3C baseline.
#[derive(Debug, Clone)]
pub struct P3cPlus {
    params: P3cParams,
}

impl P3cPlus {
    /// New pipeline with validated parameters.
    pub fn new(params: P3cParams) -> Self {
        params.validate();
        Self { params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// Clusters a normalized dataset.
    pub fn cluster(&self, data: &Dataset) -> P3cResult {
        let rows = data.row_refs();
        let (cores, mut stats) = shared_core_phase(data, &rows, &self.params);
        if cores.is_empty() {
            return empty_result(data.len(), stats);
        }

        // EM in the relevant subspace.
        let arel: Vec<usize> = cores
            .iter()
            .flat_map(|c| c.signature.attributes())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let init = initialize_from_cores(&cores, &rows, &arel);
        let fit = em_fit_threads(
            init,
            &rows,
            self.params.em_max_iters,
            self.params.em_tol,
            self.params.threads,
        );
        stats.em_iterations = fit.iterations;
        let eval = fit.model.evaluator();
        let hard = assign_clusters(&eval, &rows);

        // Outlier detection.
        let assignment = match self.params.outlier {
            OutlierMethod::Naive => {
                detect_outliers_naive(&eval, &rows, &hard, self.params.alpha_outlier, arel.len())
            }
            OutlierMethod::Mvb => {
                detect_outliers_mvb(&eval, &rows, &hard, self.params.alpha_outlier, arel.len())
            }
            OutlierMethod::Mcd => {
                detect_outliers_mcd(&eval, &rows, &hard, self.params.alpha_outlier, arel.len())
            }
        };
        stats.outliers = assignment.iter().filter(|&&a| a == -1).count();

        // Attribute inspection + interval tightening per cluster.
        let clustering = finalize_partitioned(&rows, &assignment, &cores, &self.params);
        P3cResult {
            clustering,
            cores,
            stats,
        }
    }
}

/// The P3C+-Light pipeline (Section 6): no EM, no outlier detection;
/// clusters are the cluster cores' support sets, with attribute
/// inspection restricted to points belonging to exactly one support set.
#[derive(Debug, Clone)]
pub struct P3cPlusLight {
    params: P3cParams,
}

impl P3cPlusLight {
    /// New pipeline with validated parameters.
    pub fn new(params: P3cParams) -> Self {
        params.validate();
        Self { params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// Runs the Light pipeline (no EM refinement) on `data`.
    pub fn cluster(&self, data: &Dataset) -> P3cResult {
        let rows = data.row_refs();
        let (cores, mut stats) = shared_core_phase(data, &rows, &self.params);
        if cores.is_empty() {
            return empty_result(data.len(), stats);
        }

        let membership = light_membership(&rows, &cores);
        stats.outliers = membership.outliers.len();
        let clustering = light_finalize(&rows, &cores, &membership, &self.params);
        P3cResult {
            clustering,
            cores,
            stats,
        }
    }
}

/// The Light pipeline's membership mapping `m′` (Section 6): per core,
/// its member point ids, the ids belonging to *only* that core, and the
/// ids in no core at all — each list in ascending id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct LightMembership {
    pub members: Vec<Vec<usize>>,
    pub unique_members: Vec<Vec<usize>>,
    pub outliers: Vec<usize>,
}

/// Computes the Light membership mapping by one scan over the rows.
/// Extracted from `P3cPlusLight::cluster` so the incremental service's
/// fallback path runs literally the same code (byte-identity by
/// construction).
pub(crate) fn light_membership(rows: &[&[f64]], cores: &[ClusterCore]) -> LightMembership {
    let k = cores.len();
    let mut m = LightMembership {
        members: vec![Vec::new(); k],
        unique_members: vec![Vec::new(); k],
        outliers: Vec::new(),
    };
    for (i, row) in rows.iter().enumerate() {
        light_classify(row, i, cores, &mut m);
    }
    m
}

/// Classifies one row into the membership mapping — the per-point step
/// of [`light_membership`], also used by the incremental engine to fold
/// an appended delta block into maintained memberships.
pub(crate) fn light_classify(
    row: &[f64],
    id: usize,
    cores: &[ClusterCore],
    m: &mut LightMembership,
) {
    let mut containing: Vec<usize> = Vec::new();
    for (c, core) in cores.iter().enumerate() {
        if core.signature.contains(row) {
            containing.push(c);
        }
    }
    match containing.as_slice() {
        [] => m.outliers.push(id),
        cs => {
            for &c in cs {
                m.members[c].push(id);
            }
            if let [only] = cs {
                m.unique_members[*only].push(id);
            }
        }
    }
}

/// The Light pipeline's finalization: per core, attribute inspection
/// over the unique members (the Light histogram of Section 6) and
/// interval tightening — core attributes over the full support set, AI
/// attributes over the unique members (shared points would blur exactly
/// the way Section 6 warns about).
pub(crate) fn light_finalize(
    rows: &[&[f64]],
    cores: &[ClusterCore],
    m: &LightMembership,
    params: &P3cParams,
) -> Clustering {
    let mut clusters = Vec::with_capacity(cores.len());
    for (c, core) in cores.iter().enumerate() {
        let member_rows: Vec<&[f64]> = m.members[c].iter().map(|&i| rows[i]).collect();
        let unique_rows: Vec<&[f64]> = m.unique_members[c].iter().map(|&i| rows[i]).collect();
        let core_attrs = core.signature.attributes();
        let extra = inspect_attributes(&unique_rows, &core_attrs, params);
        let mut attrs = core_attrs.clone();
        attrs.extend(extra.iter().map(|iv| iv.attr));
        let mut intervals = tighten_intervals(&member_rows, &core_attrs);
        let ai_attrs: BTreeSet<usize> = extra.iter().map(|iv| iv.attr).collect();
        intervals.extend(tighten_intervals(&unique_rows, &ai_attrs));
        clusters.push(ProjectedCluster::new(
            m.members[c].clone(),
            attrs,
            intervals,
        ));
    }
    Clustering::new(clusters, m.outliers.clone())
}

/// Histogram → relevant intervals → cluster cores → redundancy filter:
/// the part shared by every variant. Binning and IQR estimation run as
/// column scans over the dataset's flat row-major buffer; core
/// generation still works on row views.
fn shared_core_phase(
    data: &Dataset,
    rows: &[&[f64]],
    params: &P3cParams,
) -> (Vec<ClusterCore>, PipelineStats) {
    let n = data.len();
    let bins_per_attr = bins_per_attribute_columnar(data, params);
    let hists = build_histograms_columnar_threads(
        n,
        data.dim(),
        data.as_slice(),
        &bins_per_attr,
        params.threads,
    );
    let mut counter = ScanCounter::new(rows);
    core_phase_from_histograms(&hists, n, params, &mut counter).expect("scan counter is infallible")
}

/// Relevant intervals → cluster cores → redundancy filter → expected
/// supports, starting from already-built histograms and a
/// [`LevelCounter`]. Shared by the batch pipelines (scan counter over
/// the full row set) and the incremental service engine (cached
/// counter over maintained supports): for equal histograms and equal
/// counter answers, every step below is a pure function, so the
/// returned cores are identical — the byte-identity contract of
/// DESIGN.md §14.
pub(crate) fn core_phase_from_histograms(
    hists: &crate::histogram::AttributeHistograms,
    n: usize,
    params: &P3cParams,
    counter: &mut dyn LevelCounter,
) -> Result<(Vec<ClusterCore>, PipelineStats), String> {
    let mut stats = PipelineStats {
        bins: hists.bins,
        ..PipelineStats::default()
    };
    let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
    stats.relevant_intervals = intervals.len();
    let gen = generate_cluster_cores_with(&intervals, n, params, counter)?;
    stats.core_gen = gen.stats.clone();
    // With the filter on, redundancy runs over the full proven set
    // against the attribute-independence null *before* maximality —
    // overlap-region artifacts are removed and the true cores they
    // eclipsed resurface (DESIGN.md §11). With it off, the raw maximal
    // set is reported, as Figure 5's unfiltered columns require.
    let mut cores = if params.use_redundancy_filter {
        let kept = filter_redundant_proven(&gen.proven, &gen.table, n);
        stats.redundancy_removed = gen.cores.len().saturating_sub(kept.len());
        kept
    } else {
        gen.cores
    };
    attach_expected_supports(&mut cores, n);
    stats.cores = cores.len();
    Ok((cores, stats))
}

/// Builds the final clustering from a hard partition (EM + OD output):
/// attribute inspection on each cluster's members, then tightening.
fn finalize_partitioned(
    rows: &[&[f64]],
    assignment: &[i64],
    cores: &[ClusterCore],
    params: &P3cParams,
) -> Clustering {
    let k = cores.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut outliers = Vec::new();
    for (i, &a) in assignment.iter().enumerate() {
        if a < 0 {
            outliers.push(i);
        } else {
            members[a as usize].push(i);
        }
    }
    let mut clusters = Vec::with_capacity(k);
    for (c, core) in cores.iter().enumerate() {
        let member_rows: Vec<&[f64]> = members[c].iter().map(|&i| rows[i]).collect();
        let core_attrs = core.signature.attributes();
        let extra = inspect_attributes(&member_rows, &core_attrs, params);
        let mut attrs = core_attrs;
        attrs.extend(extra.iter().map(|iv| iv.attr));
        let intervals = tighten_intervals(&member_rows, &attrs);
        clusters.push(ProjectedCluster::new(members[c].clone(), attrs, intervals));
    }
    Clustering::new(clusters, outliers)
}

/// Per-attribute bin counts under the configured rule. The uniform rules
/// return a constant vector; the exact-IQR extension computes each
/// attribute's quartiles (serially — the MR pipelines use a job instead).
pub fn bins_per_attribute(rows: &[&[f64]], n: usize, params: &P3cParams) -> Vec<usize> {
    let d = rows.first().map_or(0, |r| r.len());
    match params.bin_rule {
        BinRuleChoice::Sturges | BinRuleChoice::FreedmanDiaconis => {
            vec![params.bin_rule.to_rule().num_bins(n).max(1); d]
        }
        BinRuleChoice::FreedmanDiaconisIqr => {
            let mut column = Vec::with_capacity(n);
            (0..d)
                .map(|j| {
                    column.clear();
                    column.extend(rows.iter().map(|r| r[j]));
                    let iqr = p3c_stats::descriptive::iqr(&column).unwrap_or(0.5);
                    iqr_bins(n, iqr)
                })
                .collect()
        }
    }
}

/// Columnar twin of [`bins_per_attribute`]: the exact-IQR rule extracts
/// each attribute by a strided column scan over the flat buffer instead
/// of gathering across row views. Same values in the same order, so the
/// bin counts are identical.
pub fn bins_per_attribute_columnar(data: &Dataset, params: &P3cParams) -> Vec<usize> {
    let (n, d) = (data.len(), data.dim());
    match params.bin_rule {
        BinRuleChoice::Sturges | BinRuleChoice::FreedmanDiaconis => {
            vec![params.bin_rule.to_rule().num_bins(n).max(1); d]
        }
        BinRuleChoice::FreedmanDiaconisIqr => {
            let mut column = Vec::with_capacity(n);
            (0..d)
                .map(|j| {
                    column.clear();
                    column.extend(data.column(j));
                    let iqr = p3c_stats::descriptive::iqr(&column).unwrap_or(0.5);
                    iqr_bins(n, iqr)
                })
                .collect()
        }
    }
}

/// Freedman–Diaconis bin count from an attribute's IQR, clamped to
/// `[2, 4 × simplified-FD]` (tiny IQRs would otherwise explode the
/// discretization).
pub fn iqr_bins(n: usize, iqr: f64) -> usize {
    let cap = 4 * p3c_stats::binning::freedman_diaconis_bins(n).max(1);
    if iqr <= f64::EPSILON {
        return cap;
    }
    p3c_stats::binning::freedman_diaconis_bins_with_iqr(n, iqr, 1.0).clamp(2, cap)
}

/// The no-cores result: every point an outlier, zero clusters. Shared
/// with the incremental engine so its empty path matches batch exactly
/// (including the untouched `stats.outliers` field).
pub(crate) fn empty_result(n: usize, stats: PipelineStats) -> P3cResult {
    P3cResult {
        clustering: Clustering::new(Vec::new(), (0..n).collect()),
        cores: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};
    use p3c_eval::e4sc;

    fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n,
            d: 12,
            num_clusters: k,
            noise_fraction: noise,
            max_cluster_dims: 5,
            seed,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn p3cplus_recovers_planted_clusters() {
        let data = generate(&spec(3000, 3, 0.05, 11));
        let result = P3cPlus::new(P3cParams::default()).cluster(&data.dataset);
        assert_eq!(
            result.clustering.num_clusters(),
            3,
            "stats: {:?}",
            result.stats
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.6, "E4SC = {q}");
    }

    #[test]
    fn light_recovers_planted_clusters_cleanly() {
        let data = generate(&spec(3000, 3, 0.1, 5));
        let result = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        assert_eq!(
            result.clustering.num_clusters(),
            3,
            "stats: {:?}",
            result.stats
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.7, "E4SC = {q}");
    }

    #[test]
    fn redundancy_filter_controls_core_count() {
        // The Figure 5 phenomenon: without the filter, overlap regions of
        // hidden clusters spawn extra cores; with it the count settles at
        // the number of hidden clusters.
        // Seed pinned against the committed offline RNG stub's stream
        // (third_party/stubs/rand); re-pin if that stream ever changes.
        let data = generate(&spec(8000, 5, 0.2, 41));
        let with = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        let without = P3cPlusLight::new(P3cParams {
            use_redundancy_filter: false,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        assert!(with.stats.cores <= without.stats.cores);
        assert_eq!(with.stats.cores, 5, "with filter: {:?}", with.stats);
        assert!(
            without.stats.cores > 5,
            "without filter: {:?}",
            without.stats
        );
    }

    #[test]
    fn no_clusters_on_pure_noise() {
        // All-uniform data: every attribute passes the uniformity test and
        // no cores are generated.
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|i| {
                (0..8)
                    .map(|j| {
                        let x = ((i * 37 + j * 101) % 1999) as f64 / 1999.0;
                        (x * 7.13 + 0.31 * j as f64).fract()
                    })
                    .collect()
            })
            .collect();
        let ds = Dataset::from_rows(rows);
        let result = P3cPlus::new(P3cParams::default()).cluster(&ds);
        assert_eq!(
            result.clustering.num_clusters(),
            0,
            "stats: {:?}",
            result.stats
        );
        assert_eq!(result.clustering.outliers.len(), 2000);
    }

    #[test]
    fn every_point_is_clustered_or_outlier_exactly_once_in_full_variant() {
        let data = generate(&spec(2000, 3, 0.1, 9));
        let result = P3cPlus::new(P3cParams::default()).cluster(&data.dataset);
        let mut seen = vec![0usize; data.dataset.len()];
        for c in &result.clustering.clusters {
            for &p in &c.points {
                seen[p] += 1;
            }
        }
        for &o in &result.clustering.outliers {
            seen[o] += 1;
        }
        assert!(seen.iter().all(|&s| s == 1), "partition violated");
    }

    #[test]
    fn light_clusters_cover_their_points() {
        let data = generate(&spec(2000, 3, 0.05, 21));
        let result = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        for cluster in &result.clustering.clusters {
            // Points must lie inside the tightened intervals on core attrs.
            for &p in &cluster.points {
                let row = data.dataset.row(p);
                for iv in &cluster.intervals {
                    if cluster.attributes.contains(&iv.attr) {
                        // AI-attr intervals are tightened over unique
                        // members only; core-attr intervals over all.
                        continue;
                    }
                    assert!(iv.contains(row));
                }
            }
        }
    }

    #[test]
    fn original_p3c_params_run_end_to_end() {
        // Seed pinned against the committed offline RNG stub's stream.
        let data = generate(&spec(2000, 3, 0.05, 21));
        let result = P3cPlus::new(P3cParams::original_p3c()).cluster(&data.dataset);
        // The original algorithm still finds clusters on easy data…
        assert!(result.clustering.num_clusters() >= 3);
    }

    #[test]
    fn exact_iqr_binning_end_to_end() {
        let data = generate(&spec(3000, 3, 0.05, 11));
        let result = P3cPlusLight::new(P3cParams {
            bin_rule: crate::config::BinRuleChoice::FreedmanDiaconisIqr,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        assert_eq!(
            result.clustering.num_clusters(),
            3,
            "stats: {:?}",
            result.stats
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.6, "E4SC = {q}");
        // Clustered attributes have small IQRs → more bins than the
        // simplified rule's uniform count.
        let simplified = p3c_stats::binning::freedman_diaconis_bins(3000);
        assert!(result.stats.bins > simplified, "bins {}", result.stats.bins);
    }

    #[test]
    fn iqr_bins_clamps() {
        assert_eq!(iqr_bins(1000, 0.0), 4 * 10);
        assert_eq!(iqr_bins(1000, 0.5), 10); // reduces to the simplified rule
        assert!(iqr_bins(1000, 0.01) <= 40);
        assert!(iqr_bins(1000, 0.9) >= 2);
    }

    #[test]
    fn stats_populated() {
        let data = generate(&spec(1500, 2, 0.0, 2));
        let result = P3cPlus::new(P3cParams::default()).cluster(&data.dataset);
        assert!(result.stats.bins > 0);
        assert!(result.stats.relevant_intervals > 0);
        assert!(result.stats.em_iterations > 0);
        assert_eq!(result.stats.cores, result.cores.len());
    }
}
