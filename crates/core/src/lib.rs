//! P3C, P3C+, P3C+-MR and P3C+-MR-Light — projected clustering for huge
//! data sets, reproduced from Fries, Wels & Seidl (EDBT 2014).
//!
//! # The algorithms
//!
//! * [`p3c::P3c`] — the original P3C of Moise, Sander & Ester (ICDM 2006)
//!   as the paper describes it: Sturges-binned histograms, χ² relevance,
//!   Poisson-tested Apriori cluster-core generation, EM refinement, naive
//!   multivariate outlier detection, attribute inspection and interval
//!   tightening. Implemented as the baseline.
//! * [`p3cplus::P3cPlus`] — the paper's improved model (Section 4):
//!   Freedman–Diaconis binning, Poisson **plus Cohen's d effect-size**
//!   support test, **cluster-core redundancy filtering**, **MVB**
//!   (minimum-volume-ball) outlier detection, and **AI proving**.
//! * [`mr::P3cPlusMr`] — P3C+ decomposed into MapReduce jobs on the
//!   [`p3c_mapreduce::Engine`] (Section 5): histogram job, parallel
//!   candidate generation with multi-level collection, RSSC-accelerated
//!   candidate proving, EM init/iteration jobs, OD/MVB jobs, attribute
//!   inspection and interval tightening jobs.
//! * [`mr::P3cPlusMrLight`] — the Light variant (Section 6): skips EM and
//!   outlier detection entirely and reads clusters straight off the
//!   cluster cores, using unique-support-set membership for attribute
//!   inspection. Fastest, and on large data the most accurate.
//!
//! # Quick start
//!
//! ```
//! use p3c_core::p3cplus::P3cPlus;
//! use p3c_core::config::P3cParams;
//! use p3c_datagen::{generate, SyntheticSpec};
//!
//! let data = generate(&SyntheticSpec { n: 2000, d: 10, num_clusters: 2,
//!     noise_fraction: 0.05, max_cluster_dims: 4, seed: 3,
//!     ..SyntheticSpec::default() });
//! let result = P3cPlus::new(P3cParams::default()).cluster(&data.dataset);
//! assert!(!result.clustering.clusters.is_empty());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod cores;
pub mod em;
pub mod histogram;
pub mod incremental;
pub mod inspect;
pub mod mr;
pub mod outlier;
pub mod p3c;
pub mod p3cplus;
pub mod redundancy;
pub mod relevance;
pub mod support;
pub mod types;

pub use config::{BinRuleChoice, OutlierMethod, P3cParams};
pub use types::{Interval, Signature};
