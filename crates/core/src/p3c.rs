//! The original P3C baseline (Moise, Sander & Ester, ICDM 2006) as the
//! paper describes it in Section 3.
//!
//! Architecturally this is [`crate::p3cplus::P3cPlus`] with every P3C+
//! improvement switched off: Sturges binning, Poisson-only support test,
//! no redundancy filtering, naive outlier detection, no AI proving. The
//! wrapper exists so the comparison experiments (Section 7.4, 7.6) read
//! naturally.

use crate::config::P3cParams;
use crate::p3cplus::{P3cPlus, P3cResult};
use p3c_dataset::Dataset;

/// The original P3C algorithm.
#[derive(Debug, Clone)]
pub struct P3c {
    inner: P3cPlus,
}

impl P3c {
    /// Original P3C with its default configuration; only the Poisson
    /// significance level is tunable (the paper's single P3C parameter).
    pub fn new(alpha_poisson: f64) -> Self {
        let params = P3cParams {
            alpha_poisson,
            ..P3cParams::original_p3c()
        };
        Self {
            inner: P3cPlus::new(params),
        }
    }

    /// Original P3C with full parameter control (must keep the original
    /// feature switches; use [`P3cPlus`] directly for the improved model).
    pub fn with_params(params: P3cParams) -> Self {
        assert!(
            !params.use_effect_size && !params.use_redundancy_filter && !params.use_ai_proving,
            "P3C wrapper requires the original feature switches; use P3cPlus for the improved model"
        );
        Self {
            inner: P3cPlus::new(params),
        }
    }

    /// The baseline's parameters.
    pub fn params(&self) -> &P3cParams {
        self.inner.params()
    }

    /// Clusters a normalized dataset.
    pub fn cluster(&self, data: &Dataset) -> P3cResult {
        self.inner.cluster(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};

    #[test]
    fn finds_clusters_on_easy_data() {
        let data = generate(&SyntheticSpec {
            n: 2000,
            d: 10,
            num_clusters: 2,
            noise_fraction: 0.0,
            max_cluster_dims: 4,
            seed: 3,
            ..SyntheticSpec::default()
        });
        let result = P3c::new(1e-10).cluster(&data.dataset);
        assert!(result.clustering.num_clusters() >= 2);
    }

    #[test]
    fn uses_sturges_bins() {
        let data = generate(&SyntheticSpec {
            n: 1024,
            d: 6,
            num_clusters: 1,
            noise_fraction: 0.0,
            max_cluster_dims: 3,
            seed: 1,
            ..SyntheticSpec::default()
        });
        let result = P3c::new(1e-10).cluster(&data.dataset);
        assert_eq!(result.stats.bins, 11); // Sturges on n = 1024
    }

    #[test]
    #[should_panic(expected = "original feature switches")]
    fn with_params_rejects_p3cplus_features() {
        let _ = P3c::with_params(P3cParams::default());
    }

    #[test]
    fn overestimates_cores_without_redundancy_filter() {
        // On overlapping clusters the original P3C (no redundancy filter,
        // Poisson-only) reports at least as many cores as P3C+.
        let data = generate(&SyntheticSpec {
            n: 5000,
            d: 12,
            num_clusters: 5,
            noise_fraction: 0.2,
            max_cluster_dims: 5,
            seed: 42,
            ..SyntheticSpec::default()
        });
        let original = P3c::new(1e-4).cluster(&data.dataset);
        let plus = crate::p3cplus::P3cPlusLight::new(P3cParams {
            alpha_poisson: 1e-4,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        assert!(
            original.stats.cores >= plus.stats.cores,
            "original {} vs plus {}",
            original.stats.cores,
            plus.stats.cores
        );
    }
}
