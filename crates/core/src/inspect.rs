//! Attribute inspection, AI proving and interval tightening
//! (paper Sections 3.2.2, 4.2.3, 5.6, 5.7).
//!
//! After the point partition is fixed (by EM + outlier detection, or by
//! support-set membership in the Light variant), each cluster's members
//! are re-examined: histograms over the members reveal relevant
//! attributes missed by core generation; P3C+ additionally *proves* each
//! suggested interval with the same support test as Equation 1 (AI
//! proving); finally every relevant attribute's interval is tightened to
//! the min/max of the members.

use crate::config::P3cParams;
use crate::cores::SupportTester;
use crate::relevance::{mark_relevant_bins, merge_marked_bins};
use crate::types::Interval;
use p3c_dataset::AttrInterval;
use p3c_stats::Histogram;
use std::collections::BTreeSet;

/// Suggests additional relevant intervals for one cluster from its member
/// rows, skipping attributes already known relevant.
///
/// When `params.use_ai_proving`, each suggested interval `I_new` must pass
/// the support test `Supp_members(I_new) >_p |members| · width(I_new)` —
/// the cluster-conditional form of Equation 1.
pub fn inspect_attributes(
    member_rows: &[&[f64]],
    known_attrs: &BTreeSet<usize>,
    params: &P3cParams,
) -> Vec<Interval> {
    if member_rows.is_empty() {
        return Vec::new();
    }
    let d = member_rows[0].len();
    let bins = params.bin_rule.to_rule().num_bins(member_rows.len()).max(1);
    let mut hists = vec![Histogram::new(bins); d];
    for row in member_rows {
        for (attr, &v) in row.iter().enumerate() {
            hists[attr].add(v);
        }
    }
    inspect_from_histograms(&hists, member_rows.len(), known_attrs, params)
}

/// The histogram-level half of attribute inspection: given per-attribute
/// member histograms (from the serial scan above, or from the MR
/// attribute-inspection job of Section 5.6), marks relevant bins, merges
/// them to intervals, and applies AI proving. Attributes in `known_attrs`
/// are skipped.
pub fn inspect_from_histograms(
    hists: &[Histogram],
    n_members: usize,
    known_attrs: &BTreeSet<usize>,
    params: &P3cParams,
) -> Vec<Interval> {
    let tester = SupportTester::from_params(params);
    let mut found = Vec::new();
    for (attr, hist) in hists.iter().enumerate() {
        if known_attrs.contains(&attr) {
            continue;
        }
        let bins = hist.num_bins();
        let marked = mark_relevant_bins(hist, params.alpha_chi2);
        for interval in merge_marked_bins(attr, &marked, bins) {
            if params.use_ai_proving {
                let support: f64 = (interval.bin_lo..=interval.bin_hi)
                    .map(|b| hist.count(b))
                    .sum();
                let expected = n_members as f64 * interval.width();
                if !tester.accepts(support, expected) {
                    continue;
                }
            }
            found.push(interval);
        }
    }
    found
}

/// Tightens the output intervals of a cluster: per relevant attribute the
/// smallest closed interval containing all member values (Section 5.7).
pub fn tighten_intervals(member_rows: &[&[f64]], attrs: &BTreeSet<usize>) -> Vec<AttrInterval> {
    let mut out = Vec::with_capacity(attrs.len());
    for &attr in attrs {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in member_rows {
            let v = row[attr];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if member_rows.is_empty() {
            lo = 0.0;
            hi = 0.0;
        }
        out.push(AttrInterval::new(attr, lo, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Members concentrated on attr 1 around 0.3, uniform on attr 0.
    fn member_data(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                vec![t, 0.28 + 0.04 * ((i % 7) as f64 / 7.0)]
            })
            .collect()
    }

    #[test]
    fn finds_missed_relevant_attribute() {
        let data = member_data(500);
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let known = BTreeSet::new();
        let found = inspect_attributes(&rows, &known, &P3cParams::default());
        assert!(found.iter().any(|iv| iv.attr == 1), "found: {found:?}");
        assert!(found.iter().all(|iv| iv.attr != 0), "uniform attr flagged");
    }

    #[test]
    fn known_attributes_are_skipped() {
        let data = member_data(500);
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let known: BTreeSet<usize> = [1].into();
        let found = inspect_attributes(&rows, &known, &P3cParams::default());
        assert!(found.is_empty(), "found: {found:?}");
    }

    #[test]
    fn ai_proving_rejects_weak_intervals() {
        // A mild bump that the χ² marking flags at a loose alpha but whose
        // effect size stays under θ_cc.
        let mut data = Vec::new();
        for i in 0..1000 {
            let t = (i as f64 + 0.5) / 1000.0;
            data.push(vec![t]);
        }
        // add 12% extra points in one bin region
        for i in 0..120 {
            let t = (i as f64 + 0.5) / 120.0;
            data.push(vec![0.42 + 0.05 * t]);
        }
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let known = BTreeSet::new();
        let loose = P3cParams {
            alpha_chi2: 0.5,
            use_ai_proving: false,
            ..P3cParams::default()
        };
        let proving = P3cParams {
            alpha_chi2: 0.5,
            use_ai_proving: true,
            theta_cc: 3.0, // absurdly strict: nothing passes
            ..P3cParams::default()
        };
        let without = inspect_attributes(&rows, &known, &loose);
        let with = inspect_attributes(&rows, &known, &proving);
        assert!(with.len() <= without.len());
        assert!(with.is_empty(), "θ_cc=3 must reject all: {with:?}");
    }

    #[test]
    fn empty_members() {
        let rows: Vec<&[f64]> = vec![];
        assert!(inspect_attributes(&rows, &BTreeSet::new(), &P3cParams::default()).is_empty());
        assert!(tighten_intervals(&rows, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn tightening_bounds_members_exactly() {
        let data = [vec![0.2, 0.9], vec![0.4, 0.5], vec![0.3, 0.7]];
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let attrs: BTreeSet<usize> = [0, 1].into();
        let ivs = tighten_intervals(&rows, &attrs);
        assert_eq!(ivs.len(), 2);
        assert_eq!((ivs[0].lo, ivs[0].hi), (0.2, 0.4));
        assert_eq!((ivs[1].lo, ivs[1].hi), (0.5, 0.9));
        // Every member is covered.
        for row in &rows {
            assert!(ivs.iter().all(|iv| iv.contains(row)));
        }
    }

    #[test]
    fn tightening_subset_of_attrs() {
        let data = [vec![0.2, 0.9], vec![0.4, 0.5]];
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let attrs: BTreeSet<usize> = [1].into();
        let ivs = tighten_intervals(&rows, &attrs);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].attr, 1);
    }
}
