//! Gaussian-mixture EM refinement of cluster cores (paper Sections 3.2.2
//! and 5.4).
//!
//! EM runs in the *relevant subspace* `A_rel` (Equation 3) — the union of
//! all attributes relevant to at least one cluster core. Initialization
//! follows the paper's two rounds: first means/covariances from the core
//! support sets only, then the remaining points are attached to their
//! Mahalanobis-nearest core and the statistics recomputed.

use crate::cores::ClusterCore;
use p3c_linalg::cholesky::transpose_lane_group;
use p3c_linalg::{Cholesky, CovarianceAccumulator, LaneScratch, Matrix, LANES};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Process-global lane-kernel selector: `0` follows the `P3C_LANES`
/// environment variable (default on), `1` forces the scalar kernels,
/// `2` forces the lane-batched kernels. Written only by
/// [`set_lane_mode`]; both kernel families are bit-identical
/// (DESIGN.md §13), so the flag never changes results — only which
/// code path computes them.
static LANE_MODE: AtomicU8 = AtomicU8::new(0);
static LANE_ENV: OnceLock<bool> = OnceLock::new();

/// Overrides the lane-kernel selection process-wide: `Some(true)`
/// forces the 8-lane kernels, `Some(false)` forces the scalar kernels,
/// `None` restores the `P3C_LANES` environment default. Exists so
/// in-process test matrices can flip kernels without the data race of
/// mutating the environment after threads have started.
pub fn set_lane_mode(force: Option<bool>) {
    let v = match force {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    // audit: relaxed-ok — the flag selects between bit-identical kernel
    // implementations and publishes no data; any interleaving of the
    // store with concurrent loads yields the same numerical results.
    LANE_MODE.store(v, Ordering::Relaxed);
}

/// Whether the lane-batched (8-wide) E-step kernels are selected: the
/// [`set_lane_mode`] override if set, else `P3C_LANES` (any value but
/// `"0"` enables; unset enables).
pub fn lanes_enabled() -> bool {
    // audit: relaxed-ok — see `set_lane_mode`: the flag only selects
    // between bit-identical kernels, so load ordering cannot affect
    // results.
    match LANE_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *LANE_ENV.get_or_init(|| std::env::var("P3C_LANES").map_or(true, |v| v != "0")),
    }
}

/// Per-worker scratch for the E-step kernels: the lane transpose /
/// forward-substitution buffers, the k×[`LANES`] point-major density
/// tile of one lane group, and the scalar-path scratch.
#[derive(Debug, Default)]
pub struct EstepScratch {
    lanes: LaneScratch,
    tile: Vec<f64>,
    dens: Vec<f64>,
    y: Vec<f64>,
    /// Gathered significant points / weights for one component's
    /// [`CovarianceAccumulator::push_block`] call.
    xs: Vec<f64>,
    ws: Vec<f64>,
}

impl EstepScratch {
    /// An empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One Gaussian component in `A_rel` coordinates.
#[derive(Debug, Clone)]
pub struct Component {
    /// Mean in `A_rel` coordinates.
    pub mean: Vec<f64>,
    /// Covariance in `A_rel` coordinates.
    pub cov: Matrix,
    /// Mixture weight π_k (sums to 1 across components).
    pub weight: f64,
}

/// A fitted Gaussian mixture over the relevant subspace.
#[derive(Debug, Clone)]
pub struct MixtureModel {
    /// The relevant attributes, in ascending order; component coordinates
    /// index into this list.
    pub arel: Vec<usize>,
    /// The mixture's components.
    pub components: Vec<Component>,
}

/// Precomputed per-component state for fast density evaluation.
pub struct DensityEvaluator {
    comps: Vec<(Vec<f64>, Cholesky, f64 /* log(π) − ½log|2πΣ| */)>,
    arel: Vec<usize>,
}

impl MixtureModel {
    /// Builds the evaluator (factorizes every covariance once).
    pub fn evaluator(&self) -> DensityEvaluator {
        let d = self.arel.len() as f64;
        let comps = self
            .components
            .iter()
            .map(|c| {
                let chol = Cholesky::new_regularized(&c.cov).expect("covariance not regularizable");
                let log_norm = c.weight.max(1e-300).ln()
                    - 0.5 * (d * (2.0 * std::f64::consts::PI).ln() + chol.log_det());
                (c.mean.clone(), chol, log_norm)
            })
            .collect();
        DensityEvaluator {
            comps,
            arel: self.arel.clone(),
        }
    }
}

impl DensityEvaluator {
    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Number of relevant attributes (the projected dimensionality).
    pub fn arel_len(&self) -> usize {
        self.arel.len()
    }

    /// Projects a full-dimensional row into `A_rel` coordinates.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        self.arel.iter().map(|&a| row[a]).collect()
    }

    /// Projects into a caller-owned buffer (the allocation-free form of
    /// [`DensityEvaluator::project`]).
    pub fn project_into(&self, row: &[f64], x_sub: &mut Vec<f64>) {
        x_sub.clear();
        x_sub.extend(self.arel.iter().map(|&a| row[a]));
    }

    /// Appends the row's `A_rel` attributes to `buf` without clearing —
    /// the block-gather form of [`DensityEvaluator::project_into`].
    pub fn project_append(&self, row: &[f64], buf: &mut Vec<f64>) {
        buf.extend(self.arel.iter().map(|&a| row[a]));
    }

    /// Log of `π_k · N(x | μ_k, Σ_k)` for the projected point.
    pub fn log_weighted_density(&self, k: usize, x_sub: &[f64]) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.log_weighted_density_scratch(k, x_sub, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::log_weighted_density`]: the
    /// offset and forward substitution are fused over the caller-owned
    /// scratch buffer, bit-identical to the allocating path.
    pub fn log_weighted_density_scratch(&self, k: usize, x_sub: &[f64], y: &mut Vec<f64>) -> f64 {
        let (mean, chol, log_norm) = &self.comps[k];
        log_norm - 0.5 * chol.mahalanobis_sq_scratch(x_sub, mean, y)
    }

    /// Squared Mahalanobis distance of the projected point to component k.
    pub fn mahalanobis_sq(&self, k: usize, x_sub: &[f64]) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.mahalanobis_sq_scratch(k, x_sub, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::mahalanobis_sq`].
    pub fn mahalanobis_sq_scratch(&self, k: usize, x_sub: &[f64], y: &mut Vec<f64>) -> f64 {
        let (mean, chol, _) = &self.comps[k];
        chol.mahalanobis_sq_scratch(x_sub, mean, y)
    }

    /// Squared Mahalanobis distances of a contiguous block of projected
    /// points to component `k`, through the lane-batched block kernel
    /// ([`Cholesky::mahalanobis_sq_block`]) — bit-identical per point to
    /// [`DensityEvaluator::mahalanobis_sq_scratch`].
    pub fn mahalanobis_sq_component_block(
        &self,
        k: usize,
        block: &[f64],
        scratch: &mut LaneScratch,
        out: &mut Vec<f64>,
    ) {
        let (mean, chol, _) = &self.comps[k];
        chol.mahalanobis_sq_block(block, mean, scratch, out);
    }

    /// Responsibilities γ_k(x) (softmax over components) and the point's
    /// log-likelihood contribution.
    pub fn responsibilities(&self, x_sub: &[f64], out: &mut Vec<f64>) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.responsibilities_scratch(x_sub, out, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::responsibilities`]: `y` is the
    /// forward-substitution scratch, reused across calls.
    pub fn responsibilities_scratch(
        &self,
        x_sub: &[f64],
        out: &mut Vec<f64>,
        y: &mut Vec<f64>,
    ) -> f64 {
        // One disjoint scratch region per component: the k forward
        // substitutions are independent, and separate regions let the
        // CPU overlap their latency chains instead of serializing on a
        // shared buffer. Per-component operation order is unchanged, so
        // densities are bit-identical to the shared-scratch path.
        let d = x_sub.len().max(1);
        y.clear();
        y.resize(self.comps.len() * d, 0.0);
        out.clear();
        out.extend(self.comps.iter().zip(y.chunks_exact_mut(d)).map(
            |((mean, chol, log_norm), ybuf)| {
                log_norm - 0.5 * chol.mahalanobis_sq_slice(x_sub, mean, &mut ybuf[..x_sub.len()])
            },
        ));
        // audit: order-exact — f64::max is associative and commutative
        // (no NaNs on this path), so fold order cannot change the result.
        let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in out.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        max + sum.ln()
    }

    /// Log weighted densities for a contiguous block of projected
    /// points (`arel.len()` values per point, row-major):
    /// `out[p * k + c] = log(pi_c N(x_p | mu_c, Sigma_c))`.
    ///
    /// Component-outer, point-inner iteration keeps each factor's
    /// triangular matrix hot and gives every point in the block its own
    /// scratch region in `y`, so the CPU can overlap the independent
    /// forward-substitution chains instead of serializing on one
    /// buffer. Each (point, component) density runs exactly the
    /// per-point operation sequence, so values are bit-identical to
    /// [`DensityEvaluator::log_weighted_density`].
    pub fn log_densities_block(&self, block: &[f64], out: &mut Vec<f64>, y: &mut Vec<f64>) {
        let d = self.arel.len();
        let k = self.comps.len();
        if d == 0 {
            out.clear();
            return;
        }
        let npts = block.len() / d;
        assert_eq!(
            block.len(),
            npts * d,
            "block is not a whole number of points"
        );
        out.clear();
        out.resize(npts * k, 0.0);
        y.clear();
        y.resize(npts * d, 0.0);
        for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
            for (p, (x, ybuf)) in block.chunks_exact(d).zip(y.chunks_exact_mut(d)).enumerate() {
                out[p * k + c] = log_norm - 0.5 * chol.mahalanobis_sq_slice(x, mean, ybuf);
            }
        }
    }

    /// Lane-batched [`DensityEvaluator::log_densities_block`]: the same
    /// `out[p * k + c]` log weighted densities, computed 8 points per
    /// triangular-solve step with a scalar tail for ragged blocks —
    /// bit-identical to the scalar kernel (DESIGN.md §13).
    pub fn log_densities_block_lanes(
        &self,
        block: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut EstepScratch,
    ) {
        let d = self.arel.len();
        let k = self.comps.len();
        if d == 0 {
            out.clear();
            return;
        }
        let npts = block.len() / d;
        assert_eq!(
            block.len(),
            npts * d,
            "block is not a whole number of points"
        );
        out.clear();
        out.resize(npts * k, 0.0);
        let (xt, y) = scratch.lanes.for_order(d);
        let full = npts / LANES * LANES;
        for (g, group) in block[..full * d].chunks_exact(d * LANES).enumerate() {
            transpose_lane_group(group, d, xt);
            let base = g * LANES;
            for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
                let dists = chol.mahalanobis_sq_lanes(xt, mean, y);
                for (lane, &dist) in dists.iter().enumerate() {
                    out[(base + lane) * k + c] = log_norm - 0.5 * dist;
                }
            }
        }
        for (t, x) in block[full * d..].chunks_exact(d).enumerate() {
            let p = full + t;
            for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
                out[p * k + c] = log_norm - 0.5 * chol.mahalanobis_sq_slice(x, mean, &mut y[..d]);
            }
        }
    }

    /// Lane-batched hard assignment of a contiguous block of projected
    /// points: densities through
    /// [`DensityEvaluator::log_densities_block_lanes`], then per point
    /// the same `total_cmp`-based keep-last argmax over ascending
    /// components as [`DensityEvaluator::assign_scratch`] — so the
    /// assignments are bit-identical to the per-point path.
    pub fn assign_block_lanes(
        &self,
        block: &[f64],
        scratch: &mut EstepScratch,
        out: &mut Vec<usize>,
    ) {
        let k = self.comps.len();
        let mut dens = std::mem::take(&mut scratch.dens);
        self.log_densities_block_lanes(block, &mut dens, scratch);
        out.clear();
        for row in dens.chunks_exact(k.max(1)) {
            let mut best = 0;
            let mut best_density = f64::NEG_INFINITY;
            for (c, v) in row.iter().enumerate() {
                // `>=` keeps the last maximum, matching `assign_scratch`.
                if v.total_cmp(&best_density).is_ge() {
                    best = c;
                    best_density = *v;
                }
            }
            out.push(best);
        }
        scratch.dens = dens;
    }

    /// Lane-batched fused E-step kernel: responsibilities and the
    /// block's log-likelihood for a contiguous block of projected
    /// points, 8 points per step (DESIGN.md §13).
    ///
    /// Full lane groups are transposed point-major once per group
    /// (shared by every component's solve), each component's
    /// triangular solve runs [`LANES`] independent points per
    /// recurrence step, and the softmax reduces lane-parallel over the
    /// group's k×[`LANES`] density tile. Ragged tails (`npts` not a
    /// multiple of [`LANES`]) fall back to the exact scalar per-point
    /// kernels. Every per-point float operation sequence — offset,
    /// ascending-k subtraction, reciprocal multiply, ascending-i
    /// squared-sum, ascending-c max/exp-sum/divide, point-ascending
    /// log-likelihood addition — matches the scalar path, so `out` and
    /// the returned log-likelihood are bit-identical to
    /// [`DensityEvaluator::log_densities_block`] + [`softmax_in_place`]
    /// per point.
    pub fn responsibilities_block_lanes(
        &self,
        block: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut EstepScratch,
    ) -> f64 {
        let d = self.arel.len();
        let k = self.comps.len();
        if d == 0 {
            out.clear();
            return 0.0;
        }
        let npts = block.len() / d;
        assert_eq!(
            block.len(),
            npts * d,
            "block is not a whole number of points"
        );
        out.clear();
        out.resize(npts * k, 0.0);
        let mut loglik = 0.0;
        let (xt, y) = scratch.lanes.for_order(d);
        scratch.tile.clear();
        scratch.tile.resize(k * LANES, 0.0);
        let tile = &mut scratch.tile[..];
        let full = npts / LANES * LANES;
        for (g, group) in block[..full * d].chunks_exact(d * LANES).enumerate() {
            transpose_lane_group(group, d, xt);
            for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
                let dists = chol.mahalanobis_sq_lanes(xt, mean, y);
                for (lane, &dist) in dists.iter().enumerate() {
                    tile[c * LANES + lane] = log_norm - 0.5 * dist;
                }
            }
            // Fused softmax over the tile: per lane, the component loop
            // runs in ascending-c order — the same reduction order as
            // [`softmax_in_place`] on that point's density row.
            let mut maxv = [f64::NEG_INFINITY; LANES];
            for c in 0..k {
                let row = &tile[c * LANES..(c + 1) * LANES];
                for lane in 0..LANES {
                    maxv[lane] = maxv[lane].max(row[lane]);
                }
            }
            let mut sum = [0.0f64; LANES];
            for c in 0..k {
                let row = &mut tile[c * LANES..(c + 1) * LANES];
                for lane in 0..LANES {
                    let e = (row[lane] - maxv[lane]).exp();
                    row[lane] = e;
                    sum[lane] += e;
                }
            }
            let base = g * LANES;
            for c in 0..k {
                let row = &tile[c * LANES..(c + 1) * LANES];
                for lane in 0..LANES {
                    out[(base + lane) * k + c] = row[lane] / sum[lane];
                }
            }
            // Lane order within the group is point order, so this adds
            // the group's log-likelihoods point-ascending.
            for lane in 0..LANES {
                loglik += maxv[lane] + sum[lane].ln();
            }
        }
        for (t, x) in block[full * d..].chunks_exact(d).enumerate() {
            let p = full + t;
            let resp = &mut out[p * k..(p + 1) * k];
            for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
                resp[c] = log_norm - 0.5 * chol.mahalanobis_sq_slice(x, mean, &mut y[..d]);
            }
            loglik += softmax_in_place(resp);
        }
        loglik
    }

    /// Hard assignment: the component maximizing the weighted density.
    pub fn assign(&self, row: &[f64]) -> usize {
        let mut x = Vec::with_capacity(self.arel.len());
        let mut y = Vec::with_capacity(self.arel.len());
        self.assign_scratch(row, &mut x, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::assign`]: `x` receives the
    /// projected point, `y` is the forward-substitution scratch.
    pub fn assign_scratch(&self, row: &[f64], x: &mut Vec<f64>, y: &mut Vec<f64>) -> usize {
        self.project_into(row, x);
        let mut best = 0;
        let mut best_density = f64::NEG_INFINITY;
        for k in 0..self.comps.len() {
            let v = self.log_weighted_density_scratch(k, x, y);
            // `>=` keeps the last maximum, matching `Iterator::max_by`.
            if v.total_cmp(&best_density).is_ge() {
                best = k;
                best_density = v;
            }
        }
        best
    }
}

/// Converts one point's `k` log weighted densities (e.g. one row of
/// [`DensityEvaluator::log_densities_block`] output) into
/// responsibilities in place, returning the point's log-likelihood
/// contribution. The operation sequence is exactly the second half of
/// [`DensityEvaluator::responsibilities_scratch`], so results are
/// bit-identical.
pub fn softmax_in_place(logs: &mut [f64]) -> f64 {
    // audit: order-exact — f64::max is associative and commutative
    // (no NaNs on this path), so fold order cannot change the result.
    let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in logs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logs.iter_mut() {
        *v /= sum;
    }
    max + sum.ln()
}

/// Builds the initial mixture from cluster cores: the paper's two-round
/// initialization (support sets only, then plus nearest-core leftovers).
pub fn initialize_from_cores(
    cores: &[ClusterCore],
    rows: &[&[f64]],
    arel: &[usize],
) -> MixtureModel {
    assert!(
        !cores.is_empty(),
        "EM initialization needs at least one core"
    );
    let k = cores.len();
    let d = arel.len();

    // Round 1: accumulate over core support sets.
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    let mut uncovered: Vec<usize> = Vec::new();
    let mut x = Vec::with_capacity(d);
    for (i, row) in rows.iter().enumerate() {
        let mut in_any = false;
        for (c, core) in cores.iter().enumerate() {
            if core.signature.contains(row) {
                x.clear();
                x.extend(arel.iter().map(|&a| row[a]));
                accs[c].push(&x, 1.0);
                in_any = true;
            }
        }
        if !in_any {
            uncovered.push(i);
        }
    }
    let round1 = finish_components(&accs);

    // Round 2: attach uncovered points to the Mahalanobis-nearest core.
    let eval = MixtureModel {
        arel: arel.to_vec(),
        components: round1,
    }
    .evaluator();
    let mut y = Vec::with_capacity(d);
    for &i in &uncovered {
        eval.project_into(rows[i], &mut x);
        let mut nearest = 0;
        let mut best = f64::INFINITY;
        for c in 0..k {
            let dist = eval.mahalanobis_sq_scratch(c, &x, &mut y);
            // Strict `<` keeps the first minimum, matching `Iterator::min_by`.
            if dist.total_cmp(&best).is_lt() {
                nearest = c;
                best = dist;
            }
        }
        accs[nearest].push(&x, 1.0);
    }
    MixtureModel {
        arel: arel.to_vec(),
        components: finish_components(&accs),
    }
}

/// Converts accumulators into components with safe fallbacks for
/// degenerate (empty / single-point) cores.
fn finish_components(accs: &[CovarianceAccumulator]) -> Vec<Component> {
    let d = accs.first().map_or(0, |a| a.dim());
    // audit: order-exact — ascending component index over the merged
    // accumulators, the same order on every path.
    let total: f64 = accs.iter().map(|a| a.total_weight()).sum::<f64>().max(1.0);
    accs.iter()
        .map(|acc| {
            let mean = acc.mean().unwrap_or_else(|| vec![0.5; d]);
            let mut cov = acc.covariance_ml().unwrap_or_else(|| Matrix::identity(d));
            cov.add_ridge(1e-9);
            let weight = (acc.total_weight() / total).max(1e-12);
            Component { mean, cov, weight }
        })
        .collect()
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// The fitted mixture.
    pub model: MixtureModel,
    /// Log-likelihood after each iteration.
    pub loglik_history: Vec<f64>,
    /// Iterations run before convergence or the cap.
    pub iterations: usize,
}

/// Points per E-step block of [`em_fit`]: big enough to amortize
/// dispatch, the per-block accumulator allocations, and the row-outer
/// [`CovarianceAccumulator::push_block`] setup, small enough that the
/// block's density/solve scratch stays cache-resident. Also the
/// work-unit granularity of the parallel E-step — see [`estep_blocked`].
const EM_BLOCK_POINTS: usize = 512;

/// One E-step over the pre-projected sub-matrix `proj` (row-major,
/// `arel.len()` values per point): responsibility-weighted covariance
/// accumulators per component, plus the total log-likelihood under the
/// evaluator's model.
///
/// The scan is blocked at `EM_BLOCK_POINTS` (512-point) granularity
/// and runs on the engine worker pool
/// ([`p3c_mapreduce::parallel_for_blocks_with`]): each worker owns
/// private density/solve scratch, produces one `(accumulators, loglik)`
/// partial per claimed block, and the partials merge in **fixed
/// block-index order**. The block structure and merge order are
/// identical for every `threads` value — including the inline
/// `threads == 1` path — so the result is bit-identical across thread
/// counts (DESIGN.md §11).
pub fn estep_blocked(
    eval: &DensityEvaluator,
    proj: &[f64],
    threads: usize,
) -> (Vec<CovarianceAccumulator>, f64) {
    estep_blocked_with_lanes(eval, proj, threads, lanes_enabled())
}

/// [`estep_blocked`] with the kernel family chosen explicitly: `lanes`
/// selects the 8-wide fused kernel
/// ([`DensityEvaluator::responsibilities_block_lanes`]) or the scalar
/// blocked kernel ([`DensityEvaluator::log_densities_block`] +
/// [`softmax_in_place`]). The two families are bit-identical
/// (DESIGN.md §13); this entry point exists so tests and benchmarks
/// can pin a family regardless of `P3C_LANES`.
pub fn estep_blocked_with_lanes(
    eval: &DensityEvaluator,
    proj: &[f64],
    threads: usize,
    lanes: bool,
) -> (Vec<CovarianceAccumulator>, f64) {
    let k = eval.num_components();
    let d = eval.arel.len();
    let dd = d.max(1);
    let npts = proj.len() / dd;
    let num_blocks = npts.div_ceil(EM_BLOCK_POINTS);
    let partials = p3c_mapreduce::parallel_for_blocks_with(
        threads,
        num_blocks,
        // Per-worker scratch: the block's density/responsibility buffer
        // and the kernel scratch, reused across claimed blocks.
        || (Vec::with_capacity(EM_BLOCK_POINTS * k), EstepScratch::new()),
        |(dens, scratch), block| {
            let start = block * EM_BLOCK_POINTS * dd;
            let end = (start + EM_BLOCK_POINTS * dd).min(proj.len());
            let chunk = &proj[start..end];
            let mut accs: Vec<CovarianceAccumulator> =
                (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
            let loglik = if lanes {
                eval.responsibilities_block_lanes(chunk, dens, scratch)
            } else {
                let mut ll = 0.0;
                eval.log_densities_block(chunk, dens, &mut scratch.y);
                for resp in dens.chunks_exact_mut(k.max(1)) {
                    ll += softmax_in_place(resp);
                }
                ll
            };
            // Component-outer accumulation: each accumulator receives
            // its pushes in block point order — the same per-entry add
            // sequence as a point-outer loop (bit-identical). The
            // significant points are gathered densely so the whole
            // block folds in with one `push_block` per component,
            // whose row-outer scatter update keeps each triangular
            // row's partial sums in registers across the block.
            let block_pts = chunk.len() / dd;
            for (c, acc) in accs.iter_mut().enumerate() {
                scratch.ws.clear();
                for resp in dens.chunks_exact(k.max(1)) {
                    let r = resp[c];
                    if r > 1e-12 {
                        scratch.ws.push(r);
                    }
                }
                if d > 0 && scratch.ws.len() == block_pts {
                    // Every point significant (the common case): fold
                    // the chunk in directly, no gather copy.
                    acc.push_block(chunk, &scratch.ws);
                } else {
                    scratch.xs.clear();
                    for (x, resp) in chunk.chunks_exact(dd).zip(dens.chunks_exact(k.max(1))) {
                        if resp[c] > 1e-12 {
                            scratch.xs.extend_from_slice(&x[..d]);
                        }
                    }
                    acc.push_block(&scratch.xs, &scratch.ws);
                }
            }
            (accs, loglik)
        },
    );
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    let mut loglik = 0.0;
    for (block_accs, block_loglik) in &partials {
        for (total, part) in accs.iter_mut().zip(block_accs) {
            total.merge(part);
        }
        loglik += block_loglik;
    }
    (accs, loglik)
}

/// Rows per projection-scan block: pure data movement, so blocks are
/// large to amortize pool dispatch against memory bandwidth.
const PROJECT_BLOCK_ROWS: usize = 1024;

/// Gathers every row's `arel` attributes into one contiguous row-major
/// sub-matrix, blocked at `PROJECT_BLOCK_ROWS` granularity on the
/// engine worker pool. Each block produces its slice of the sub-matrix
/// and the slices concatenate in block-index order — pure copying, so
/// the output is byte-identical for every `threads` value.
pub fn project_rows_blocked(rows: &[&[f64]], arel: &[usize], threads: usize) -> Vec<f64> {
    let d = arel.len();
    let num_blocks = rows.len().div_ceil(PROJECT_BLOCK_ROWS);
    let blocks = p3c_mapreduce::parallel_for_blocks(threads, num_blocks, |b| {
        let start = b * PROJECT_BLOCK_ROWS;
        let end = (start + PROJECT_BLOCK_ROWS).min(rows.len());
        let mut chunk = Vec::with_capacity((end - start) * d);
        for row in &rows[start..end] {
            chunk.extend(arel.iter().map(|&a| row[a]));
        }
        chunk
    });
    let mut proj = Vec::with_capacity(rows.len() * d);
    for chunk in blocks {
        proj.extend(chunk);
    }
    proj
}

/// Runs EM to convergence (or `max_iters`) on the calling thread; the
/// E-step uses the same blocked kernel as [`em_fit_threads`] with one
/// worker, so results are bit-identical to every thread count.
pub fn em_fit(init: MixtureModel, rows: &[&[f64]], max_iters: usize, tol: f64) -> EmFit {
    em_fit_threads(init, rows, max_iters, tol, 1)
}

/// Runs EM to convergence (or `max_iters`) with the E-step
/// block-parallelized over `threads` workers ([`estep_blocked`]).
///
/// Iteration semantics: each iteration evaluates the current model's
/// log-likelihood (E-step), records it in `loglik_history`, and — only
/// if not converged — applies the M-step. On convergence the loop stops
/// *before* the redundant M-step, so the returned model is exactly the
/// one whose log-likelihood is `loglik_history.last()`. `iterations`
/// equals `loglik_history.len()`; on budget exhaustion the model has
/// had `max_iters` M-steps and the history records the likelihood
/// before each of them.
pub fn em_fit_threads(
    init: MixtureModel,
    rows: &[&[f64]],
    max_iters: usize,
    tol: f64,
    threads: usize,
) -> EmFit {
    let mut model = init;
    // Project every row into A_rel once; the EM iterations then scan this
    // contiguous sub-matrix instead of re-gathering per row per iteration.
    let proj = project_rows_blocked(rows, &model.arel, threads);
    let mut history: Vec<f64> = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let eval = model.evaluator();
        let (accs, loglik) = estep_blocked(&eval, &proj, threads);
        let converged = history
            .last()
            .map(|&prev| (loglik - prev).abs() <= tol * prev.abs().max(1.0))
            .unwrap_or(false);
        history.push(loglik);
        if converged {
            break;
        }
        model = MixtureModel {
            arel: model.arel,
            components: finish_components(&accs),
        };
    }
    EmFit {
        model,
        loglik_history: history,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interval, Signature};

    fn two_blob_rows() -> Vec<Vec<f64>> {
        // Blob A around (0.2, 0.2), blob B around (0.8, 0.8), in 2D.
        let mut rows = Vec::new();
        for i in 0..100 {
            let t = (i as f64) / 100.0 * 0.08;
            rows.push(vec![0.16 + t, 0.24 - t]);
            rows.push(vec![0.76 + t, 0.84 - t]);
        }
        rows
    }

    fn cores_for_blobs() -> Vec<ClusterCore> {
        let a = Signature::new(vec![Interval::new(0, 1, 2, 10), Interval::new(1, 1, 2, 10)]);
        let b = Signature::new(vec![Interval::new(0, 7, 8, 10), Interval::new(1, 7, 8, 10)]);
        vec![
            ClusterCore {
                signature: a,
                support: 100.0,
                expected: 1.0,
            },
            ClusterCore {
                signature: b,
                support: 100.0,
                expected: 1.0,
            },
        ]
    }

    #[test]
    fn initialization_centers_on_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        assert_eq!(model.components.len(), 2);
        let m0 = &model.components[0].mean;
        let m1 = &model.components[1].mean;
        assert!((m0[0] - 0.2).abs() < 0.05, "mean0 {m0:?}");
        assert!((m1[0] - 0.8).abs() < 0.05, "mean1 {m1:?}");
        let wsum: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn em_improves_loglik_monotonically() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 8, 0.0);
        for w in fit.loglik_history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "loglik decreased: {:?}",
                fit.loglik_history
            );
        }
    }

    #[test]
    fn converged_model_loglik_matches_history_tail() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 50, 1e-6);
        assert!(fit.iterations < 50, "should converge before the budget");
        assert_eq!(fit.iterations, fit.loglik_history.len());
        // On convergence the loop stops before the redundant M-step, so
        // the returned model is exactly the one whose log-likelihood was
        // recorded last; re-evaluating it reproduces the tail bit-for-bit.
        let mut proj = Vec::new();
        for row in &rows {
            proj.extend(fit.model.arel.iter().map(|&a| row[a]));
        }
        let (_, loglik) = estep_blocked(&fit.model.evaluator(), &proj, 1);
        assert_eq!(
            loglik.to_bits(),
            fit.loglik_history.last().unwrap().to_bits()
        );
    }

    #[test]
    fn hard_assignment_separates_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 10, 1e-6);
        let eval = fit.model.evaluator();
        let a = eval.assign(&[0.2, 0.2]);
        let b = eval.assign(&[0.8, 0.8]);
        assert_ne!(a, b);
        // Every even row (blob A) goes with `a`, odd with `b`.
        for (i, row) in rows.iter().enumerate() {
            let got = eval.assign(row);
            if i % 2 == 0 {
                assert_eq!(got, a, "row {i}");
            } else {
                assert_eq!(got, b, "row {i}");
            }
        }
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let eval = model.evaluator();
        let mut resp = Vec::new();
        for row in rows.iter().take(10) {
            let x = eval.project(row);
            eval.responsibilities(&x, &mut resp);
            let s: f64 = resp.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(resp.iter().all(|&r| (0.0..=1.0).contains(&r)));
        }
    }

    #[test]
    fn projection_uses_arel_only() {
        let model = MixtureModel {
            arel: vec![1, 3],
            components: vec![Component {
                mean: vec![0.5, 0.5],
                cov: Matrix::identity(2),
                weight: 1.0,
            }],
        };
        let eval = model.evaluator();
        assert_eq!(eval.project(&[9.0, 0.1, 9.0, 0.7]), vec![0.1, 0.7]);
    }

    #[test]
    fn lane_estep_is_bit_identical_to_scalar() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let eval = model.evaluator();
        // Cover sub-lane-group, exact-group and ragged-group sizes.
        for npts in [1usize, 5, 8, 9, 24, 200] {
            let proj: Vec<f64> = rows[..npts]
                .iter()
                .flat_map(|r| r.iter().copied())
                .collect();
            let (acc_s, ll_s) = estep_blocked_with_lanes(&eval, &proj, 1, false);
            let (acc_l, ll_l) = estep_blocked_with_lanes(&eval, &proj, 1, true);
            assert_eq!(ll_l.to_bits(), ll_s.to_bits(), "loglik at npts={npts}");
            for (a, b) in acc_l.iter().zip(&acc_s) {
                assert_eq!(a.total_weight().to_bits(), b.total_weight().to_bits());
                let ma: Vec<u64> = a
                    .mean()
                    .unwrap_or_default()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let mb: Vec<u64> = b
                    .mean()
                    .unwrap_or_default()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(ma, mb, "means at npts={npts}");
            }
        }
    }

    #[test]
    fn lane_responsibilities_match_scalar_softmax() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let eval = model.evaluator();
        let k = eval.num_components();
        for npts in [3usize, 8, 11, 40] {
            let proj: Vec<f64> = rows[..npts]
                .iter()
                .flat_map(|r| r.iter().copied())
                .collect();
            let mut dens = Vec::new();
            let mut y = Vec::new();
            eval.log_densities_block(&proj, &mut dens, &mut y);
            let mut ll_s = 0.0;
            for resp in dens.chunks_exact_mut(k) {
                ll_s += softmax_in_place(resp);
            }
            let mut out = Vec::new();
            let mut scratch = EstepScratch::new();
            let ll_l = eval.responsibilities_block_lanes(&proj, &mut out, &mut scratch);
            assert_eq!(ll_l.to_bits(), ll_s.to_bits(), "loglik at npts={npts}");
            let bits_s: Vec<u64> = dens.iter().map(|v| v.to_bits()).collect();
            let bits_l: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_l, bits_s, "responsibilities at npts={npts}");
        }
    }

    #[test]
    fn degenerate_single_point_core_survives() {
        let data = [vec![0.5, 0.5], vec![0.9, 0.9]];
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let core = ClusterCore {
            signature: Signature::new(vec![Interval::new(0, 4, 4, 10)]),
            support: 1.0,
            expected: 0.1,
        };
        let model = initialize_from_cores(&[core], &rows, &[0, 1]);
        // Should not panic, and covariance must be factorizable.
        let eval = model.evaluator();
        assert_eq!(eval.num_components(), 1);
        let _ = eval.assign(&[0.5, 0.5]);
    }
}
