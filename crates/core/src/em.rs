//! Gaussian-mixture EM refinement of cluster cores (paper Sections 3.2.2
//! and 5.4).
//!
//! EM runs in the *relevant subspace* `A_rel` (Equation 3) — the union of
//! all attributes relevant to at least one cluster core. Initialization
//! follows the paper's two rounds: first means/covariances from the core
//! support sets only, then the remaining points are attached to their
//! Mahalanobis-nearest core and the statistics recomputed.

use crate::cores::ClusterCore;
use p3c_linalg::{Cholesky, CovarianceAccumulator, Matrix};

/// One Gaussian component in `A_rel` coordinates.
#[derive(Debug, Clone)]
pub struct Component {
    pub mean: Vec<f64>,
    pub cov: Matrix,
    /// Mixture weight π_k (sums to 1 across components).
    pub weight: f64,
}

/// A fitted Gaussian mixture over the relevant subspace.
#[derive(Debug, Clone)]
pub struct MixtureModel {
    /// The relevant attributes, in ascending order; component coordinates
    /// index into this list.
    pub arel: Vec<usize>,
    pub components: Vec<Component>,
}

/// Precomputed per-component state for fast density evaluation.
pub struct DensityEvaluator {
    comps: Vec<(Vec<f64>, Cholesky, f64 /* log(π) − ½log|2πΣ| */)>,
    arel: Vec<usize>,
}

impl MixtureModel {
    /// Builds the evaluator (factorizes every covariance once).
    pub fn evaluator(&self) -> DensityEvaluator {
        let d = self.arel.len() as f64;
        let comps = self
            .components
            .iter()
            .map(|c| {
                let chol = Cholesky::new_regularized(&c.cov).expect("covariance not regularizable");
                let log_norm = c.weight.max(1e-300).ln()
                    - 0.5 * (d * (2.0 * std::f64::consts::PI).ln() + chol.log_det());
                (c.mean.clone(), chol, log_norm)
            })
            .collect();
        DensityEvaluator {
            comps,
            arel: self.arel.clone(),
        }
    }
}

impl DensityEvaluator {
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Projects a full-dimensional row into `A_rel` coordinates.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        self.arel.iter().map(|&a| row[a]).collect()
    }

    /// Projects into a caller-owned buffer (the allocation-free form of
    /// [`DensityEvaluator::project`]).
    pub fn project_into(&self, row: &[f64], x_sub: &mut Vec<f64>) {
        x_sub.clear();
        x_sub.extend(self.arel.iter().map(|&a| row[a]));
    }

    /// Log of `π_k · N(x | μ_k, Σ_k)` for the projected point.
    pub fn log_weighted_density(&self, k: usize, x_sub: &[f64]) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.log_weighted_density_scratch(k, x_sub, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::log_weighted_density`]: the
    /// offset and forward substitution are fused over the caller-owned
    /// scratch buffer, bit-identical to the allocating path.
    pub fn log_weighted_density_scratch(&self, k: usize, x_sub: &[f64], y: &mut Vec<f64>) -> f64 {
        let (mean, chol, log_norm) = &self.comps[k];
        log_norm - 0.5 * chol.mahalanobis_sq_scratch(x_sub, mean, y)
    }

    /// Squared Mahalanobis distance of the projected point to component k.
    pub fn mahalanobis_sq(&self, k: usize, x_sub: &[f64]) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.mahalanobis_sq_scratch(k, x_sub, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::mahalanobis_sq`].
    pub fn mahalanobis_sq_scratch(&self, k: usize, x_sub: &[f64], y: &mut Vec<f64>) -> f64 {
        let (mean, chol, _) = &self.comps[k];
        chol.mahalanobis_sq_scratch(x_sub, mean, y)
    }

    /// Responsibilities γ_k(x) (softmax over components) and the point's
    /// log-likelihood contribution.
    pub fn responsibilities(&self, x_sub: &[f64], out: &mut Vec<f64>) -> f64 {
        let mut y = Vec::with_capacity(x_sub.len());
        self.responsibilities_scratch(x_sub, out, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::responsibilities`]: `y` is the
    /// forward-substitution scratch, reused across calls.
    pub fn responsibilities_scratch(
        &self,
        x_sub: &[f64],
        out: &mut Vec<f64>,
        y: &mut Vec<f64>,
    ) -> f64 {
        // One disjoint scratch region per component: the k forward
        // substitutions are independent, and separate regions let the
        // CPU overlap their latency chains instead of serializing on a
        // shared buffer. Per-component operation order is unchanged, so
        // densities are bit-identical to the shared-scratch path.
        let d = x_sub.len().max(1);
        y.clear();
        y.resize(self.comps.len() * d, 0.0);
        out.clear();
        out.extend(self.comps.iter().zip(y.chunks_exact_mut(d)).map(
            |((mean, chol, log_norm), ybuf)| {
                log_norm - 0.5 * chol.mahalanobis_sq_slice(x_sub, mean, &mut ybuf[..x_sub.len()])
            },
        ));
        // audit: order-exact — f64::max is associative and commutative
        // (no NaNs on this path), so fold order cannot change the result.
        let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in out.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        max + sum.ln()
    }

    /// Log weighted densities for a contiguous block of projected
    /// points (`arel.len()` values per point, row-major):
    /// `out[p * k + c] = log(pi_c N(x_p | mu_c, Sigma_c))`.
    ///
    /// Component-outer, point-inner iteration keeps each factor's
    /// triangular matrix hot and gives every point in the block its own
    /// scratch region in `y`, so the CPU can overlap the independent
    /// forward-substitution chains instead of serializing on one
    /// buffer. Each (point, component) density runs exactly the
    /// per-point operation sequence, so values are bit-identical to
    /// [`DensityEvaluator::log_weighted_density`].
    pub fn log_densities_block(&self, block: &[f64], out: &mut Vec<f64>, y: &mut Vec<f64>) {
        let d = self.arel.len();
        let k = self.comps.len();
        if d == 0 {
            out.clear();
            return;
        }
        let npts = block.len() / d;
        assert_eq!(
            block.len(),
            npts * d,
            "block is not a whole number of points"
        );
        out.clear();
        out.resize(npts * k, 0.0);
        y.clear();
        y.resize(npts * d, 0.0);
        for (c, (mean, chol, log_norm)) in self.comps.iter().enumerate() {
            for (p, (x, ybuf)) in block.chunks_exact(d).zip(y.chunks_exact_mut(d)).enumerate() {
                out[p * k + c] = log_norm - 0.5 * chol.mahalanobis_sq_slice(x, mean, ybuf);
            }
        }
    }

    /// Hard assignment: the component maximizing the weighted density.
    pub fn assign(&self, row: &[f64]) -> usize {
        let mut x = Vec::with_capacity(self.arel.len());
        let mut y = Vec::with_capacity(self.arel.len());
        self.assign_scratch(row, &mut x, &mut y)
    }

    /// Allocation-free [`DensityEvaluator::assign`]: `x` receives the
    /// projected point, `y` is the forward-substitution scratch.
    pub fn assign_scratch(&self, row: &[f64], x: &mut Vec<f64>, y: &mut Vec<f64>) -> usize {
        self.project_into(row, x);
        let mut best = 0;
        let mut best_density = f64::NEG_INFINITY;
        for k in 0..self.comps.len() {
            let v = self.log_weighted_density_scratch(k, x, y);
            // `>=` keeps the last maximum, matching `Iterator::max_by`.
            if v.total_cmp(&best_density).is_ge() {
                best = k;
                best_density = v;
            }
        }
        best
    }
}

/// Converts one point's `k` log weighted densities (e.g. one row of
/// [`DensityEvaluator::log_densities_block`] output) into
/// responsibilities in place, returning the point's log-likelihood
/// contribution. The operation sequence is exactly the second half of
/// [`DensityEvaluator::responsibilities_scratch`], so results are
/// bit-identical.
pub fn softmax_in_place(logs: &mut [f64]) -> f64 {
    // audit: order-exact — f64::max is associative and commutative
    // (no NaNs on this path), so fold order cannot change the result.
    let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in logs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logs.iter_mut() {
        *v /= sum;
    }
    max + sum.ln()
}

/// Builds the initial mixture from cluster cores: the paper's two-round
/// initialization (support sets only, then plus nearest-core leftovers).
pub fn initialize_from_cores(
    cores: &[ClusterCore],
    rows: &[&[f64]],
    arel: &[usize],
) -> MixtureModel {
    assert!(
        !cores.is_empty(),
        "EM initialization needs at least one core"
    );
    let k = cores.len();
    let d = arel.len();

    // Round 1: accumulate over core support sets.
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    let mut uncovered: Vec<usize> = Vec::new();
    let mut x = Vec::with_capacity(d);
    for (i, row) in rows.iter().enumerate() {
        let mut in_any = false;
        for (c, core) in cores.iter().enumerate() {
            if core.signature.contains(row) {
                x.clear();
                x.extend(arel.iter().map(|&a| row[a]));
                accs[c].push(&x, 1.0);
                in_any = true;
            }
        }
        if !in_any {
            uncovered.push(i);
        }
    }
    let round1 = finish_components(&accs);

    // Round 2: attach uncovered points to the Mahalanobis-nearest core.
    let eval = MixtureModel {
        arel: arel.to_vec(),
        components: round1,
    }
    .evaluator();
    let mut y = Vec::with_capacity(d);
    for &i in &uncovered {
        eval.project_into(rows[i], &mut x);
        let mut nearest = 0;
        let mut best = f64::INFINITY;
        for c in 0..k {
            let dist = eval.mahalanobis_sq_scratch(c, &x, &mut y);
            // Strict `<` keeps the first minimum, matching `Iterator::min_by`.
            if dist.total_cmp(&best).is_lt() {
                nearest = c;
                best = dist;
            }
        }
        accs[nearest].push(&x, 1.0);
    }
    MixtureModel {
        arel: arel.to_vec(),
        components: finish_components(&accs),
    }
}

/// Converts accumulators into components with safe fallbacks for
/// degenerate (empty / single-point) cores.
fn finish_components(accs: &[CovarianceAccumulator]) -> Vec<Component> {
    let d = accs.first().map_or(0, |a| a.dim());
    let total: f64 = accs.iter().map(|a| a.total_weight()).sum::<f64>().max(1.0);
    accs.iter()
        .map(|acc| {
            let mean = acc.mean().unwrap_or_else(|| vec![0.5; d]);
            let mut cov = acc.covariance_ml().unwrap_or_else(|| Matrix::identity(d));
            cov.add_ridge(1e-9);
            let weight = (acc.total_weight() / total).max(1e-12);
            Component { mean, cov, weight }
        })
        .collect()
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    pub model: MixtureModel,
    /// Log-likelihood after each iteration.
    pub loglik_history: Vec<f64>,
    pub iterations: usize,
}

/// Points per E-step block of [`em_fit`]: big enough to amortize
/// dispatch and expose cross-point instruction parallelism, small
/// enough that the block's solve scratch stays cache-resident. Also the
/// work-unit granularity of the parallel E-step — see [`estep_blocked`].
const EM_BLOCK_POINTS: usize = 128;

/// One E-step over the pre-projected sub-matrix `proj` (row-major,
/// `arel.len()` values per point): responsibility-weighted covariance
/// accumulators per component, plus the total log-likelihood under the
/// evaluator's model.
///
/// The scan is blocked at `EM_BLOCK_POINTS` (128-point) granularity
/// and runs on
/// the engine worker pool
/// ([`p3c_mapreduce::parallel_for_blocks_with`]): each worker owns
/// private density/solve scratch, produces one `(accumulators, loglik)`
/// partial per claimed block, and the partials merge in **fixed
/// block-index order**. The block structure and merge order are
/// identical for every `threads` value — including the inline
/// `threads == 1` path — so the result is bit-identical across thread
/// counts (DESIGN.md §11).
pub fn estep_blocked(
    eval: &DensityEvaluator,
    proj: &[f64],
    threads: usize,
) -> (Vec<CovarianceAccumulator>, f64) {
    let k = eval.num_components();
    let d = eval.arel.len();
    let dd = d.max(1);
    let npts = proj.len() / dd;
    let num_blocks = npts.div_ceil(EM_BLOCK_POINTS);
    let partials = p3c_mapreduce::parallel_for_blocks_with(
        threads,
        num_blocks,
        // Per-worker scratch: the block's log-densities and the fused
        // forward-substitution buffer, reused across claimed blocks.
        || {
            (
                Vec::with_capacity(EM_BLOCK_POINTS * k),
                Vec::with_capacity(EM_BLOCK_POINTS * dd),
            )
        },
        |(dens, y), block| {
            let start = block * EM_BLOCK_POINTS * dd;
            let end = (start + EM_BLOCK_POINTS * dd).min(proj.len());
            let chunk = &proj[start..end];
            let mut accs: Vec<CovarianceAccumulator> =
                (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
            let mut loglik = 0.0;
            eval.log_densities_block(chunk, dens, y);
            for resp in dens.chunks_exact_mut(k.max(1)) {
                loglik += softmax_in_place(resp);
            }
            // Component-outer accumulation: each accumulator receives
            // its pushes in block point order — the same per-entry add
            // sequence as a point-outer loop (bit-identical) — while
            // its moment buffers stay hot across the whole block.
            for (c, acc) in accs.iter_mut().enumerate() {
                for (x, resp) in chunk.chunks_exact(dd).zip(dens.chunks_exact(k.max(1))) {
                    let r = resp[c];
                    if r > 1e-12 {
                        acc.push(x, r);
                    }
                }
            }
            (accs, loglik)
        },
    );
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    let mut loglik = 0.0;
    for (block_accs, block_loglik) in &partials {
        for (total, part) in accs.iter_mut().zip(block_accs) {
            total.merge(part);
        }
        loglik += block_loglik;
    }
    (accs, loglik)
}

/// Rows per projection-scan block: pure data movement, so blocks are
/// large to amortize pool dispatch against memory bandwidth.
const PROJECT_BLOCK_ROWS: usize = 1024;

/// Gathers every row's `arel` attributes into one contiguous row-major
/// sub-matrix, blocked at `PROJECT_BLOCK_ROWS` granularity on the
/// engine worker pool. Each block produces its slice of the sub-matrix
/// and the slices concatenate in block-index order — pure copying, so
/// the output is byte-identical for every `threads` value.
pub fn project_rows_blocked(rows: &[&[f64]], arel: &[usize], threads: usize) -> Vec<f64> {
    let d = arel.len();
    let num_blocks = rows.len().div_ceil(PROJECT_BLOCK_ROWS);
    let blocks = p3c_mapreduce::parallel_for_blocks(threads, num_blocks, |b| {
        let start = b * PROJECT_BLOCK_ROWS;
        let end = (start + PROJECT_BLOCK_ROWS).min(rows.len());
        let mut chunk = Vec::with_capacity((end - start) * d);
        for row in &rows[start..end] {
            chunk.extend(arel.iter().map(|&a| row[a]));
        }
        chunk
    });
    let mut proj = Vec::with_capacity(rows.len() * d);
    for chunk in blocks {
        proj.extend(chunk);
    }
    proj
}

/// Runs EM to convergence (or `max_iters`) on the calling thread; the
/// E-step uses the same blocked kernel as [`em_fit_threads`] with one
/// worker, so results are bit-identical to every thread count.
pub fn em_fit(init: MixtureModel, rows: &[&[f64]], max_iters: usize, tol: f64) -> EmFit {
    em_fit_threads(init, rows, max_iters, tol, 1)
}

/// Runs EM to convergence (or `max_iters`) with the E-step
/// block-parallelized over `threads` workers ([`estep_blocked`]).
///
/// Iteration semantics: each iteration evaluates the current model's
/// log-likelihood (E-step), records it in `loglik_history`, and — only
/// if not converged — applies the M-step. On convergence the loop stops
/// *before* the redundant M-step, so the returned model is exactly the
/// one whose log-likelihood is `loglik_history.last()`. `iterations`
/// equals `loglik_history.len()`; on budget exhaustion the model has
/// had `max_iters` M-steps and the history records the likelihood
/// before each of them.
pub fn em_fit_threads(
    init: MixtureModel,
    rows: &[&[f64]],
    max_iters: usize,
    tol: f64,
    threads: usize,
) -> EmFit {
    let mut model = init;
    // Project every row into A_rel once; the EM iterations then scan this
    // contiguous sub-matrix instead of re-gathering per row per iteration.
    let proj = project_rows_blocked(rows, &model.arel, threads);
    let mut history: Vec<f64> = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let eval = model.evaluator();
        let (accs, loglik) = estep_blocked(&eval, &proj, threads);
        let converged = history
            .last()
            .map(|&prev| (loglik - prev).abs() <= tol * prev.abs().max(1.0))
            .unwrap_or(false);
        history.push(loglik);
        if converged {
            break;
        }
        model = MixtureModel {
            arel: model.arel,
            components: finish_components(&accs),
        };
    }
    EmFit {
        model,
        loglik_history: history,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interval, Signature};

    fn two_blob_rows() -> Vec<Vec<f64>> {
        // Blob A around (0.2, 0.2), blob B around (0.8, 0.8), in 2D.
        let mut rows = Vec::new();
        for i in 0..100 {
            let t = (i as f64) / 100.0 * 0.08;
            rows.push(vec![0.16 + t, 0.24 - t]);
            rows.push(vec![0.76 + t, 0.84 - t]);
        }
        rows
    }

    fn cores_for_blobs() -> Vec<ClusterCore> {
        let a = Signature::new(vec![Interval::new(0, 1, 2, 10), Interval::new(1, 1, 2, 10)]);
        let b = Signature::new(vec![Interval::new(0, 7, 8, 10), Interval::new(1, 7, 8, 10)]);
        vec![
            ClusterCore {
                signature: a,
                support: 100.0,
                expected: 1.0,
            },
            ClusterCore {
                signature: b,
                support: 100.0,
                expected: 1.0,
            },
        ]
    }

    #[test]
    fn initialization_centers_on_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        assert_eq!(model.components.len(), 2);
        let m0 = &model.components[0].mean;
        let m1 = &model.components[1].mean;
        assert!((m0[0] - 0.2).abs() < 0.05, "mean0 {m0:?}");
        assert!((m1[0] - 0.8).abs() < 0.05, "mean1 {m1:?}");
        let wsum: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn em_improves_loglik_monotonically() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 8, 0.0);
        for w in fit.loglik_history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "loglik decreased: {:?}",
                fit.loglik_history
            );
        }
    }

    #[test]
    fn converged_model_loglik_matches_history_tail() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 50, 1e-6);
        assert!(fit.iterations < 50, "should converge before the budget");
        assert_eq!(fit.iterations, fit.loglik_history.len());
        // On convergence the loop stops before the redundant M-step, so
        // the returned model is exactly the one whose log-likelihood was
        // recorded last; re-evaluating it reproduces the tail bit-for-bit.
        let mut proj = Vec::new();
        for row in &rows {
            proj.extend(fit.model.arel.iter().map(|&a| row[a]));
        }
        let (_, loglik) = estep_blocked(&fit.model.evaluator(), &proj, 1);
        assert_eq!(
            loglik.to_bits(),
            fit.loglik_history.last().unwrap().to_bits()
        );
    }

    #[test]
    fn hard_assignment_separates_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 10, 1e-6);
        let eval = fit.model.evaluator();
        let a = eval.assign(&[0.2, 0.2]);
        let b = eval.assign(&[0.8, 0.8]);
        assert_ne!(a, b);
        // Every even row (blob A) goes with `a`, odd with `b`.
        for (i, row) in rows.iter().enumerate() {
            let got = eval.assign(row);
            if i % 2 == 0 {
                assert_eq!(got, a, "row {i}");
            } else {
                assert_eq!(got, b, "row {i}");
            }
        }
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let eval = model.evaluator();
        let mut resp = Vec::new();
        for row in rows.iter().take(10) {
            let x = eval.project(row);
            eval.responsibilities(&x, &mut resp);
            let s: f64 = resp.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(resp.iter().all(|&r| (0.0..=1.0).contains(&r)));
        }
    }

    #[test]
    fn projection_uses_arel_only() {
        let model = MixtureModel {
            arel: vec![1, 3],
            components: vec![Component {
                mean: vec![0.5, 0.5],
                cov: Matrix::identity(2),
                weight: 1.0,
            }],
        };
        let eval = model.evaluator();
        assert_eq!(eval.project(&[9.0, 0.1, 9.0, 0.7]), vec![0.1, 0.7]);
    }

    #[test]
    fn degenerate_single_point_core_survives() {
        let data = [vec![0.5, 0.5], vec![0.9, 0.9]];
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let core = ClusterCore {
            signature: Signature::new(vec![Interval::new(0, 4, 4, 10)]),
            support: 1.0,
            expected: 0.1,
        };
        let model = initialize_from_cores(&[core], &rows, &[0, 1]);
        // Should not panic, and covariance must be factorizable.
        let eval = model.evaluator();
        assert_eq!(eval.num_components(), 1);
        let _ = eval.assign(&[0.5, 0.5]);
    }
}
