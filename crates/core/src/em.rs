//! Gaussian-mixture EM refinement of cluster cores (paper Sections 3.2.2
//! and 5.4).
//!
//! EM runs in the *relevant subspace* `A_rel` (Equation 3) — the union of
//! all attributes relevant to at least one cluster core. Initialization
//! follows the paper's two rounds: first means/covariances from the core
//! support sets only, then the remaining points are attached to their
//! Mahalanobis-nearest core and the statistics recomputed.

use crate::cores::ClusterCore;
use p3c_linalg::{Cholesky, CovarianceAccumulator, Matrix};

/// One Gaussian component in `A_rel` coordinates.
#[derive(Debug, Clone)]
pub struct Component {
    pub mean: Vec<f64>,
    pub cov: Matrix,
    /// Mixture weight π_k (sums to 1 across components).
    pub weight: f64,
}

/// A fitted Gaussian mixture over the relevant subspace.
#[derive(Debug, Clone)]
pub struct MixtureModel {
    /// The relevant attributes, in ascending order; component coordinates
    /// index into this list.
    pub arel: Vec<usize>,
    pub components: Vec<Component>,
}

/// Precomputed per-component state for fast density evaluation.
pub struct DensityEvaluator {
    comps: Vec<(Vec<f64>, Cholesky, f64 /* log(π) − ½log|2πΣ| */)>,
    arel: Vec<usize>,
}

impl MixtureModel {
    /// Builds the evaluator (factorizes every covariance once).
    pub fn evaluator(&self) -> DensityEvaluator {
        let d = self.arel.len() as f64;
        let comps = self
            .components
            .iter()
            .map(|c| {
                let chol = Cholesky::new_regularized(&c.cov)
                    .expect("covariance not regularizable");
                let log_norm = c.weight.max(1e-300).ln()
                    - 0.5 * (d * (2.0 * std::f64::consts::PI).ln() + chol.log_det());
                (c.mean.clone(), chol, log_norm)
            })
            .collect();
        DensityEvaluator { comps, arel: self.arel.clone() }
    }
}

impl DensityEvaluator {
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Projects a full-dimensional row into `A_rel` coordinates.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        self.arel.iter().map(|&a| row[a]).collect()
    }

    /// Log of `π_k · N(x | μ_k, Σ_k)` for the projected point.
    pub fn log_weighted_density(&self, k: usize, x_sub: &[f64]) -> f64 {
        let (mean, chol, log_norm) = &self.comps[k];
        let diff: Vec<f64> = x_sub.iter().zip(mean).map(|(a, b)| a - b).collect();
        log_norm - 0.5 * chol.mahalanobis_sq(&diff)
    }

    /// Squared Mahalanobis distance of the projected point to component k.
    pub fn mahalanobis_sq(&self, k: usize, x_sub: &[f64]) -> f64 {
        let (mean, chol, _) = &self.comps[k];
        let diff: Vec<f64> = x_sub.iter().zip(mean).map(|(a, b)| a - b).collect();
        chol.mahalanobis_sq(&diff)
    }

    /// Responsibilities γ_k(x) (softmax over components) and the point's
    /// log-likelihood contribution.
    pub fn responsibilities(&self, x_sub: &[f64], out: &mut Vec<f64>) -> f64 {
        out.clear();
        out.extend((0..self.comps.len()).map(|k| self.log_weighted_density(k, x_sub)));
        let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in out.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
        max + sum.ln()
    }

    /// Hard assignment: the component maximizing the weighted density.
    pub fn assign(&self, row: &[f64]) -> usize {
        let x = self.project(row);
        (0..self.comps.len())
            .max_by(|&a, &b| {
                self.log_weighted_density(a, &x)
                    .total_cmp(&self.log_weighted_density(b, &x))
            })
            .expect("at least one component")
    }
}

/// Builds the initial mixture from cluster cores: the paper's two-round
/// initialization (support sets only, then plus nearest-core leftovers).
pub fn initialize_from_cores(
    cores: &[ClusterCore],
    rows: &[&[f64]],
    arel: &[usize],
) -> MixtureModel {
    assert!(!cores.is_empty(), "EM initialization needs at least one core");
    let k = cores.len();
    let d = arel.len();
    let project = |row: &[f64]| -> Vec<f64> { arel.iter().map(|&a| row[a]).collect() };

    // Round 1: accumulate over core support sets.
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    let mut uncovered: Vec<usize> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let mut in_any = false;
        for (c, core) in cores.iter().enumerate() {
            if core.signature.contains(row) {
                accs[c].push(&project(row), 1.0);
                in_any = true;
            }
        }
        if !in_any {
            uncovered.push(i);
        }
    }
    let round1 = finish_components(&accs);

    // Round 2: attach uncovered points to the Mahalanobis-nearest core.
    let eval = MixtureModel { arel: arel.to_vec(), components: round1 }.evaluator();
    for &i in &uncovered {
        let x = eval.project(rows[i]);
        let nearest = (0..k)
            .min_by(|&a, &b| eval.mahalanobis_sq(a, &x).total_cmp(&eval.mahalanobis_sq(b, &x)))
            .expect("k >= 1");
        accs[nearest].push(&x, 1.0);
    }
    MixtureModel { arel: arel.to_vec(), components: finish_components(&accs) }
}

/// Converts accumulators into components with safe fallbacks for
/// degenerate (empty / single-point) cores.
fn finish_components(accs: &[CovarianceAccumulator]) -> Vec<Component> {
    let d = accs.first().map_or(0, |a| a.dim());
    let total: f64 = accs.iter().map(|a| a.total_weight()).sum::<f64>().max(1.0);
    accs.iter()
        .map(|acc| {
            let mean = acc.mean().unwrap_or_else(|| vec![0.5; d]);
            let mut cov = acc
                .covariance_ml()
                .unwrap_or_else(|| Matrix::identity(d));
            cov.add_ridge(1e-9);
            let weight = (acc.total_weight() / total).max(1e-12);
            Component { mean, cov, weight }
        })
        .collect()
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    pub model: MixtureModel,
    /// Log-likelihood after each iteration.
    pub loglik_history: Vec<f64>,
    pub iterations: usize,
}

/// Runs EM to convergence (or `max_iters`), serially.
pub fn em_fit(init: MixtureModel, rows: &[&[f64]], max_iters: usize, tol: f64) -> EmFit {
    let mut model = init;
    let k = model.components.len();
    let d = model.arel.len();
    let mut history = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let eval = model.evaluator();
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        let mut loglik = 0.0;
        let mut resp = Vec::with_capacity(k);
        for row in rows {
            let x = eval.project(row);
            loglik += eval.responsibilities(&x, &mut resp);
            for (c, &r) in resp.iter().enumerate() {
                if r > 1e-12 {
                    accs[c].push(&x, r);
                }
            }
        }
        model = MixtureModel { arel: model.arel, components: finish_components(&accs) };
        let converged = history
            .last()
            .map(|&prev: &f64| (loglik - prev).abs() <= tol * prev.abs().max(1.0))
            .unwrap_or(false);
        history.push(loglik);
        if converged {
            break;
        }
    }
    EmFit { model, loglik_history: history, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interval, Signature};

    fn two_blob_rows() -> Vec<Vec<f64>> {
        // Blob A around (0.2, 0.2), blob B around (0.8, 0.8), in 2D.
        let mut rows = Vec::new();
        for i in 0..100 {
            let t = (i as f64) / 100.0 * 0.08;
            rows.push(vec![0.16 + t, 0.24 - t]);
            rows.push(vec![0.76 + t, 0.84 - t]);
        }
        rows
    }

    fn cores_for_blobs() -> Vec<ClusterCore> {
        let a = Signature::new(vec![Interval::new(0, 1, 2, 10), Interval::new(1, 1, 2, 10)]);
        let b = Signature::new(vec![Interval::new(0, 7, 8, 10), Interval::new(1, 7, 8, 10)]);
        vec![
            ClusterCore { signature: a, support: 100.0, expected: 1.0 },
            ClusterCore { signature: b, support: 100.0, expected: 1.0 },
        ]
    }

    #[test]
    fn initialization_centers_on_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        assert_eq!(model.components.len(), 2);
        let m0 = &model.components[0].mean;
        let m1 = &model.components[1].mean;
        assert!((m0[0] - 0.2).abs() < 0.05, "mean0 {m0:?}");
        assert!((m1[0] - 0.8).abs() < 0.05, "mean1 {m1:?}");
        let wsum: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn em_improves_loglik_monotonically() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 8, 0.0);
        for w in fit.loglik_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "loglik decreased: {:?}", fit.loglik_history);
        }
    }

    #[test]
    fn hard_assignment_separates_blobs() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let init = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let fit = em_fit(init, &rows, 10, 1e-6);
        let eval = fit.model.evaluator();
        let a = eval.assign(&[0.2, 0.2]);
        let b = eval.assign(&[0.8, 0.8]);
        assert_ne!(a, b);
        // Every even row (blob A) goes with `a`, odd with `b`.
        for (i, row) in rows.iter().enumerate() {
            let got = eval.assign(row);
            if i % 2 == 0 {
                assert_eq!(got, a, "row {i}");
            } else {
                assert_eq!(got, b, "row {i}");
            }
        }
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let model = initialize_from_cores(&cores_for_blobs(), &rows, &[0, 1]);
        let eval = model.evaluator();
        let mut resp = Vec::new();
        for row in rows.iter().take(10) {
            let x = eval.project(row);
            eval.responsibilities(&x, &mut resp);
            let s: f64 = resp.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(resp.iter().all(|&r| (0.0..=1.0).contains(&r)));
        }
    }

    #[test]
    fn projection_uses_arel_only() {
        let model = MixtureModel {
            arel: vec![1, 3],
            components: vec![Component {
                mean: vec![0.5, 0.5],
                cov: Matrix::identity(2),
                weight: 1.0,
            }],
        };
        let eval = model.evaluator();
        assert_eq!(eval.project(&[9.0, 0.1, 9.0, 0.7]), vec![0.1, 0.7]);
    }

    #[test]
    fn degenerate_single_point_core_survives() {
        let data = [vec![0.5, 0.5], vec![0.9, 0.9]];
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let core = ClusterCore {
            signature: Signature::new(vec![Interval::new(0, 4, 4, 10)]),
            support: 1.0,
            expected: 0.1,
        };
        let model = initialize_from_cores(&[core], &rows, &[0, 1]);
        // Should not panic, and covariance must be factorizable.
        let eval = model.evaluator();
        assert_eq!(eval.num_components(), 1);
        let _ = eval.assign(&[0.5, 0.5]);
    }
}
