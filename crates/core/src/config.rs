//! Algorithm parameters, with the paper's experimental settings as
//! constructible presets.

use p3c_stats::BinRule;
use serde::{Deserialize, Serialize};

/// Which histogram bin-count rule to use (Section 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinRuleChoice {
    /// Sturges — the original P3C choice; oversmooths on large data.
    Sturges,
    /// Freedman–Diaconis with the paper's IQR = 1/2 simplification —
    /// the P3C+ choice.
    FreedmanDiaconis,
    /// Freedman–Diaconis with the *exact* per-attribute IQR — the variant
    /// the paper skips as "data and computationally intensive" (§4.1.1).
    /// An extension: the serial pipelines compute per-attribute quartiles
    /// directly; the MR pipelines add one quartile job (per-split
    /// quartiles, median-of-medians reducer). Bin counts are capped at 4×
    /// the simplified rule to keep near-constant attributes tractable.
    FreedmanDiaconisIqr,
}

impl BinRuleChoice {
    /// The data-independent rule used for *member-level* histograms
    /// (attribute inspection): exact-IQR falls back to the simplified FD
    /// rule there, where a conditional IQR would be circular.
    pub fn to_rule(self) -> BinRule {
        match self {
            BinRuleChoice::Sturges => BinRule::Sturges,
            BinRuleChoice::FreedmanDiaconis | BinRuleChoice::FreedmanDiaconisIqr => {
                BinRule::FreedmanDiaconis
            }
        }
    }
}

/// Outlier detection strategy (Section 4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutlierMethod {
    /// Mean/covariance from all cluster members — suffers from masking.
    Naive,
    /// Minimum-volume-ball robust estimators (the paper's approximation
    /// of the MVE estimator).
    Mvb,
    /// Concentration-step MCD (minimum covariance determinant) — an
    /// *extension*: the paper leaves the exact MVE estimator unevaluated
    /// as too expensive (end of Section 7.4.1); MCD concentration is the
    /// standard tractable robustification in that direction (Rousseeuw's
    /// FastMCD C-step, iterated a fixed number of times).
    Mcd,
}

/// Full parameter set for the P3C family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P3cParams {
    /// χ² significance for the uniformity tests (paper: 0.001).
    pub alpha_chi2: f64,
    /// Poisson significance for the support tests. The paper's Section 7.3
    /// grid uses 0.01; Figure 5 sweeps down to 1e-140 and shows the
    /// combined test is threshold-insensitive.
    pub alpha_poisson: f64,
    /// Effect-size threshold θ_cc (paper's tuned value: 0.35).
    /// Only used when `use_effect_size`.
    pub theta_cc: f64,
    /// Whether the Cohen's d effect-size test complements the Poisson test
    /// (the P3C+ "Combined" test of Figure 5).
    pub use_effect_size: bool,
    /// Whether redundant cluster cores are filtered (Section 4.2.1).
    pub use_redundancy_filter: bool,
    /// Whether attribute-inspection intervals must pass the support test
    /// ("AI proving", Section 4.2.3).
    pub use_ai_proving: bool,
    /// Histogram bin rule.
    pub bin_rule: BinRuleChoice,
    /// Outlier detection method.
    pub outlier: OutlierMethod,
    /// χ² significance for outlier detection (paper: 0.001).
    pub alpha_outlier: f64,
    /// Maximum EM iterations (each costs two MR jobs).
    pub em_max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub em_tol: f64,
    /// Candidate-pair count above which candidate generation is
    /// parallelized (the paper's `T_gen`; tuned per cluster — theirs was
    /// 4·10⁷, ours defaults lower since the in-process engine has no
    /// job-submission latency).
    pub t_gen: usize,
    /// Collected-candidate count that triggers a proving job in
    /// multi-level candidate collection (the paper's `T_c` = 3·10⁴).
    pub t_c: usize,
    /// Maximum signature dimensionality explored (a safety bound; the
    /// paper's generator uses clusters of at most 10 dimensions).
    pub max_levels: usize,
    /// Safety valve against combinatorial candidate explosion at very
    /// loose Poisson thresholds: levels with more candidates are
    /// truncated to the lexicographically first this-many (recorded in
    /// `CoreGenStats::truncated_levels`). `0` disables the cap.
    pub max_candidates_per_level: usize,
    /// Worker threads for the serial-path kernels (the EM E-step and the
    /// columnar binning scan, block-parallelized over the engine worker
    /// pool). Results are **bit-identical for every value** (DESIGN.md
    /// §11), so this is purely a speed knob. `0` means all available
    /// cores. Defaults to the `P3C_THREADS` environment variable when
    /// set, else `1`.
    #[serde(default = "default_threads")]
    pub threads: usize,
}

/// Serde/`Default` source for [`P3cParams::threads`]: the `P3C_THREADS`
/// environment variable, or `1`.
fn default_threads() -> usize {
    std::env::var("P3C_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

impl Default for P3cParams {
    /// The P3C+ configuration: combined test, redundancy filter, MVB,
    /// AI proving, Freedman–Diaconis bins.
    fn default() -> Self {
        Self {
            alpha_chi2: 0.001,
            alpha_poisson: 1e-10,
            theta_cc: 0.35,
            use_effect_size: true,
            use_redundancy_filter: true,
            use_ai_proving: true,
            bin_rule: BinRuleChoice::FreedmanDiaconis,
            outlier: OutlierMethod::Mvb,
            alpha_outlier: 0.001,
            em_max_iters: 10,
            em_tol: 1e-4,
            t_gen: 1_000_000,
            t_c: 30_000,
            max_levels: 12,
            max_candidates_per_level: 100_000,
            threads: default_threads(),
        }
    }
}

impl P3cParams {
    /// The configuration of the *original* P3C as the paper describes it:
    /// Sturges bins, Poisson-only test, no redundancy filter, naive
    /// outlier detection, no AI proving.
    pub fn original_p3c() -> Self {
        Self {
            use_effect_size: false,
            use_redundancy_filter: false,
            use_ai_proving: false,
            bin_rule: BinRuleChoice::Sturges,
            outlier: OutlierMethod::Naive,
            ..Self::default()
        }
    }

    /// The paper's Section 7.3 experiment settings (α_χ² = 0.001,
    /// α_poi = 0.01, θ_cc = 0.35) on top of the P3C+ defaults.
    pub fn paper_experiment() -> Self {
        Self {
            alpha_poisson: 0.01,
            ..Self::default()
        }
    }

    /// Checks internal consistency; called by pipeline constructors.
    pub fn validate(&self) {
        assert!(
            self.alpha_chi2 > 0.0 && self.alpha_chi2 < 1.0,
            "alpha_chi2 out of range"
        );
        assert!(
            self.alpha_poisson > 0.0 && self.alpha_poisson < 1.0,
            "alpha_poisson out of range"
        );
        assert!(
            self.alpha_outlier > 0.0 && self.alpha_outlier < 1.0,
            "alpha_outlier out of range"
        );
        assert!(self.theta_cc >= 0.0, "theta_cc must be nonnegative");
        assert!(self.max_levels >= 1, "max_levels must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_p3cplus() {
        let p = P3cParams::default();
        assert!(p.use_effect_size && p.use_redundancy_filter && p.use_ai_proving);
        assert_eq!(p.bin_rule, BinRuleChoice::FreedmanDiaconis);
        assert_eq!(p.outlier, OutlierMethod::Mvb);
        p.validate();
    }

    #[test]
    fn original_preset_disables_everything() {
        let p = P3cParams::original_p3c();
        assert!(!p.use_effect_size && !p.use_redundancy_filter && !p.use_ai_proving);
        assert_eq!(p.bin_rule, BinRuleChoice::Sturges);
        assert_eq!(p.outlier, OutlierMethod::Naive);
        p.validate();
    }

    #[test]
    fn paper_experiment_alpha() {
        assert_eq!(P3cParams::paper_experiment().alpha_poisson, 0.01);
    }

    #[test]
    #[should_panic(expected = "alpha_poisson")]
    fn invalid_alpha_rejected() {
        P3cParams {
            alpha_poisson: 0.0,
            ..P3cParams::default()
        }
        .validate();
    }

    #[test]
    fn bin_rule_conversion() {
        assert_eq!(BinRuleChoice::Sturges.to_rule().num_bins(1024), 11);
        assert_eq!(BinRuleChoice::FreedmanDiaconis.to_rule().num_bins(1000), 10);
    }
}
