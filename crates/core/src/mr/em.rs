//! EM as MapReduce jobs (paper Section 5.4).
//!
//! * **Initialization** — two rounds of mean/covariance jobs: first over
//!   the cluster cores' support sets, then including the points attached
//!   to their Mahalanobis-nearest core.
//! * **Iteration** — two jobs per EM step, after Chu et al. (NIPS 2006):
//!   job A accumulates the weighted linear sums `l_C`, weights `w_C`,
//!   `w_C2` (new means); job B accumulates the scatter around the *new*
//!   means (new covariances). Both use responsibilities under the
//!   previous parameters.

use crate::cores::ClusterCore;
use crate::em::{lanes_enabled, Component, DensityEvaluator, EstepScratch, MixtureModel};
use crate::mr::AccMsg;
use p3c_linalg::LaneScratch;
use p3c_linalg::{CovarianceAccumulator, Matrix};
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError, Reducer};
use std::sync::Arc;

/// Reducer merging per-split covariance accumulators of one cluster.
struct AccReducer;
impl Reducer<usize, AccMsg, (usize, AccMsg)> for AccReducer {
    fn reduce(&self, key: &usize, values: Vec<AccMsg>, out: &mut Vec<(usize, AccMsg)>) {
        let mut iter = values.into_iter();
        let mut first = iter.next().expect("group nonempty").0;
        for AccMsg(acc) in iter {
            first.merge(&acc);
        }
        out.push((*key, AccMsg(first)));
    }
}

/// Reducer for the EM step: merges accumulators and sums the per-split
/// log-likelihood contributions riding along in the value tuples.
struct EmStepReducer;
impl Reducer<usize, (AccMsg, f64), (usize, AccMsg, f64)> for EmStepReducer {
    fn reduce(&self, key: &usize, values: Vec<(AccMsg, f64)>, out: &mut Vec<(usize, AccMsg, f64)>) {
        let mut iter = values.into_iter();
        let (AccMsg(mut first), mut loglik) = iter.next().expect("group nonempty");
        for (AccMsg(acc), ll) in iter {
            first.merge(&acc);
            loglik += ll;
        }
        out.push((*key, AccMsg(first), loglik));
    }
}

/// Mapper: per-cluster support-set statistics of one split (round 1 of
/// the EM initialization).
struct CoreStatsMapper {
    cores: Arc<Vec<ClusterCore>>,
    arel: Arc<Vec<usize>>,
}

impl<'a> Mapper<&'a [f64], usize, AccMsg> for CoreStatsMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, AccMsg>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, AccMsg>) {
        let d = self.arel.len();
        let mut accs: Vec<CovarianceAccumulator> = (0..self.cores.len())
            .map(|_| CovarianceAccumulator::new(d))
            .collect();
        let mut x = Vec::with_capacity(d);
        for row in split {
            for (c, core) in self.cores.iter().enumerate() {
                if core.signature.contains(row) {
                    x.clear();
                    x.extend(self.arel.iter().map(|&a| row[a]));
                    accs[c].push(&x, 1.0);
                }
            }
        }
        for (c, acc) in accs.into_iter().enumerate() {
            if acc.count() > 0 {
                out.emit(c, AccMsg(acc));
            }
        }
    }
}

/// Mapper: attach points covered by *no* core to the Mahalanobis-nearest
/// component (round 2 of the EM initialization).
struct AttachMapper {
    cores: Arc<Vec<ClusterCore>>,
    eval: Arc<DensityEvaluator>,
}

impl<'a> Mapper<&'a [f64], usize, AccMsg> for AttachMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, AccMsg>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, AccMsg>) {
        let d = self
            .eval
            .project(split.first().map_or(&[][..], |r| r))
            .len();
        let k = self.eval.num_components();
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        if lanes_enabled() && d > 0 {
            // Lane path: gather the uncovered points (in row order) into
            // one contiguous block and score it against every component
            // through the 8-wide kernel. The nearest-component scan
            // iterates components ascending with the same strict-`<`
            // `total_cmp` comparison as the per-point loop below, over
            // bit-identical distances — so the attachments (and hence
            // the per-accumulator push sequences) are byte-identical.
            let mut buf = Vec::new();
            for row in split {
                if self.cores.iter().any(|core| core.signature.contains(row)) {
                    continue;
                }
                self.eval.project_append(row, &mut buf);
            }
            let npts = buf.len() / d;
            let mut best = vec![(f64::INFINITY, 0usize); npts];
            let mut scratch = LaneScratch::new();
            let mut out = Vec::new();
            for c in 0..k {
                self.eval
                    .mahalanobis_sq_component_block(c, &buf, &mut scratch, &mut out);
                for (b, &d2) in best.iter_mut().zip(&out) {
                    if d2.total_cmp(&b.0).is_lt() {
                        *b = (d2, c);
                    }
                }
            }
            for (x, &(_, nearest)) in buf.chunks_exact(d).zip(&best) {
                accs[nearest].push(x, 1.0);
            }
        } else {
            let mut x = Vec::with_capacity(d);
            let mut y = Vec::with_capacity(d);
            for row in split {
                if self.cores.iter().any(|core| core.signature.contains(row)) {
                    continue;
                }
                self.eval.project_into(row, &mut x);
                let mut nearest = 0;
                let mut best = f64::INFINITY;
                for c in 0..k {
                    let dist = self.eval.mahalanobis_sq_scratch(c, &x, &mut y);
                    // Strict `<` keeps the first minimum, like `Iterator::min_by`.
                    if dist.total_cmp(&best).is_lt() {
                        nearest = c;
                        best = dist;
                    }
                }
                accs[nearest].push(&x, 1.0);
            }
        }
        for (c, acc) in accs.into_iter().enumerate() {
            if acc.count() > 0 {
                out.emit(c, AccMsg(acc));
            }
        }
    }
}

/// Mapper for one EM step: accumulates responsibility-weighted moments.
/// One pass computes both the job-A statistics (linear sums and weights)
/// and the job-B scatter; the driver still charges two jobs to match the
/// paper's accounting — see [`em_fit_mr`].
struct EmStepMapper {
    eval: Arc<DensityEvaluator>,
}

impl<'a> Mapper<&'a [f64], usize, (AccMsg, f64)> for EmStepMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, (AccMsg, f64)>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, (AccMsg, f64)>) {
        let k = self.eval.num_components();
        let d = self
            .eval
            .project(split.first().map_or(&[][..], |r| r))
            .len();
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        let mut loglik = 0.0;
        if lanes_enabled() && d > 0 {
            // Lane path: project the whole split into one contiguous
            // block and run the fused 8-wide kernel over it. The
            // kernel's log-likelihood adds point-ascending over the
            // split — the same sequential sum as the per-row loop below
            // — and the component-outer accumulation pushes each
            // accumulator's points in the same row order, so the
            // emitted statistics are byte-identical.
            let mut proj = Vec::with_capacity(split.len() * d);
            for row in split {
                self.eval.project_append(row, &mut proj);
            }
            let mut resp_all = Vec::new();
            let mut scratch = EstepScratch::new();
            loglik = self
                .eval
                .responsibilities_block_lanes(&proj, &mut resp_all, &mut scratch);
            // Gather each component's significant points densely and
            // fold them in with one `push_block` — the same per-entry
            // add sequence as per-point pushes (bit-identical), with
            // the scatter rows register-resident across the split.
            let npts = proj.len() / d;
            let (mut xs, mut ws) = (Vec::new(), Vec::new());
            for (c, acc) in accs.iter_mut().enumerate() {
                ws.clear();
                for resp in resp_all.chunks_exact(k.max(1)) {
                    let r = resp[c];
                    if r > 1e-12 {
                        ws.push(r);
                    }
                }
                if ws.len() == npts {
                    // Every point significant: fold the projected
                    // split in directly, no gather copy.
                    acc.push_block(&proj, &ws);
                } else {
                    xs.clear();
                    for (x, resp) in proj.chunks_exact(d).zip(resp_all.chunks_exact(k.max(1))) {
                        if resp[c] > 1e-12 {
                            xs.extend_from_slice(x);
                        }
                    }
                    acc.push_block(&xs, &ws);
                }
            }
        } else {
            let mut resp = Vec::with_capacity(k);
            let mut x = Vec::with_capacity(d);
            let mut y = Vec::with_capacity(d);
            for row in split {
                self.eval.project_into(row, &mut x);
                loglik += self.eval.responsibilities_scratch(&x, &mut resp, &mut y);
                for (c, &r) in resp.iter().enumerate() {
                    if r > 1e-12 {
                        accs[c].push(&x, r);
                    }
                }
            }
        }
        for (c, acc) in accs.into_iter().enumerate() {
            if acc.count() > 0 {
                out.emit(c, (AccMsg(acc), 0.0));
            }
        }
        // The split's log-likelihood contribution rides under a dedicated
        // key one past the last cluster id.
        out.emit(k, (AccMsg(CovarianceAccumulator::new(0)), loglik));
    }
}

/// Runs the two EM-initialization rounds as MR jobs, returning the
/// initial mixture — the MR analogue of
/// [`crate::em::initialize_from_cores`].
pub fn initialize_from_cores_mr(
    engine: &Engine,
    cores: &[ClusterCore],
    rows: &[&[f64]],
    arel: &[usize],
) -> Result<MixtureModel, MrError> {
    assert!(
        !cores.is_empty(),
        "EM initialization needs at least one core"
    );
    let k = cores.len();
    let d = arel.len();
    let cores_arc = Arc::new(cores.to_vec());
    let arel_arc = Arc::new(arel.to_vec());
    let cache = cores
        .iter()
        .map(|c| 4 + c.signature.len() * 32)
        .sum::<usize>();

    // Round 1: support-set statistics.
    let round1 = engine.run_with_cache(
        "p3c-em-init-support-stats",
        rows,
        cache,
        &CoreStatsMapper {
            cores: Arc::clone(&cores_arc),
            arel: Arc::clone(&arel_arc),
        },
        &AccReducer,
    )?;
    let mut accs: Vec<CovarianceAccumulator> =
        (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
    for (c, AccMsg(acc)) in round1.output {
        accs[c].merge(&acc);
    }
    let model1 = MixtureModel {
        arel: arel.to_vec(),
        components: components_from_accs(&accs, d),
    };

    // Round 2: attach uncovered points to their nearest component.
    let eval = Arc::new(model1.evaluator());
    let round2 = engine.run_with_cache(
        "p3c-em-init-attach-outliers",
        rows,
        cache + d * d * 8 * k,
        &AttachMapper {
            cores: cores_arc,
            eval,
        },
        &AccReducer,
    )?;
    for (c, AccMsg(acc)) in round2.output {
        accs[c].merge(&acc);
    }
    Ok(MixtureModel {
        arel: arel.to_vec(),
        components: components_from_accs(&accs, d),
    })
}

/// Result of the MR EM loop.
pub struct MrEmFit {
    /// The fitted mixture.
    pub model: MixtureModel,
    /// Log-likelihood after each iteration.
    pub loglik_history: Vec<f64>,
    /// Iterations run before convergence or the cap.
    pub iterations: usize,
}

/// Runs EM iterations as MR jobs until convergence or `max_iters`.
///
/// The statistics of one step are gathered in a single data pass, but the
/// paper's decomposition costs two jobs per step (means job + covariance
/// job); we charge the second job explicitly with a zero-input marker so
/// the engine's job ledger matches the paper's accounting.
pub fn em_fit_mr(
    engine: &Engine,
    init: MixtureModel,
    rows: &[&[f64]],
    max_iters: usize,
    tol: f64,
) -> Result<MrEmFit, MrError> {
    let mut model = init;
    let k = model.components.len();
    let d = model.arel.len();
    let mut history: Vec<f64> = Vec::new();
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let eval = Arc::new(model.evaluator());
        let cache = d * d * 8 * k;
        let result = engine.run_with_cache(
            "p3c-em-step-means",
            rows,
            cache,
            &EmStepMapper { eval },
            &EmStepReducer,
        )?;
        // The paper's second job of the step (covariances given the new
        // means). Our accumulators already carry the scatter, so the job
        // is a bookkeeping no-op over an empty input.
        engine.run_map_only(
            "p3c-em-step-covariances",
            &[] as &[u8],
            &|_r: &u8, _o: &mut Emitter<(), ()>| {},
        )?;
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        let mut loglik = 0.0;
        for (c, AccMsg(acc), ll) in result.output {
            if c < k {
                accs[c].merge(&acc);
            } else {
                loglik += ll;
            }
        }
        // Convergence is checked *before* the M-step (matching
        // [`crate::em::em_fit_threads`]): on convergence the returned
        // model is the one whose log-likelihood is `history.last()`,
        // with no trailing M-step applied. The step's two jobs already
        // ran, so the job ledger still charges two per iteration.
        let converged = history
            .last()
            .map(|&prev| (loglik - prev).abs() <= tol * prev.abs().max(1.0))
            .unwrap_or(false);
        history.push(loglik);
        if converged {
            break;
        }
        model = MixtureModel {
            arel: model.arel,
            components: components_from_accs(&accs, d),
        };
    }
    Ok(MrEmFit {
        model,
        loglik_history: history,
        iterations,
    })
}

/// Accumulators → components (ML covariance, ridge, normalized weights).
fn components_from_accs(accs: &[CovarianceAccumulator], d: usize) -> Vec<Component> {
    // audit: order-exact — ascending component index over the merged
    // accumulators, the same order on every path.
    let total: f64 = accs.iter().map(|a| a.total_weight()).sum::<f64>().max(1.0);
    accs.iter()
        .map(|acc| {
            let mean = acc.mean().unwrap_or_else(|| vec![0.5; d]);
            let mut cov = acc.covariance_ml().unwrap_or_else(|| Matrix::identity(d));
            cov.add_ridge(1e-9);
            let weight = (acc.total_weight() / total).max(1e-12);
            Component { mean, cov, weight }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{em_fit, initialize_from_cores};
    use crate::types::{Interval, Signature};
    use p3c_mapreduce::MrConfig;

    fn two_blob_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..150 {
            let t = (i as f64) / 150.0 * 0.08;
            rows.push(vec![0.16 + t, 0.24 - t]);
            rows.push(vec![0.76 + t, 0.84 - t]);
        }
        rows
    }

    fn blob_cores() -> Vec<ClusterCore> {
        let a = Signature::new(vec![Interval::new(0, 1, 2, 10), Interval::new(1, 1, 2, 10)]);
        let b = Signature::new(vec![Interval::new(0, 7, 8, 10), Interval::new(1, 7, 8, 10)]);
        vec![
            ClusterCore {
                signature: a,
                support: 150.0,
                expected: 1.0,
            },
            ClusterCore {
                signature: b,
                support: 150.0,
                expected: 1.0,
            },
        ]
    }

    #[test]
    fn mr_initialization_matches_serial() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 41,
            ..MrConfig::default()
        });
        let mr = initialize_from_cores_mr(&engine, &blob_cores(), &rows, &[0, 1]).unwrap();
        let serial = initialize_from_cores(&blob_cores(), &rows, &[0, 1]);
        for (cm, cs) in mr.components.iter().zip(&serial.components) {
            for (a, b) in cm.mean.iter().zip(&cs.mean) {
                assert!((a - b).abs() < 1e-9, "means differ");
            }
            assert!((cm.weight - cs.weight).abs() < 1e-9);
            for i in 0..2 {
                for j in 0..2 {
                    assert!((cm.cov[(i, j)] - cs.cov[(i, j)]).abs() < 1e-9);
                }
            }
        }
        assert_eq!(engine.cluster_metrics().num_jobs(), 2);
    }

    #[test]
    fn mr_em_converges_like_serial() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 50,
            ..MrConfig::default()
        });
        let init_mr = initialize_from_cores_mr(&engine, &blob_cores(), &rows, &[0, 1]).unwrap();
        let init_serial = initialize_from_cores(&blob_cores(), &rows, &[0, 1]);
        let fit_mr = em_fit_mr(&engine, init_mr, &rows, 5, 1e-8).unwrap();
        let fit_serial = em_fit(init_serial, &rows, 5, 1e-8);
        for (cm, cs) in fit_mr
            .model
            .components
            .iter()
            .zip(&fit_serial.model.components)
        {
            for (a, b) in cm.mean.iter().zip(&cs.mean) {
                assert!((a - b).abs() < 1e-6, "EM means diverge: {a} vs {b}");
            }
        }
        // Two jobs per iteration, as the paper prescribes.
        let em_jobs = engine
            .cluster_metrics()
            .jobs()
            .iter()
            .filter(|j| j.job_name.starts_with("p3c-em-step"))
            .count();
        assert_eq!(em_jobs, 2 * fit_mr.iterations);
    }

    #[test]
    fn mr_em_loglik_is_monotone() {
        let data = two_blob_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::with_defaults();
        let init = initialize_from_cores_mr(&engine, &blob_cores(), &rows, &[0, 1]).unwrap();
        let fit = em_fit_mr(&engine, init, &rows, 6, 0.0).unwrap();
        for w in fit.loglik_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-3, "loglik fell: {:?}", fit.loglik_history);
        }
    }
}
