//! The outlier-detection MapReduce jobs (paper Section 5.5).
//!
//! * **OD job** — map-only: each mapper assigns its points to the most
//!   probable EM component and writes the point back with a membership
//!   attribute (`cluster id` or `−1` for outliers).
//! * **MVB jobs** — three jobs extract the robust statistics: (1) per
//!   split, the dimension-wise median center and median-distance radius
//!   of every cluster, aggregated by a reducer taking medians of the
//!   split estimates; (2)+(3) mean and covariance over the points inside
//!   each cluster's ball, as in the EM initialization.

use crate::em::{lanes_enabled, DensityEvaluator, EstepScratch};
use crate::mr::AccMsg;
use p3c_linalg::{Cholesky, CovarianceAccumulator, LaneScratch};
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError, Reducer};
use p3c_stats::descriptive::{dimensionwise_median, median_in_place};
use p3c_stats::ChiSquared;
use std::sync::Arc;

/// Estimated broadcast size of an evaluator's parameters.
fn eval_cache_bytes(eval: &DensityEvaluator, d: usize) -> usize {
    eval.num_components() * (d * d + d + 2) * 8
}

// ------------------------------------------------------------ OD (naive) --

/// Mapper for the naive OD job: assign to the best component, compare the
/// Mahalanobis distance against the χ² critical value.
struct OdMapper {
    eval: Arc<DensityEvaluator>,
    crit: f64,
}

impl<'a> Mapper<&'a [f64], (), i64> for OdMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<(), i64>) {
        let x = self.eval.project(row);
        let k = self.eval.assign(row);
        if self.eval.mahalanobis_sq(k, &x) > self.crit {
            out.emit((), -1);
        } else {
            out.emit((), k as i64);
        }
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<(), i64>) {
        let d = self.eval.arel_len();
        if !lanes_enabled() || d == 0 {
            for row in split {
                self.map(row, out);
            }
            return;
        }
        // Lane path: assign the whole split through the 8-wide density
        // kernel, then score each cluster's members as one contiguous
        // block. Distances and argmax comparisons are bit-identical to
        // the per-row path, and verdicts are emitted in row order, so
        // the map output is byte-identical.
        let (proj, assignment) = assign_split_lanes(&self.eval, split);
        let verdicts = split_cluster_distances(&self.eval, &proj, &assignment, |c| {
            DistanceSource::Component(c)
        });
        for (&c, &d2) in assignment.iter().zip(&verdicts) {
            if d2 > self.crit {
                out.emit((), -1);
            } else {
                out.emit((), c as i64);
            }
        }
    }
}

/// Lane-batched split assignment: projects every row into one
/// contiguous buffer and hard-assigns each point via
/// [`DensityEvaluator::assign_block_lanes`] — bit-identical to per-row
/// [`DensityEvaluator::assign`].
fn assign_split_lanes(eval: &DensityEvaluator, split: &[&[f64]]) -> (Vec<f64>, Vec<usize>) {
    let mut proj = Vec::with_capacity(split.len() * eval.arel_len());
    for row in split {
        eval.project_append(row, &mut proj);
    }
    let mut scratch = EstepScratch::new();
    let mut assignment = Vec::new();
    eval.assign_block_lanes(&proj, &mut scratch, &mut assignment);
    (proj, assignment)
}

/// Which geometry scores a cluster's points in the grouped scans.
enum DistanceSource<'e> {
    /// The EM component's own parameters.
    Component(usize),
    /// A robust `(mean, Cholesky)` estimate.
    Robust(&'e (Vec<f64>, Cholesky)),
    /// No estimate: the points are never outliers.
    Keep,
}

/// Squared Mahalanobis distance of every projected point to its
/// cluster's geometry (chosen by `source`), computed per cluster
/// through the lane-batched block kernel and scattered back to row
/// order. `Keep` clusters score `NEG_INFINITY` (never above a
/// threshold).
fn split_cluster_distances<'e>(
    eval: &DensityEvaluator,
    proj: &[f64],
    assignment: &[usize],
    source: impl Fn(usize) -> DistanceSource<'e>,
) -> Vec<f64> {
    let d = eval.arel_len();
    let npts = assignment.len();
    let mut dists = vec![f64::NEG_INFINITY; npts];
    let mut buf = Vec::new();
    let mut idx = Vec::new();
    let mut scratch = LaneScratch::new();
    let mut out = Vec::new();
    for c in 0..eval.num_components() {
        let src = source(c);
        if matches!(src, DistanceSource::Keep) {
            continue;
        }
        buf.clear();
        idx.clear();
        for (i, (x, &a)) in proj.chunks_exact(d).zip(assignment).enumerate() {
            if a == c {
                buf.extend_from_slice(x);
                idx.push(i);
            }
        }
        match src {
            DistanceSource::Component(k) => {
                eval.mahalanobis_sq_component_block(k, &buf, &mut scratch, &mut out);
            }
            DistanceSource::Robust((mean, chol)) => {
                chol.mahalanobis_sq_block(&buf, mean, &mut scratch, &mut out);
            }
            DistanceSource::Keep => unreachable!(),
        }
        for (&i, &d2) in idx.iter().zip(&out) {
            dists[i] = d2;
        }
    }
    dists
}

/// Runs the naive OD job; output is ordered like `rows`.
pub fn od_job_naive(
    engine: &Engine,
    eval: Arc<DensityEvaluator>,
    rows: &[&[f64]],
    alpha: f64,
    arel_len: usize,
) -> Result<Vec<i64>, MrError> {
    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    let cache = eval_cache_bytes(&eval, arel_len);
    let result =
        engine.run_map_only_with_cache("p3c-od-naive", rows, cache, &OdMapper { eval, crit })?;
    Ok(result.output)
}

// -------------------------------------------------------------- MVB jobs --

/// Mapper of the MVB statistics job: caches its split, assigns points,
/// and in the cleanup phase computes the split-local dimension-wise
/// median center and median-distance radius per cluster.
struct MvbStatsMapper {
    eval: Arc<DensityEvaluator>,
}

impl<'a> Mapper<&'a [f64], usize, (Vec<f64>, f64)> for MvbStatsMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, (Vec<f64>, f64)>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, (Vec<f64>, f64)>) {
        let k = self.eval.num_components();
        let mut members: Vec<Vec<Vec<f64>>> = vec![Vec::new(); k];
        for row in split {
            let c = self.eval.assign(row);
            members[c].push(self.eval.project(row));
        }
        for (c, pts) in members.iter().enumerate() {
            if pts.is_empty() {
                continue;
            }
            let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
            let center = dimensionwise_median(&refs).expect("nonempty");
            let mut dists: Vec<f64> = refs.iter().map(|p| p3c_linalg::dist(p, &center)).collect();
            let radius = median_in_place(&mut dists);
            out.emit(c, (center, radius));
        }
    }
}

/// Reducer: dimension-wise median of the split centers; median of radii.
struct MvbStatsReducer;
impl Reducer<usize, (Vec<f64>, f64), (usize, Vec<f64>, f64)> for MvbStatsReducer {
    fn reduce(
        &self,
        key: &usize,
        values: Vec<(Vec<f64>, f64)>,
        out: &mut Vec<(usize, Vec<f64>, f64)>,
    ) {
        let centers: Vec<&[f64]> = values.iter().map(|(c, _)| c.as_slice()).collect();
        let center = dimensionwise_median(&centers).expect("nonempty group");
        let mut radii: Vec<f64> = values.iter().map(|(_, r)| *r).collect();
        let radius = median_in_place(&mut radii);
        out.push((*key, center, radius));
    }
}

/// Per-cluster ball geometry: `(center, radius)` in `A_rel` coordinates.
type Balls = Arc<Vec<Option<(Vec<f64>, f64)>>>;

/// Mapper of the ball-restricted moments job.
struct BallStatsMapper {
    eval: Arc<DensityEvaluator>,
    balls: Balls,
}

impl<'a> Mapper<&'a [f64], usize, AccMsg> for BallStatsMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, AccMsg>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, AccMsg>) {
        let k = self.eval.num_components();
        let d = self
            .eval
            .project(split.first().map_or(&[][..], |r| r))
            .len();
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        for row in split {
            let c = self.eval.assign(row);
            if let Some((center, radius)) = &self.balls[c] {
                let x = self.eval.project(row);
                if p3c_linalg::dist(&x, center) <= radius + 1e-12 {
                    accs[c].push(&x, 1.0);
                }
            }
        }
        for (c, acc) in accs.into_iter().enumerate() {
            if acc.count() > 0 {
                out.emit(c, AccMsg(acc));
            }
        }
    }
}

struct AccReducer;
impl Reducer<usize, AccMsg, (usize, AccMsg)> for AccReducer {
    fn reduce(&self, key: &usize, values: Vec<AccMsg>, out: &mut Vec<(usize, AccMsg)>) {
        let mut iter = values.into_iter();
        let mut first = iter.next().expect("group nonempty").0;
        for AccMsg(acc) in iter {
            first.merge(&acc);
        }
        out.push((*key, AccMsg(first)));
    }
}

/// Mapper of the final (robust) OD job.
struct RobustOdMapper {
    eval: Arc<DensityEvaluator>,
    estimates: RobustEstimates,
    crit: f64,
}

impl<'a> Mapper<&'a [f64], (), i64> for RobustOdMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<(), i64>) {
        let c = self.eval.assign(row);
        let x = self.eval.project(row);
        match &self.estimates[c] {
            Some((mean, chol)) => {
                let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
                if chol.mahalanobis_sq(&diff) > self.crit {
                    out.emit((), -1);
                } else {
                    out.emit((), c as i64);
                }
            }
            None => out.emit((), c as i64),
        }
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<(), i64>) {
        let d = self.eval.arel_len();
        if !lanes_enabled() || d == 0 {
            for row in split {
                self.map(row, out);
            }
            return;
        }
        // Lane path: grouped per-cluster block scans under the robust
        // estimates; degenerate clusters keep their points. The fused
        // block kernel's offset-into-substitution sequence is
        // bit-identical to the per-row `diff` + `mahalanobis_sq` path
        // (see `Cholesky::mahalanobis_sq_scratch`), and verdicts are
        // emitted in row order — byte-identical map output.
        let (proj, assignment) = assign_split_lanes(&self.eval, split);
        let verdicts = split_cluster_distances(&self.eval, &proj, &assignment, |c| {
            match &self.estimates[c] {
                Some(est) => DistanceSource::Robust(est),
                None => DistanceSource::Keep,
            }
        });
        for (&c, &d2) in assignment.iter().zip(&verdicts) {
            if d2 > self.crit {
                out.emit((), -1);
            } else {
                out.emit((), c as i64);
            }
        }
    }
}

/// Runs the full MVB outlier-detection pipeline: three statistics jobs
/// plus the OD job (paper Section 5.5). Output is ordered like `rows`.
pub fn od_job_mvb(
    engine: &Engine,
    eval: Arc<DensityEvaluator>,
    rows: &[&[f64]],
    alpha: f64,
    arel_len: usize,
) -> Result<Vec<i64>, MrError> {
    let k = eval.num_components();
    let d = arel_len;
    let cache = eval_cache_bytes(&eval, d);

    // Job 1: per-cluster MVB center and radius.
    let stats = engine.run_with_cache(
        "p3c-mvb-ball-stats",
        rows,
        cache,
        &MvbStatsMapper {
            eval: Arc::clone(&eval),
        },
        &MvbStatsReducer,
    )?;
    let mut balls: Vec<Option<(Vec<f64>, f64)>> = vec![None; k];
    for (c, center, radius) in stats.output {
        balls[c] = Some((center, radius));
    }
    let balls = Arc::new(balls);

    // Job 2: moments of the in-ball points (plus the paper's bookkeeping
    // second job for covariances).
    let moments = engine.run_with_cache(
        "p3c-mvb-ball-means",
        rows,
        cache + k * (d + 1) * 8,
        &BallStatsMapper {
            eval: Arc::clone(&eval),
            balls: Arc::clone(&balls),
        },
        &AccReducer,
    )?;
    engine.run_map_only(
        "p3c-mvb-ball-covariances",
        &[] as &[u8],
        &|_r: &u8, _o: &mut Emitter<(), ()>| {},
    )?;
    let mut estimates: Vec<Option<(Vec<f64>, Cholesky)>> = vec![None; k];
    for (c, AccMsg(acc)) in moments.output {
        estimates[c] = (|| {
            let mean = acc.mean()?;
            let mut cov = acc.covariance()?;
            cov.add_ridge(1e-9);
            let chol = Cholesky::new_regularized(&cov)?;
            Some((mean, chol))
        })();
    }

    // Final OD job with the robust parameters.
    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    let result = engine.run_map_only_with_cache(
        "p3c-od-mvb",
        rows,
        cache + k * (d * d + d) * 8,
        &RobustOdMapper {
            eval,
            estimates: Arc::new(estimates),
            crit,
        },
    )?;
    Ok(result.output)
}

// -------------------------------------------------------------- MCD jobs --

/// Per-cluster robust state threaded through the MCD concentration jobs:
/// `None` falls back to the EM component's own Mahalanobis geometry.
type RobustEstimates = Arc<Vec<Option<(Vec<f64>, Cholesky)>>>;

fn robust_mahalanobis_sq(
    eval: &DensityEvaluator,
    estimates: &[Option<(Vec<f64>, Cholesky)>],
    c: usize,
    x: &[f64],
) -> f64 {
    match &estimates[c] {
        Some((mean, chol)) => {
            let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
            chol.mahalanobis_sq(&diff)
        }
        None => eval.mahalanobis_sq(c, x),
    }
}

/// Mapper of the MCD threshold job: split-local median of squared
/// Mahalanobis distances per cluster (the h = 50% concentration quantile,
/// estimated with the same median-of-split-medians scheme as the paper's
/// MVB statistics).
struct McdThresholdMapper {
    eval: Arc<DensityEvaluator>,
    estimates: RobustEstimates,
}

impl<'a> Mapper<&'a [f64], usize, f64> for McdThresholdMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, f64>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, f64>) {
        let k = self.eval.num_components();
        let mut dists: Vec<Vec<f64>> = vec![Vec::new(); k];
        for row in split {
            let c = self.eval.assign(row);
            let x = self.eval.project(row);
            dists[c].push(robust_mahalanobis_sq(&self.eval, &self.estimates, c, &x));
        }
        for (c, mut d) in dists.into_iter().enumerate() {
            if !d.is_empty() {
                out.emit(c, median_in_place(&mut d));
            }
        }
    }
}

struct MedianReducer;
impl Reducer<usize, f64, (usize, f64)> for MedianReducer {
    fn reduce(&self, key: &usize, mut values: Vec<f64>, out: &mut Vec<(usize, f64)>) {
        out.push((*key, median_in_place(&mut values)));
    }
}

/// Mapper of the MCD moments job: accumulate mean/covariance over the
/// points inside each cluster's concentration threshold.
struct McdMomentsMapper {
    eval: Arc<DensityEvaluator>,
    estimates: RobustEstimates,
    thresholds: Arc<Vec<Option<f64>>>,
}

impl<'a> Mapper<&'a [f64], usize, AccMsg> for McdMomentsMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, AccMsg>) {
        self.map_split(std::slice::from_ref(row), out);
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, AccMsg>) {
        let k = self.eval.num_components();
        let d = self
            .eval
            .project(split.first().map_or(&[][..], |r| r))
            .len();
        let mut accs: Vec<CovarianceAccumulator> =
            (0..k).map(|_| CovarianceAccumulator::new(d)).collect();
        for row in split {
            let c = self.eval.assign(row);
            let Some(threshold) = self.thresholds[c] else {
                continue;
            };
            let x = self.eval.project(row);
            if robust_mahalanobis_sq(&self.eval, &self.estimates, c, &x) <= threshold {
                accs[c].push(&x, 1.0);
            }
        }
        for (c, acc) in accs.into_iter().enumerate() {
            if acc.count() > 0 {
                out.emit(c, AccMsg(acc));
            }
        }
    }
}

/// MCD outlier detection as MapReduce jobs (extension; see
/// [`crate::outlier::mcd_estimate`]). Each concentration step costs two
/// jobs — a threshold job (median-of-split-medians of the squared
/// Mahalanobis distances, i.e. the h = 50% quantile under the current
/// estimate) and a moments job over the points below it — followed by
/// the usual OD job under the final robust estimates.
pub fn od_job_mcd(
    engine: &Engine,
    eval: Arc<DensityEvaluator>,
    rows: &[&[f64]],
    alpha: f64,
    arel_len: usize,
    concentration_steps: usize,
) -> Result<Vec<i64>, MrError> {
    let k = eval.num_components();
    let d = arel_len;
    let cache = eval_cache_bytes(&eval, d);
    let mut estimates: RobustEstimates = Arc::new(vec![None; k]);
    for step in 0..concentration_steps.max(1) {
        let _ = step;
        let thresholds_out = engine.run_with_cache(
            "p3c-mcd-threshold",
            rows,
            cache + k * (d * d + d) * 8,
            &McdThresholdMapper {
                eval: Arc::clone(&eval),
                estimates: Arc::clone(&estimates),
            },
            &MedianReducer,
        )?;
        let mut thresholds: Vec<Option<f64>> = vec![None; k];
        for (c, t) in thresholds_out.output {
            thresholds[c] = Some(t);
        }
        let moments = engine.run_with_cache(
            "p3c-mcd-moments",
            rows,
            cache + k * (d * d + d + 1) * 8,
            &McdMomentsMapper {
                eval: Arc::clone(&eval),
                estimates: Arc::clone(&estimates),
                thresholds: Arc::new(thresholds),
            },
            &AccReducer,
        )?;
        let mut next: Vec<Option<(Vec<f64>, Cholesky)>> = vec![None; k];
        for (c, AccMsg(acc)) in moments.output {
            next[c] = (|| {
                let mean = acc.mean()?;
                let mut cov = acc.covariance()?;
                cov.add_ridge(1e-9);
                let chol = Cholesky::new_regularized(&cov)?;
                Some((mean, chol))
            })();
        }
        estimates = Arc::new(next);
    }

    let crit = ChiSquared::new(arel_len.max(1) as f64).critical_value(alpha);
    let result = engine.run_map_only_with_cache(
        "p3c-od-mcd",
        rows,
        cache + k * (d * d + d) * 8,
        &RobustOdMapper {
            eval,
            estimates,
            crit,
        },
    )?;
    Ok(result.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{Component, MixtureModel};
    use crate::outlier::{
        assign_clusters, detect_outliers_mcd, detect_outliers_mvb, detect_outliers_naive,
    };
    use p3c_linalg::Matrix;
    use p3c_mapreduce::MrConfig;

    fn rows_with_outliers() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..200 {
            let t = i as f64 / 200.0;
            rows.push(vec![0.45 + 0.1 * t, 0.55 - 0.1 * t]);
        }
        rows.push(vec![0.0, 1.0]);
        rows.push(vec![1.0, 0.0]);
        rows
    }

    fn model() -> MixtureModel {
        let mut cov = Matrix::identity(2);
        cov[(0, 0)] = 0.001;
        cov[(1, 1)] = 0.001;
        MixtureModel {
            arel: vec![0, 1],
            components: vec![Component {
                mean: vec![0.5, 0.5],
                cov,
                weight: 1.0,
            }],
        }
    }

    #[test]
    fn naive_od_job_matches_serial() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = Arc::new(model().evaluator());
        let engine = Engine::new(MrConfig {
            split_size: 33,
            ..MrConfig::default()
        });
        let mr = od_job_naive(&engine, Arc::clone(&eval), &rows, 0.001, 2).unwrap();
        let assignment = assign_clusters(&eval, &rows);
        let serial = detect_outliers_naive(&eval, &rows, &assignment, 0.001, 2);
        assert_eq!(mr, serial);
        assert_eq!(mr.len(), rows.len());
        assert_eq!(mr[200], -1);
    }

    #[test]
    fn mvb_od_job_matches_serial_closely() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = Arc::new(model().evaluator());
        // Serial MVB computes exact global medians; the MR version medians
        // the split-local medians (the paper's approximation). With a
        // single split both coincide exactly.
        let engine = Engine::new(MrConfig {
            split_size: 100_000,
            ..MrConfig::default()
        });
        let mr = od_job_mvb(&engine, Arc::clone(&eval), &rows, 0.001, 2).unwrap();
        let assignment = assign_clusters(&eval, &rows);
        let serial = detect_outliers_mvb(&eval, &rows, &assignment, 0.001, 2);
        assert_eq!(mr, serial);
    }

    #[test]
    fn mcd_od_job_catches_outliers_and_charges_jobs() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = Arc::new(model().evaluator());
        let engine = Engine::new(MrConfig {
            split_size: 50,
            ..MrConfig::default()
        });
        let mr = od_job_mcd(&engine, Arc::clone(&eval), &rows, 0.001, 2, 2).unwrap();
        assert_eq!(mr[200], -1);
        assert_eq!(mr[201], -1);
        let inliers = mr.iter().filter(|&&a| a == 0).count();
        assert!(inliers >= 180, "only {inliers} inliers");
        // 2 steps × 2 jobs + final OD job.
        assert_eq!(engine.cluster_metrics().num_jobs(), 5);
    }

    #[test]
    fn mcd_od_job_single_split_matches_serial() {
        let data = rows_with_outliers();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let eval = Arc::new(model().evaluator());
        // One split: the median-of-medians quantile is the exact median,
        // and serial MCD with h = 50% converges to the same subset after
        // enough steps; compare the final verdicts.
        let engine = Engine::new(MrConfig {
            split_size: 100_000,
            ..MrConfig::default()
        });
        let mr = od_job_mcd(&engine, Arc::clone(&eval), &rows, 0.001, 2, 4).unwrap();
        let assignment = assign_clusters(&eval, &rows);
        let serial = detect_outliers_mcd(&eval, &rows, &assignment, 0.001, 2);
        // The serial C-step keeps exactly h points, the MR variant keeps
        // those ≤ the median distance — same verdict for the planted
        // outliers and at least 95% agreement overall.
        assert_eq!(mr[200], serial[200]);
        assert_eq!(mr[201], serial[201]);
        let agree = mr.iter().zip(&serial).filter(|(a, b)| a == b).count();
        assert!(
            agree * 100 >= mr.len() * 95,
            "only {agree}/{} agree",
            mr.len()
        );
    }

    #[test]
    fn mvb_od_job_with_many_splits_still_catches_outliers() {
        // The split-median aggregation assumes splits are representative
        // samples (as HDFS blocks of shuffled data are); interleave the
        // rows with a coprime stride so each split spans the cluster.
        let ordered = rows_with_outliers();
        let n = ordered.len();
        let data: Vec<Vec<f64>> = (0..n).map(|i| ordered[(i * 67) % n].clone()).collect();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let planted_outliers: Vec<usize> = (0..n).filter(|i| (i * 67) % n >= 200).collect();
        let eval = Arc::new(model().evaluator());
        let engine = Engine::new(MrConfig {
            split_size: 20,
            ..MrConfig::default()
        });
        let mr = od_job_mvb(&engine, eval, &rows, 0.001, 2).unwrap();
        for &o in &planted_outliers {
            assert_eq!(mr[o], -1, "planted outlier {o} survived");
        }
        let inliers = mr.iter().filter(|&&a| a == 0).count();
        assert!(inliers >= 180, "only {inliers} inliers");
        // Job accounting: ball stats + means + covariances + OD = 4 jobs.
        assert_eq!(engine.cluster_metrics().num_jobs(), 4);
    }
}
