//! The histogram-building MapReduce job (paper Section 5.1, Equation 8).
//!
//! Mappers aggregate their split into per-attribute partial histograms;
//! the reducer for attribute `a` sums the partial counts. Produces counts
//! bit-identical to the serial [`crate::histogram::build_histograms`].

use crate::histogram::AttributeHistograms;
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError, Reducer};
use p3c_stats::descriptive::{median_in_place, quartiles};
use p3c_stats::Histogram;
use std::sync::Arc;

/// Mapper: one partial histogram per attribute per split.
struct HistMapper {
    /// Per-attribute bin counts (uniform rules: a constant vector).
    bins: Arc<Vec<usize>>,
    /// Attribute sub-range covered by this job. The full histogram job
    /// uses `0..usize::MAX`; DAG histogram shards each take a slice of
    /// the attribute space and run concurrently.
    attr_lo: usize,
    attr_hi: usize,
}

impl<'a> Mapper<&'a [f64], usize, Vec<f64>> for HistMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, Vec<f64>>) {
        // Only used for 1-record splits; map_split is the real path.
        for (attr, &v) in row.iter().enumerate() {
            if attr < self.attr_lo || attr >= self.attr_hi {
                continue;
            }
            let bins = self.bins[attr];
            let mut counts = vec![0.0; bins];
            counts[p3c_stats::histogram::bin_index(v, bins)] = 1.0;
            out.emit(attr, counts);
        }
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, Vec<f64>>) {
        let d = split.first().map_or(0, |r| r.len());
        let lo = self.attr_lo.min(d);
        let hi = self.attr_hi.min(d);
        let mut partials: Vec<Vec<f64>> =
            (lo..hi).map(|attr| vec![0.0f64; self.bins[attr]]).collect();
        for row in split {
            for attr in lo..hi {
                partials[attr - lo][p3c_stats::histogram::bin_index(row[attr], self.bins[attr])] +=
                    1.0;
            }
        }
        for (i, counts) in partials.into_iter().enumerate() {
            out.emit(lo + i, counts);
        }
    }
}

/// Mapper over *projected* rows: each split row holds only the shard's
/// attribute slice (decoded from the columnar spill segments), and keys
/// are rebased to global attribute indices, so the reduce output is
/// identical to [`HistMapper`] scanning full-width rows.
struct ProjectedHistMapper {
    /// Per-attribute bin counts, indexed by *global* attribute.
    bins: Arc<Vec<usize>>,
    /// Global attribute index of the slice's first column.
    attr_lo: usize,
}

impl<'a> Mapper<&'a [f64], usize, Vec<f64>> for ProjectedHistMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, Vec<f64>>) {
        for (local, &v) in row.iter().enumerate() {
            let attr = self.attr_lo + local;
            let bins = self.bins[attr];
            let mut counts = vec![0.0; bins];
            counts[p3c_stats::histogram::bin_index(v, bins)] = 1.0;
            out.emit(attr, counts);
        }
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, Vec<f64>>) {
        let w = split.first().map_or(0, |r| r.len());
        let mut partials: Vec<Vec<f64>> = (0..w)
            .map(|local| vec![0.0f64; self.bins[self.attr_lo + local]])
            .collect();
        for row in split {
            for (local, &v) in row.iter().enumerate() {
                partials[local]
                    [p3c_stats::histogram::bin_index(v, self.bins[self.attr_lo + local])] += 1.0;
            }
        }
        for (local, counts) in partials.into_iter().enumerate() {
            out.emit(self.attr_lo + local, counts);
        }
    }
}

/// Reducer: element-wise sum of the partial histograms of one attribute.
struct HistReducer;

impl Reducer<usize, Vec<f64>, (usize, Vec<f64>)> for HistReducer {
    fn reduce(&self, attr: &usize, values: Vec<Vec<f64>>, out: &mut Vec<(usize, Vec<f64>)>) {
        let mut total = values.into_iter().reduce(|mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        if let Some(counts) = total.take() {
            out.push((*attr, counts));
        }
    }
}

/// Runs the histogram job and assembles the per-attribute histograms.
pub fn histogram_job(
    engine: &Engine,
    rows: &[&[f64]],
    bins_per_attr: &[usize],
) -> Result<AttributeHistograms, MrError> {
    let result = engine.run(
        "p3c-histogram",
        rows,
        &HistMapper {
            bins: Arc::new(bins_per_attr.to_vec()),
            attr_lo: 0,
            attr_hi: usize::MAX,
        },
        &HistReducer,
    )?;
    Ok(assemble_histograms(bins_per_attr, result.output))
}

/// Runs the histogram job over the attribute slice `attrs` only,
/// returning the raw per-attribute bin counts. The DAG driver runs one
/// shard job per attribute range concurrently; merging the shard outputs
/// with [`assemble_histograms`] is *exact* — the reducer's per-attribute
/// sums are integer-valued, so they do not depend on how attributes are
/// grouped into jobs.
pub fn histogram_shard_job(
    engine: &Engine,
    rows: &[&[f64]],
    bins_per_attr: &[usize],
    attrs: std::ops::Range<usize>,
    job_name: &str,
) -> Result<Vec<(usize, Vec<f64>)>, MrError> {
    let result = engine.run(
        job_name,
        rows,
        &HistMapper {
            bins: Arc::new(bins_per_attr.to_vec()),
            attr_lo: attrs.start,
            attr_hi: attrs.end,
        },
        &HistReducer,
    )?;
    Ok(result.output)
}

/// Assembles reduced `(attribute, bin counts)` pairs — from one full job
/// or from the union of shard jobs — into [`AttributeHistograms`].
pub fn assemble_histograms(
    bins_per_attr: &[usize],
    parts: Vec<(usize, Vec<f64>)>,
) -> AttributeHistograms {
    let mut histograms: Vec<Histogram> = bins_per_attr
        .iter()
        .map(|&b| Histogram::new(b.max(1)))
        .collect();
    for (attr, counts) in parts {
        let bins = counts.len();
        let mut h = Histogram::new(bins);
        for (bin, &c) in counts.iter().enumerate() {
            let mid = (bin as f64 + 0.5) / bins as f64;
            h.add_weighted(mid, c);
        }
        histograms[attr] = h;
    }
    let bins = bins_per_attr.iter().copied().max().unwrap_or(1).max(1);
    AttributeHistograms { histograms, bins }
}

/// [`histogram_shard_job`] over rows already narrowed to the shard's
/// attribute slice `attrs` (width `attrs.len()`), as produced by a
/// projected columnar reload: the mapper rebases its keys by
/// `attrs.start`, so the output is identical to the full-width shard job
/// while only the shard's columns were ever decoded.
pub fn histogram_shard_job_projected(
    engine: &Engine,
    projected_rows: &[&[f64]],
    bins_per_attr: &[usize],
    attrs: std::ops::Range<usize>,
    job_name: &str,
) -> Result<Vec<(usize, Vec<f64>)>, MrError> {
    let result = engine.run(
        job_name,
        projected_rows,
        &ProjectedHistMapper {
            bins: Arc::new(bins_per_attr.to_vec()),
            attr_lo: attrs.start,
        },
        &HistReducer,
    )?;
    Ok(result.output)
}

/// The IQR job of the exact-IQR Freedman–Diaconis extension: mappers
/// compute per-split per-attribute quartiles; the reducer takes the
/// median of the split estimates (the same split-median aggregation the
/// paper's MVB statistics use). Returns per-attribute `(q1, q3)`.
pub fn iqr_job(engine: &Engine, rows: &[&[f64]]) -> Result<Vec<(f64, f64)>, MrError> {
    struct QuartileMapper;
    impl<'a> Mapper<&'a [f64], usize, (f64, f64)> for QuartileMapper {
        fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, (f64, f64)>) {
            self.map_split(std::slice::from_ref(row), out);
        }
        fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, (f64, f64)>) {
            let d = split.first().map_or(0, |r| r.len());
            let mut column = Vec::with_capacity(split.len());
            for attr in 0..d {
                column.clear();
                column.extend(split.iter().map(|r| r[attr]));
                if let Some(q) = quartiles(&column) {
                    out.emit(attr, q);
                }
            }
        }
    }
    struct QuartileReducer;
    impl Reducer<usize, (f64, f64), (usize, (f64, f64))> for QuartileReducer {
        fn reduce(&self, key: &usize, values: Vec<(f64, f64)>, out: &mut Vec<(usize, (f64, f64))>) {
            let mut q1s: Vec<f64> = values.iter().map(|&(q1, _)| q1).collect();
            let mut q3s: Vec<f64> = values.iter().map(|&(_, q3)| q3).collect();
            out.push((*key, (median_in_place(&mut q1s), median_in_place(&mut q3s))));
        }
    }
    let d = rows.first().map_or(0, |r| r.len());
    let result = engine.run("p3c-iqr", rows, &QuartileMapper, &QuartileReducer)?;
    let mut quartiles_out = vec![(0.25, 0.75); d];
    for (attr, q) in result.output {
        quartiles_out[attr] = q;
    }
    Ok(quartiles_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::build_histograms_rows;
    use p3c_mapreduce::MrConfig;

    fn sample_rows() -> Vec<Vec<f64>> {
        (0..500)
            .map(|i| {
                let t = (i as f64 + 0.5) / 500.0;
                vec![t, (t * 3.7).fract(), 0.42]
            })
            .collect()
    }

    #[test]
    fn job_matches_serial_histograms() {
        let data = sample_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let mr = histogram_job(&engine, &rows, &[8, 8, 8]).unwrap();
        let serial = build_histograms_rows(&rows, 8);
        assert_eq!(mr.histograms, serial.histograms);
        assert_eq!(mr.bins, 8);
    }

    #[test]
    fn job_records_metrics() {
        let data = sample_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 100,
            ..MrConfig::default()
        });
        histogram_job(&engine, &rows, &[8, 8, 8]).unwrap();
        let metrics = engine.cluster_metrics();
        assert_eq!(metrics.num_jobs(), 1);
        let job = &metrics.jobs()[0];
        assert_eq!(job.job_name, "p3c-histogram");
        assert_eq!(job.map_input_records, 500);
        // 5 splits × 3 attributes partial histograms.
        assert_eq!(job.map_output_records, 15);
        assert_eq!(job.reduce_input_groups, 3);
    }

    #[test]
    fn empty_input() {
        let rows: Vec<&[f64]> = vec![];
        let engine = Engine::with_defaults();
        let h = histogram_job(&engine, &rows, &[]).unwrap();
        assert_eq!(h.histograms.len(), 0);
    }

    #[test]
    fn per_attribute_bins_job() {
        let data = sample_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let mr = histogram_job(&engine, &rows, &[4, 16, 2]).unwrap();
        assert_eq!(mr.histograms[0].num_bins(), 4);
        assert_eq!(mr.histograms[1].num_bins(), 16);
        assert_eq!(mr.histograms[2].num_bins(), 2);
        for h in &mr.histograms {
            assert_eq!(h.total(), 500.0);
        }
    }

    #[test]
    fn iqr_job_estimates_quartiles() {
        // Attribute 0 is a uniform grid (IQR 0.5); attribute 2 is the
        // constant 0.42 (IQR 0). The split-median aggregation assumes
        // representative splits, so interleave the (generated-sorted)
        // rows with a coprime stride, as HDFS blocks of shuffled data are.
        let ordered = sample_rows();
        let n = ordered.len();
        let data: Vec<Vec<f64>> = (0..n).map(|i| ordered[(i * 137) % n].clone()).collect();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 50,
            ..MrConfig::default()
        });
        let q = iqr_job(&engine, &rows).unwrap();
        assert!((q[0].1 - q[0].0 - 0.5).abs() < 0.05, "attr0 IQR {:?}", q[0]);
        assert!((q[2].1 - q[2].0).abs() < 1e-12, "attr2 IQR {:?}", q[2]);
    }

    #[test]
    fn single_record_map_path() {
        // Exercise the per-record `map` implementation directly.
        let mapper = HistMapper {
            bins: Arc::new(vec![4, 4]),
            attr_lo: 0,
            attr_hi: usize::MAX,
        };
        let row: &[f64] = &[0.1, 0.9];
        let mut em = p3c_mapreduce::Emitter::new();
        mapper.map(&row, &mut em);
        let (pairs, _) = em.into_parts();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].1.iter().sum::<f64>(), 1.0);
        // A sharded mapper only emits its attribute slice.
        let sharded = HistMapper {
            bins: Arc::new(vec![4, 4]),
            attr_lo: 1,
            attr_hi: 2,
        };
        let mut em = p3c_mapreduce::Emitter::new();
        sharded.map(&row, &mut em);
        let (pairs, _) = em.into_parts();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 1);
    }

    #[test]
    fn projected_shard_equals_full_width_shard() {
        let data = sample_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let bins = [8, 16, 4];
        let engine = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let full = histogram_shard_job(&engine, &rows, &bins, 1..3, "wide").unwrap();
        // The same shard over rows narrowed to attributes 1..3.
        let narrowed: Vec<Vec<f64>> = data.iter().map(|r| r[1..3].to_vec()).collect();
        let narrow_refs: Vec<&[f64]> = narrowed.iter().map(|r| r.as_slice()).collect();
        let engine2 = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let projected =
            histogram_shard_job_projected(&engine2, &narrow_refs, &bins, 1..3, "narrow").unwrap();
        assert_eq!(projected, full);
    }

    #[test]
    fn shard_jobs_merge_to_the_full_histograms() {
        let data = sample_rows();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let bins = [8, 8, 8];
        let engine = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let full = histogram_job(&engine, &rows, &bins).unwrap();
        let sharded = Engine::new(MrConfig {
            split_size: 64,
            ..MrConfig::default()
        });
        let mut parts = histogram_shard_job(&sharded, &rows, &bins, 0..2, "shard-0").unwrap();
        parts.extend(histogram_shard_job(&sharded, &rows, &bins, 2..3, "shard-1").unwrap());
        let merged = assemble_histograms(&bins, parts);
        assert_eq!(merged.histograms, full.histograms);
        assert_eq!(merged.bins, full.bins);
    }
}
