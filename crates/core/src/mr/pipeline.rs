//! The P3C+-MR and P3C+-MR-Light drivers: chain the jobs of Sections
//! 5.1–5.7 (full) / Section 6 (Light) on a [`p3c_mapreduce::Engine`].

use crate::config::{BinRuleChoice, OutlierMethod, P3cParams};
use crate::cores::ClusterCore;
use crate::inspect::inspect_from_histograms;
use crate::mr::coregen::generate_cluster_cores_mr;
use crate::mr::em::{em_fit_mr, initialize_from_cores_mr};
use crate::mr::histogram::{histogram_job, iqr_job};
use crate::mr::inspect::{ai_histogram_job, tighten_job};
use crate::mr::outlier::{od_job_mcd, od_job_mvb, od_job_naive};
use crate::p3cplus::{P3cResult, PipelineStats};
use crate::relevance::relevant_intervals;
use p3c_dataset::{Clustering, Dataset, ProjectedCluster};
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The P3C+-MR algorithm (paper Section 5): every data-proportional step
/// is a MapReduce job on the supplied engine; job counts and shuffle
/// volumes are recorded in the engine's [`p3c_mapreduce::ClusterMetrics`].
pub struct P3cPlusMr<'e> {
    engine: &'e Engine,
    params: P3cParams,
}

impl<'e> P3cPlusMr<'e> {
    pub fn new(engine: &'e Engine, params: P3cParams) -> Self {
        params.validate();
        Self { engine, params }
    }

    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// Clusters a normalized dataset through the full MR pipeline.
    pub fn cluster(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let rows = data.row_refs();
        let (cores, mut stats) = core_phase_mr(self.engine, &rows, data.len(), &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let arel: Vec<usize> = arel_of(&cores);

        // EM (init jobs + 2 jobs per iteration).
        let init = initialize_from_cores_mr(self.engine, &cores, &rows, &arel)?;
        let fit = em_fit_mr(self.engine, init, &rows, self.params.em_max_iters, self.params.em_tol)?;
        stats.em_iterations = fit.iterations;
        let eval = Arc::new(fit.model.evaluator());

        // Outlier detection.
        let assignment = match self.params.outlier {
            OutlierMethod::Naive => od_job_naive(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
            )?,
            OutlierMethod::Mvb => od_job_mvb(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
            )?,
            OutlierMethod::Mcd => od_job_mcd(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
                2,
            )?,
        };
        stats.outliers = assignment.iter().filter(|&&a| a == -1).count();

        // Attribute inspection (histogram job + driver-side marking).
        let k = cores.len();
        let items: Vec<(i64, &[f64])> =
            assignment.iter().copied().zip(rows.iter().copied()).collect();
        let mut member_counts = vec![0usize; k];
        for &a in &assignment {
            if a >= 0 {
                member_counts[a as usize] += 1;
            }
        }
        let bins_per_cluster: Vec<usize> = member_counts
            .iter()
            .map(|&m| self.params.bin_rule.to_rule().num_bins(m).max(1))
            .collect();
        let hists = ai_histogram_job(self.engine, &items, &bins_per_cluster)?;
        let mut attrs_per_cluster: Vec<Vec<usize>> = Vec::with_capacity(k);
        for (c, core) in cores.iter().enumerate() {
            let known = core.signature.attributes();
            let extra =
                inspect_from_histograms(&hists[c], member_counts[c], &known, &self.params);
            let mut attrs: BTreeSet<usize> = known;
            attrs.extend(extra.iter().map(|iv| iv.attr));
            attrs_per_cluster.push(attrs.into_iter().collect());
        }

        // Interval tightening job.
        let intervals = tighten_job(self.engine, "p3c-interval-tightening", &items, &attrs_per_cluster)?;

        // Assemble.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, &a) in assignment.iter().enumerate() {
            if a < 0 {
                outliers.push(i);
            } else {
                members[a as usize].push(i);
            }
        }
        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                ProjectedCluster::new(
                    members[c].clone(),
                    attrs_per_cluster[c].iter().copied().collect(),
                    intervals[c].clone(),
                )
            })
            .collect();
        Ok(P3cResult { clustering: Clustering::new(clusters, outliers), cores, stats })
    }
}

/// The P3C+-MR-Light algorithm (paper Section 6): skips EM and outlier
/// detection; support-set membership defines the clusters, and attribute
/// inspection uses only points belonging to exactly one cluster core.
pub struct P3cPlusMrLight<'e> {
    engine: &'e Engine,
    params: P3cParams,
}

impl<'e> P3cPlusMrLight<'e> {
    pub fn new(engine: &'e Engine, params: P3cParams) -> Self {
        params.validate();
        Self { engine, params }
    }

    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    pub fn cluster(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let rows = data.row_refs();
        let (cores, mut stats) = core_phase_mr(self.engine, &rows, data.len(), &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let k = cores.len();

        // Membership job: m′(x) = the cores whose support set contains x.
        let memberships = membership_job(self.engine, &cores, &rows)?;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut unique_label: Vec<i64> = vec![-1; rows.len()];
        let mut outliers = Vec::new();
        for (i, containing) in memberships.iter().enumerate() {
            if containing.is_empty() {
                outliers.push(i);
                continue;
            }
            for &c in containing {
                members[c as usize].push(i);
            }
            if let [only] = containing.as_slice() {
                unique_label[i] = *only as i64;
            }
        }
        stats.outliers = outliers.len();

        // AI over the uniquely-assigned points (Section 6's histogram).
        let unique_items: Vec<(i64, &[f64])> =
            unique_label.iter().copied().zip(rows.iter().copied()).collect();
        let unique_counts: Vec<usize> = (0..k)
            .map(|c| unique_label.iter().filter(|&&l| l == c as i64).count())
            .collect();
        let bins_per_cluster: Vec<usize> = unique_counts
            .iter()
            .map(|&m| self.params.bin_rule.to_rule().num_bins(m).max(1))
            .collect();
        let hists = ai_histogram_job(self.engine, &unique_items, &bins_per_cluster)?;
        let mut core_attrs: Vec<Vec<usize>> = Vec::with_capacity(k);
        let mut ai_attrs: Vec<Vec<usize>> = Vec::with_capacity(k);
        for (c, core) in cores.iter().enumerate() {
            let known = core.signature.attributes();
            let extra = inspect_from_histograms(&hists[c], unique_counts[c], &known, &self.params);
            core_attrs.push(known.iter().copied().collect());
            ai_attrs.push(extra.iter().map(|iv| iv.attr).collect());
        }

        // Tightening: core attributes over the full support sets
        // (multi-membership), AI attributes over the unique members.
        let support_items: Vec<(i64, &[f64])> = memberships
            .iter()
            .enumerate()
            .flat_map(|(i, containing)| {
                containing.iter().map(move |&c| (c as i64, i))
            })
            .map(|(c, i)| (c, rows[i]))
            .collect();
        let core_intervals =
            tighten_job(self.engine, "p3c-light-tighten-core", &support_items, &core_attrs)?;
        let any_ai = ai_attrs.iter().any(|a| !a.is_empty());
        let ai_intervals = if any_ai {
            tighten_job(self.engine, "p3c-light-tighten-ai", &unique_items, &ai_attrs)?
        } else {
            vec![Vec::new(); k]
        };

        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                let mut attrs: BTreeSet<usize> = core_attrs[c].iter().copied().collect();
                attrs.extend(ai_attrs[c].iter().copied());
                let mut intervals = core_intervals[c].clone();
                intervals.extend(ai_intervals[c].iter().copied());
                ProjectedCluster::new(members[c].clone(), attrs, intervals)
            })
            .collect();
        Ok(P3cResult { clustering: Clustering::new(clusters, outliers), cores, stats })
    }
}

/// Histogram job → relevant intervals → MR core generation → redundancy
/// filter: the phase shared by both MR variants.
fn core_phase_mr(
    engine: &Engine,
    rows: &[&[f64]],
    n: usize,
    params: &P3cParams,
) -> Result<(Vec<ClusterCore>, PipelineStats), MrError> {
    let mut stats = PipelineStats::default();
    let d = rows.first().map_or(0, |r| r.len());
    // Per-attribute bin counts; the exact-IQR rule adds one quartile job.
    let bins_per_attr: Vec<usize> = match params.bin_rule {
        BinRuleChoice::FreedmanDiaconisIqr => {
            let quartiles = iqr_job(engine, rows)?;
            quartiles
                .into_iter()
                .map(|(q1, q3)| crate::p3cplus::iqr_bins(n, q3 - q1))
                .collect()
        }
        _ => vec![params.bin_rule.to_rule().num_bins(n).max(1); d],
    };
    let hists = histogram_job(engine, rows, &bins_per_attr)?;
    stats.bins = hists.bins;
    let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
    stats.relevant_intervals = intervals.len();
    let gen = generate_cluster_cores_mr(engine, &intervals, rows, params)?;
    stats.core_gen = gen.stats.clone();
    let mut cores = gen.cores;
    if params.use_redundancy_filter {
        let (kept, removed) = crate::redundancy::filter_redundant(cores);
        cores = kept;
        stats.redundancy_removed = removed;
    }
    stats.cores = cores.len();
    Ok((cores, stats))
}

/// Map-only membership job for the Light variant: for each point the list
/// of cluster cores whose support set contains it.
fn membership_job(
    engine: &Engine,
    cores: &[ClusterCore],
    rows: &[&[f64]],
) -> Result<Vec<Vec<u32>>, MrError> {
    struct MembershipMapper {
        cores: Arc<Vec<ClusterCore>>,
    }
    impl<'a> Mapper<&'a [f64], (), Vec<u32>> for MembershipMapper {
        fn map(&self, row: &&'a [f64], out: &mut Emitter<(), Vec<u32>>) {
            let containing: Vec<u32> = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, core)| core.signature.contains(row))
                .map(|(c, _)| c as u32)
                .collect();
            out.emit((), containing);
        }
    }
    let cache = cores.iter().map(|c| 4 + c.signature.len() * 32).sum();
    let result = engine.run_map_only_with_cache(
        "p3c-light-membership",
        rows,
        cache,
        &MembershipMapper { cores: Arc::new(cores.to_vec()) },
    )?;
    Ok(result.output)
}

fn arel_of(cores: &[ClusterCore]) -> Vec<usize> {
    cores
        .iter()
        .flat_map(|c| c.signature.attributes())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn empty_result(n: usize, stats: PipelineStats) -> P3cResult {
    P3cResult {
        clustering: Clustering::new(Vec::new(), (0..n).collect()),
        cores: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};
    use p3c_eval::e4sc;
    use p3c_mapreduce::MrConfig;

    fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n,
            d: 12,
            num_clusters: k,
            noise_fraction: noise,
            max_cluster_dims: 5,
            seed,
            ..SyntheticSpec::default()
        }
    }

    fn engine() -> Engine {
        Engine::new(MrConfig { split_size: 512, num_reducers: 4, ..MrConfig::default() })
    }

    #[test]
    fn mr_full_pipeline_recovers_clusters() {
        let data = generate(&spec(3000, 3, 0.05, 11));
        let eng = engine();
        let result = P3cPlusMr::new(&eng, P3cParams::default()).cluster(&data.dataset).unwrap();
        assert_eq!(result.clustering.num_clusters(), 3, "stats: {:?}", result.stats);
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.6, "E4SC = {q}");
        // The pipeline must have run a realistic number of jobs.
        let jobs = eng.cluster_metrics().num_jobs();
        assert!(jobs >= 8, "only {jobs} jobs recorded");
    }

    #[test]
    fn mr_light_pipeline_recovers_clusters() {
        let data = generate(&spec(3000, 3, 0.1, 5));
        let eng = engine();
        let result =
            P3cPlusMrLight::new(&eng, P3cParams::default()).cluster(&data.dataset).unwrap();
        assert_eq!(result.clustering.num_clusters(), 3, "stats: {:?}", result.stats);
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.7, "E4SC = {q}");
    }

    #[test]
    fn light_runs_fewer_jobs_than_full() {
        let data = generate(&spec(2000, 3, 0.1, 7));
        let eng_full = engine();
        let eng_light = engine();
        P3cPlusMr::new(&eng_full, P3cParams::default()).cluster(&data.dataset).unwrap();
        P3cPlusMrLight::new(&eng_light, P3cParams::default()).cluster(&data.dataset).unwrap();
        let full_jobs = eng_full.cluster_metrics().num_jobs();
        let light_jobs = eng_light.cluster_metrics().num_jobs();
        assert!(
            light_jobs < full_jobs,
            "light {light_jobs} vs full {full_jobs} jobs"
        );
    }

    #[test]
    fn mr_light_matches_serial_light_cores() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let eng = engine();
        let mr = P3cPlusMrLight::new(&eng, P3cParams::default()).cluster(&data.dataset).unwrap();
        let serial = crate::p3cplus::P3cPlusLight::new(P3cParams::default())
            .cluster(&data.dataset);
        let mr_sigs: Vec<String> =
            mr.cores.iter().map(|c| c.signature.to_string()).collect();
        let serial_sigs: Vec<String> =
            serial.cores.iter().map(|c| c.signature.to_string()).collect();
        assert_eq!(mr_sigs, serial_sigs);
        // And the clusterings agree point-for-point.
        assert_eq!(mr.clustering.clusters.len(), serial.clustering.clusters.len());
        for (a, b) in mr.clustering.clusters.iter().zip(&serial.clustering.clusters) {
            assert_eq!(a.points, b.points);
            assert_eq!(a.attributes, b.attributes);
        }
        assert_eq!(mr.clustering.outliers, serial.clustering.outliers);
    }

    #[test]
    fn exact_iqr_binning_mr_matches_serial() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let params = P3cParams {
            bin_rule: crate::config::BinRuleChoice::FreedmanDiaconisIqr,
            ..P3cParams::default()
        };
        let eng = Engine::new(MrConfig { split_size: 100_000, ..MrConfig::default() });
        // With one split the MR quartile job computes exact quartiles, so
        // MR and serial pipelines must agree on the cores.
        let mr = P3cPlusMrLight::new(&eng, params.clone()).cluster(&data.dataset).unwrap();
        let serial =
            crate::p3cplus::P3cPlusLight::new(params).cluster(&data.dataset);
        let mr_sigs: Vec<String> =
            mr.cores.iter().map(|c| c.signature.to_string()).collect();
        let serial_sigs: Vec<String> =
            serial.cores.iter().map(|c| c.signature.to_string()).collect();
        assert_eq!(mr_sigs, serial_sigs);
        // The ledger shows the extra quartile job first.
        assert_eq!(eng.cluster_metrics().jobs()[0].job_name, "p3c-iqr");
    }

    #[test]
    fn empty_data_mr() {
        let ds = p3c_dataset::Dataset::from_rows(vec![]);
        let eng = engine();
        let result = P3cPlusMr::new(&eng, P3cParams::default()).cluster(&ds).unwrap();
        assert_eq!(result.clustering.num_clusters(), 0);
    }

    #[test]
    fn fault_injected_pipeline_still_correct() {
        let data = generate(&spec(2000, 2, 0.05, 3));
        let clean_engine = engine();
        let faulty_engine = Engine::new(MrConfig {
            split_size: 512,
            fault: Some(p3c_mapreduce::FaultPlan::new(0.2, 99)),
            max_attempts: 20,
            ..MrConfig::default()
        });
        let clean = P3cPlusMrLight::new(&clean_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let faulty = P3cPlusMrLight::new(&faulty_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        assert_eq!(clean.clustering, faulty.clustering);
        let failed: u64 = faulty_engine
            .cluster_metrics()
            .jobs()
            .iter()
            .map(|j| j.failed_attempts)
            .sum();
        assert!(failed > 0, "fault plan never struck");
    }
}
