//! The P3C+-MR and P3C+-MR-Light drivers: chain the jobs of Sections
//! 5.1–5.7 (full) / Section 6 (Light) on a [`p3c_mapreduce::Engine`].

use crate::config::{BinRuleChoice, OutlierMethod, P3cParams};
use crate::cores::ClusterCore;
use crate::inspect::inspect_from_histograms;
use crate::mr::coregen::generate_cluster_cores_mr;
use crate::mr::em::{em_fit_mr, initialize_from_cores_mr, MrEmFit};
use crate::mr::histogram::{
    assemble_histograms, histogram_job, histogram_shard_job_projected, iqr_job,
};
use crate::mr::inspect::{ai_histogram_job, tighten_job};
use crate::mr::outlier::{od_job_mcd, od_job_mvb, od_job_naive};
use crate::p3cplus::{P3cResult, PipelineStats};
use crate::relevance::relevant_intervals;
use crate::types::{Interval, Signature};
use p3c_dataset::{
    colseg, AttrInterval, Clustering, ColumnSet, Dataset, ProjectedCluster, RowBlock,
};
use p3c_mapreduce::{
    take_dataset, DagError, DagScheduler, DatasetHandle, DatasetStore, Emitter, Engine, JobGraph,
    JobKind, JobNode, Mapper, MrError, NodeCtx, SchedulerChoice, SegmentedCodec,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The P3C+-MR algorithm (paper Section 5): every data-proportional step
/// is a MapReduce job on the supplied engine; job counts and shuffle
/// volumes are recorded in the engine's [`p3c_mapreduce::ClusterMetrics`].
pub struct P3cPlusMr<'e> {
    engine: &'e Engine,
    params: P3cParams,
}

impl<'e> P3cPlusMr<'e> {
    /// New MR pipeline over `engine` with validated parameters.
    pub fn new(engine: &'e Engine, params: P3cParams) -> Self {
        params.validate();
        Self { engine, params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// Clusters a normalized dataset through the full MR pipeline.
    pub fn cluster(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let rows = data.row_refs();
        let (cores, mut stats) = core_phase_mr(self.engine, &rows, data.len(), &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let arel: Vec<usize> = arel_of(&cores);

        // EM (init jobs + 2 jobs per iteration).
        let init = initialize_from_cores_mr(self.engine, &cores, &rows, &arel)?;
        let fit = em_fit_mr(
            self.engine,
            init,
            &rows,
            self.params.em_max_iters,
            self.params.em_tol,
        )?;
        stats.em_iterations = fit.iterations;
        let eval = Arc::new(fit.model.evaluator());

        // Outlier detection.
        let assignment = match self.params.outlier {
            OutlierMethod::Naive => od_job_naive(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
            )?,
            OutlierMethod::Mvb => od_job_mvb(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
            )?,
            OutlierMethod::Mcd => od_job_mcd(
                self.engine,
                Arc::clone(&eval),
                &rows,
                self.params.alpha_outlier,
                arel.len(),
                2,
            )?,
        };
        stats.outliers = assignment.iter().filter(|&&a| a == -1).count();

        // Attribute inspection (histogram job + driver-side marking).
        let k = cores.len();
        let items: Vec<(i64, &[f64])> = assignment
            .iter()
            .copied()
            .zip(rows.iter().copied())
            .collect();
        let mut member_counts = vec![0usize; k];
        for &a in &assignment {
            if a >= 0 {
                member_counts[a as usize] += 1;
            }
        }
        let bins_per_cluster: Vec<usize> = member_counts
            .iter()
            .map(|&m| self.params.bin_rule.to_rule().num_bins(m).max(1))
            .collect();
        let hists = ai_histogram_job(self.engine, &items, &bins_per_cluster)?;
        let mut attrs_per_cluster: Vec<Vec<usize>> = Vec::with_capacity(k);
        for (c, core) in cores.iter().enumerate() {
            let known = core.signature.attributes();
            let extra = inspect_from_histograms(&hists[c], member_counts[c], &known, &self.params);
            let mut attrs: BTreeSet<usize> = known;
            attrs.extend(extra.iter().map(|iv| iv.attr));
            attrs_per_cluster.push(attrs.into_iter().collect());
        }

        // Interval tightening job.
        let intervals = tighten_job(
            self.engine,
            "p3c-interval-tightening",
            &items,
            &attrs_per_cluster,
        )?;

        // Assemble.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, &a) in assignment.iter().enumerate() {
            if a < 0 {
                outliers.push(i);
            } else {
                members[a as usize].push(i);
            }
        }
        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                ProjectedCluster::new(
                    members[c].clone(),
                    attrs_per_cluster[c].iter().copied().collect(),
                    intervals[c].clone(),
                )
            })
            .collect();
        Ok(P3cResult {
            clustering: Clustering::new(clusters, outliers),
            cores,
            stats,
        })
    }

    /// Clusters through the chosen scheduler: [`SchedulerChoice::Serial`]
    /// chains the jobs as [`Self::cluster`] does, [`SchedulerChoice::Dag`]
    /// runs them as job graphs with materialized datasets.
    pub fn cluster_with(
        &self,
        data: &Dataset,
        scheduler: SchedulerChoice,
    ) -> Result<P3cResult, MrError> {
        match scheduler {
            SchedulerChoice::Serial => self.cluster(data),
            SchedulerChoice::Dag => self.cluster_dag(data),
        }
    }

    /// The full pipeline on the DAG scheduler. Two graphs run back to
    /// back — `p3c-core` (concurrent histogram shards feeding core
    /// generation) and `p3c-model` (the EM → outlier → inspection →
    /// tightening chain) — with the row set cached once in a
    /// [`DatasetStore`] instead of re-shipped into every job. The
    /// clustering is byte-identical to [`Self::cluster`].
    pub fn cluster_dag(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let store = DatasetStore::new();
        let rows_ds = seed_rows(&store, data);
        let d = data.row_refs().first().map_or(0, |r| r.len());
        let (cores, mut stats) =
            core_phase_dag(self.engine, &store, &rows_ds, data.len(), d, &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let arel: Vec<usize> = arel_of(&cores);
        let k = cores.len();

        let cores_ds: DatasetHandle<Vec<ClusterCore>> = DatasetHandle::new("cores");
        let fit_ds: DatasetHandle<MrEmFit> = DatasetHandle::new("em-fit");
        let assign_ds: DatasetHandle<Vec<i64>> = DatasetHandle::new("assignment");
        let attrs_ds: DatasetHandle<Vec<Vec<usize>>> = DatasetHandle::new("attrs-per-cluster");
        let intervals_ds: DatasetHandle<Vec<Vec<AttrInterval>>> = DatasetHandle::new("intervals");

        let mut graph = JobGraph::new("p3c-model");
        graph.add(
            JobNode::new("em", JobKind::MapReduce, {
                let (rows_ds, cores_ds, fit_ds) =
                    (rows_ds.clone(), cores_ds.clone(), fit_ds.clone());
                let arel = arel.clone();
                let (max_iters, tol) = (self.params.em_max_iters, self.params.em_tol);
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let cores = ctx.fetch(&cores_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let init = initialize_from_cores_mr(ctx.engine, &cores, &refs, &arel)?;
                    let fit = em_fit_mr(ctx.engine, init, &refs, max_iters, tol)?;
                    ctx.put(&fit_ds, fit, 1024);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&cores_ds)
            .output(&fit_ds),
        );
        graph.add(
            JobNode::new("outlier-detection", JobKind::MapReduce, {
                let (rows_ds, fit_ds, assign_ds) =
                    (rows_ds.clone(), fit_ds.clone(), assign_ds.clone());
                let (method, alpha, arel_len) =
                    (self.params.outlier, self.params.alpha_outlier, arel.len());
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let fit = ctx.fetch(&fit_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let eval = Arc::new(fit.model.evaluator());
                    let assignment = match method {
                        OutlierMethod::Naive => {
                            od_job_naive(ctx.engine, eval, &refs, alpha, arel_len)?
                        }
                        OutlierMethod::Mvb => od_job_mvb(ctx.engine, eval, &refs, alpha, arel_len)?,
                        OutlierMethod::Mcd => {
                            od_job_mcd(ctx.engine, eval, &refs, alpha, arel_len, 2)?
                        }
                    };
                    let bytes = 8 * assignment.len();
                    ctx.put(&assign_ds, assignment, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&fit_ds)
            .output(&assign_ds),
        );
        graph.add(
            JobNode::new("attribute-inspection", JobKind::MapReduce, {
                let (rows_ds, assign_ds, cores_ds, attrs_ds) = (
                    rows_ds.clone(),
                    assign_ds.clone(),
                    cores_ds.clone(),
                    attrs_ds.clone(),
                );
                let params = self.params.clone();
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let assignment = ctx.fetch(&assign_ds)?;
                    let cores = ctx.fetch(&cores_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let k = cores.len();
                    let items: Vec<(i64, &[f64])> = assignment
                        .iter()
                        .copied()
                        .zip(refs.iter().copied())
                        .collect();
                    let mut member_counts = vec![0usize; k];
                    for &a in assignment.iter() {
                        if a >= 0 {
                            member_counts[a as usize] += 1;
                        }
                    }
                    let bins_per_cluster: Vec<usize> = member_counts
                        .iter()
                        .map(|&m| params.bin_rule.to_rule().num_bins(m).max(1))
                        .collect();
                    let hists = ai_histogram_job(ctx.engine, &items, &bins_per_cluster)?;
                    let mut attrs_per_cluster: Vec<Vec<usize>> = Vec::with_capacity(k);
                    for (c, core) in cores.iter().enumerate() {
                        let known = core.signature.attributes();
                        let extra =
                            inspect_from_histograms(&hists[c], member_counts[c], &known, &params);
                        let mut attrs: BTreeSet<usize> = known;
                        attrs.extend(extra.iter().map(|iv| iv.attr));
                        attrs_per_cluster.push(attrs.into_iter().collect());
                    }
                    ctx.put(&attrs_ds, attrs_per_cluster, 16 * k);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&assign_ds)
            .input(&cores_ds)
            .output(&attrs_ds),
        );
        graph.add(
            JobNode::new("interval-tightening", JobKind::MapReduce, {
                let (rows_ds, assign_ds, attrs_ds, intervals_ds) = (
                    rows_ds.clone(),
                    assign_ds.clone(),
                    attrs_ds.clone(),
                    intervals_ds.clone(),
                );
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let assignment = ctx.fetch(&assign_ds)?;
                    let attrs = ctx.fetch(&attrs_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let items: Vec<(i64, &[f64])> = assignment
                        .iter()
                        .copied()
                        .zip(refs.iter().copied())
                        .collect();
                    let intervals =
                        tighten_job(ctx.engine, "p3c-interval-tightening", &items, &attrs)?;
                    let bytes = 32 * attrs.len();
                    ctx.put(&intervals_ds, intervals, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&assign_ds)
            .input(&attrs_ds)
            .output(&intervals_ds),
        );

        DagScheduler::new(self.engine)
            .run(&graph, &store)
            .map_err(DagError::into_mr)?;

        // `MrEmFit` is not `Clone`; read the iteration count through the
        // store's `Arc` instead of taking the dataset out.
        let fit = store.get(&fit_ds).map_err(|e| MrError::Dag {
            node: "<driver>".to_string(),
            message: e.to_string(),
        })?;
        stats.em_iterations = fit.iterations;
        let assignment: Vec<i64> = take_dataset(&store, &assign_ds)?;
        let attrs_per_cluster: Vec<Vec<usize>> = take_dataset(&store, &attrs_ds)?;
        let intervals: Vec<Vec<AttrInterval>> = take_dataset(&store, &intervals_ds)?;
        stats.outliers = assignment.iter().filter(|&&a| a == -1).count();

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, &a) in assignment.iter().enumerate() {
            if a < 0 {
                outliers.push(i);
            } else {
                members[a as usize].push(i);
            }
        }
        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                ProjectedCluster::new(
                    members[c].clone(),
                    attrs_per_cluster[c].iter().copied().collect(),
                    intervals[c].clone(),
                )
            })
            .collect();
        Ok(P3cResult {
            clustering: Clustering::new(clusters, outliers),
            cores,
            stats,
        })
    }
}

/// The P3C+-MR-Light algorithm (paper Section 6): skips EM and outlier
/// detection; support-set membership defines the clusters, and attribute
/// inspection uses only points belonging to exactly one cluster core.
pub struct P3cPlusMrLight<'e> {
    engine: &'e Engine,
    params: P3cParams,
}

impl<'e> P3cPlusMrLight<'e> {
    /// New MR-Light pipeline over `engine` with validated parameters.
    pub fn new(engine: &'e Engine, params: P3cParams) -> Self {
        params.validate();
        Self { engine, params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &P3cParams {
        &self.params
    }

    /// Runs the MR-Light pipeline (no EM refinement) on `data`.
    pub fn cluster(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let rows = data.row_refs();
        let (cores, mut stats) = core_phase_mr(self.engine, &rows, data.len(), &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let k = cores.len();

        // Membership job: m′(x) = the cores whose support set contains x.
        let memberships = membership_job(self.engine, &cores, &rows)?;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut unique_label: Vec<i64> = vec![-1; rows.len()];
        let mut outliers = Vec::new();
        for (i, containing) in memberships.iter().enumerate() {
            if containing.is_empty() {
                outliers.push(i);
                continue;
            }
            for &c in containing {
                members[c as usize].push(i);
            }
            if let [only] = containing.as_slice() {
                unique_label[i] = *only as i64;
            }
        }
        stats.outliers = outliers.len();

        // AI over the uniquely-assigned points (Section 6's histogram).
        let unique_items: Vec<(i64, &[f64])> = unique_label
            .iter()
            .copied()
            .zip(rows.iter().copied())
            .collect();
        let unique_counts: Vec<usize> = (0..k)
            .map(|c| unique_label.iter().filter(|&&l| l == c as i64).count())
            .collect();
        let bins_per_cluster: Vec<usize> = unique_counts
            .iter()
            .map(|&m| self.params.bin_rule.to_rule().num_bins(m).max(1))
            .collect();
        let hists = ai_histogram_job(self.engine, &unique_items, &bins_per_cluster)?;
        let mut core_attrs: Vec<Vec<usize>> = Vec::with_capacity(k);
        let mut ai_attrs: Vec<Vec<usize>> = Vec::with_capacity(k);
        for (c, core) in cores.iter().enumerate() {
            let known = core.signature.attributes();
            let extra = inspect_from_histograms(&hists[c], unique_counts[c], &known, &self.params);
            core_attrs.push(known.iter().copied().collect());
            ai_attrs.push(extra.iter().map(|iv| iv.attr).collect());
        }

        // Tightening: core attributes over the full support sets
        // (multi-membership), AI attributes over the unique members.
        let support_items: Vec<(i64, &[f64])> = memberships
            .iter()
            .enumerate()
            .flat_map(|(i, containing)| containing.iter().map(move |&c| (c as i64, i)))
            .map(|(c, i)| (c, rows[i]))
            .collect();
        let core_intervals = tighten_job(
            self.engine,
            "p3c-light-tighten-core",
            &support_items,
            &core_attrs,
        )?;
        let any_ai = ai_attrs.iter().any(|a| !a.is_empty());
        let ai_intervals = if any_ai {
            tighten_job(
                self.engine,
                "p3c-light-tighten-ai",
                &unique_items,
                &ai_attrs,
            )?
        } else {
            vec![Vec::new(); k]
        };

        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                let mut attrs: BTreeSet<usize> = core_attrs[c].iter().copied().collect();
                attrs.extend(ai_attrs[c].iter().copied());
                let mut intervals = core_intervals[c].clone();
                intervals.extend(ai_intervals[c].iter().copied());
                ProjectedCluster::new(members[c].clone(), attrs, intervals)
            })
            .collect();
        Ok(P3cResult {
            clustering: Clustering::new(clusters, outliers),
            cores,
            stats,
        })
    }

    /// Clusters through the chosen scheduler (see [`P3cPlusMr::cluster_with`]).
    pub fn cluster_with(
        &self,
        data: &Dataset,
        scheduler: SchedulerChoice,
    ) -> Result<P3cResult, MrError> {
        match scheduler {
            SchedulerChoice::Serial => self.cluster(data),
            SchedulerChoice::Dag => self.cluster_dag(data),
        }
    }

    /// The Light pipeline on the DAG scheduler: the shared `p3c-core`
    /// graph, then a `p3c-light-model` graph where attribute inspection
    /// and core-interval tightening run concurrently off the membership
    /// job's output. Byte-identical to [`Self::cluster`].
    pub fn cluster_dag(&self, data: &Dataset) -> Result<P3cResult, MrError> {
        let store = DatasetStore::new();
        let rows_ds = seed_rows(&store, data);
        let d = data.row_refs().first().map_or(0, |r| r.len());
        let (cores, mut stats) =
            core_phase_dag(self.engine, &store, &rows_ds, data.len(), d, &self.params)?;
        if cores.is_empty() {
            return Ok(empty_result(data.len(), stats));
        }
        let k = cores.len();

        let cores_ds: DatasetHandle<Vec<ClusterCore>> = DatasetHandle::new("cores");
        let memberships_ds: DatasetHandle<Vec<Vec<u32>>> = DatasetHandle::new("memberships");
        let ai_attrs_ds: DatasetHandle<Vec<Vec<usize>>> = DatasetHandle::new("ai-attrs");
        let core_intervals_ds: DatasetHandle<Vec<Vec<AttrInterval>>> =
            DatasetHandle::new("core-intervals");
        let ai_intervals_ds: DatasetHandle<Vec<Vec<AttrInterval>>> =
            DatasetHandle::new("ai-intervals");

        let mut graph = JobGraph::new("p3c-light-model");
        graph.add(
            JobNode::new("membership", JobKind::MapOnly, {
                let (rows_ds, cores_ds, memberships_ds) =
                    (rows_ds.clone(), cores_ds.clone(), memberships_ds.clone());
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let cores = ctx.fetch(&cores_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let memberships = membership_job(ctx.engine, &cores, &refs)?;
                    let bytes = memberships.iter().map(|m| 8 + 4 * m.len()).sum();
                    ctx.put(&memberships_ds, memberships, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&cores_ds)
            .output(&memberships_ds),
        );
        graph.add(
            JobNode::new("attribute-inspection", JobKind::MapReduce, {
                let (rows_ds, memberships_ds, cores_ds, ai_attrs_ds) = (
                    rows_ds.clone(),
                    memberships_ds.clone(),
                    cores_ds.clone(),
                    ai_attrs_ds.clone(),
                );
                let params = self.params.clone();
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let memberships = ctx.fetch(&memberships_ds)?;
                    let cores = ctx.fetch(&cores_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let k = cores.len();
                    let unique_label = unique_labels(&memberships);
                    let unique_items: Vec<(i64, &[f64])> = unique_label
                        .iter()
                        .copied()
                        .zip(refs.iter().copied())
                        .collect();
                    let unique_counts: Vec<usize> = (0..k)
                        .map(|c| unique_label.iter().filter(|&&l| l == c as i64).count())
                        .collect();
                    let bins_per_cluster: Vec<usize> = unique_counts
                        .iter()
                        .map(|&m| params.bin_rule.to_rule().num_bins(m).max(1))
                        .collect();
                    let hists = ai_histogram_job(ctx.engine, &unique_items, &bins_per_cluster)?;
                    let mut ai_attrs: Vec<Vec<usize>> = Vec::with_capacity(k);
                    for (c, core) in cores.iter().enumerate() {
                        let known = core.signature.attributes();
                        let extra =
                            inspect_from_histograms(&hists[c], unique_counts[c], &known, &params);
                        ai_attrs.push(extra.iter().map(|iv| iv.attr).collect());
                    }
                    ctx.put(&ai_attrs_ds, ai_attrs, 16 * k);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&memberships_ds)
            .input(&cores_ds)
            .output(&ai_attrs_ds),
        );
        graph.add(
            JobNode::new("tighten-core", JobKind::MapReduce, {
                let (rows_ds, memberships_ds, cores_ds, core_intervals_ds) = (
                    rows_ds.clone(),
                    memberships_ds.clone(),
                    cores_ds.clone(),
                    core_intervals_ds.clone(),
                );
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let memberships = ctx.fetch(&memberships_ds)?;
                    let cores = ctx.fetch(&cores_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let core_attrs: Vec<Vec<usize>> = cores
                        .iter()
                        .map(|c| c.signature.attributes().into_iter().collect())
                        .collect();
                    let support_items: Vec<(i64, &[f64])> = memberships
                        .iter()
                        .enumerate()
                        .flat_map(|(i, containing)| containing.iter().map(move |&c| (c as i64, i)))
                        .map(|(c, i)| (c, refs[i]))
                        .collect();
                    let intervals = tighten_job(
                        ctx.engine,
                        "p3c-light-tighten-core",
                        &support_items,
                        &core_attrs,
                    )?;
                    let bytes = 32 * core_attrs.len();
                    ctx.put(&core_intervals_ds, intervals, bytes);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&memberships_ds)
            .input(&cores_ds)
            .output(&core_intervals_ds),
        );
        graph.add(
            JobNode::new("tighten-ai", JobKind::MapReduce, {
                let (rows_ds, memberships_ds, ai_attrs_ds, ai_intervals_ds) = (
                    rows_ds.clone(),
                    memberships_ds.clone(),
                    ai_attrs_ds.clone(),
                    ai_intervals_ds.clone(),
                );
                move |ctx: &NodeCtx| {
                    let rows = ctx.fetch(&rows_ds)?;
                    let memberships = ctx.fetch(&memberships_ds)?;
                    let ai_attrs = ctx.fetch(&ai_attrs_ds)?;
                    let refs: Vec<&[f64]> = rows.row_refs();
                    let k = ai_attrs.len();
                    let any_ai = ai_attrs.iter().any(|a| !a.is_empty());
                    let intervals = if any_ai {
                        let unique_label = unique_labels(&memberships);
                        let unique_items: Vec<(i64, &[f64])> = unique_label
                            .iter()
                            .copied()
                            .zip(refs.iter().copied())
                            .collect();
                        tighten_job(ctx.engine, "p3c-light-tighten-ai", &unique_items, &ai_attrs)?
                    } else {
                        vec![Vec::new(); k]
                    };
                    ctx.put(&ai_intervals_ds, intervals, 32 * k);
                    Ok(())
                }
            })
            .input(&rows_ds)
            .input(&memberships_ds)
            .input(&ai_attrs_ds)
            .output(&ai_intervals_ds),
        );

        DagScheduler::new(self.engine)
            .run(&graph, &store)
            .map_err(DagError::into_mr)?;

        let memberships: Vec<Vec<u32>> = take_dataset(&store, &memberships_ds)?;
        let ai_attrs: Vec<Vec<usize>> = take_dataset(&store, &ai_attrs_ds)?;
        let core_intervals: Vec<Vec<AttrInterval>> = take_dataset(&store, &core_intervals_ds)?;
        let ai_intervals: Vec<Vec<AttrInterval>> = take_dataset(&store, &ai_intervals_ds)?;

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (i, containing) in memberships.iter().enumerate() {
            if containing.is_empty() {
                outliers.push(i);
                continue;
            }
            for &c in containing {
                members[c as usize].push(i);
            }
        }
        stats.outliers = outliers.len();
        let core_attrs: Vec<Vec<usize>> = cores
            .iter()
            .map(|c| c.signature.attributes().into_iter().collect())
            .collect();
        let clusters: Vec<ProjectedCluster> = (0..k)
            .map(|c| {
                let mut attrs: BTreeSet<usize> = core_attrs[c].iter().copied().collect();
                attrs.extend(ai_attrs[c].iter().copied());
                let mut intervals = core_intervals[c].clone();
                intervals.extend(ai_intervals[c].iter().copied());
                ProjectedCluster::new(members[c].clone(), attrs, intervals)
            })
            .collect();
        Ok(P3cResult {
            clustering: Clustering::new(clusters, outliers),
            cores,
            stats,
        })
    }
}

/// Histogram job → relevant intervals → MR core generation → redundancy
/// filter: the phase shared by both MR variants.
fn core_phase_mr(
    engine: &Engine,
    rows: &[&[f64]],
    n: usize,
    params: &P3cParams,
) -> Result<(Vec<ClusterCore>, PipelineStats), MrError> {
    let mut stats = PipelineStats::default();
    let d = rows.first().map_or(0, |r| r.len());
    // Per-attribute bin counts; the exact-IQR rule adds one quartile job.
    let bins_per_attr: Vec<usize> = match params.bin_rule {
        BinRuleChoice::FreedmanDiaconisIqr => {
            let quartiles = iqr_job(engine, rows)?;
            quartiles
                .into_iter()
                .map(|(q1, q3)| crate::p3cplus::iqr_bins(n, q3 - q1))
                .collect()
        }
        _ => vec![params.bin_rule.to_rule().num_bins(n).max(1); d],
    };
    let hists = histogram_job(engine, rows, &bins_per_attr)?;
    stats.bins = hists.bins;
    let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
    stats.relevant_intervals = intervals.len();
    let gen = generate_cluster_cores_mr(engine, &intervals, rows, params)?;
    stats.core_gen = gen.stats.clone();
    // Same proven-set redundancy filter as the serial pipeline, fed
    // from the MR coregen's (identically ordered) proven list and
    // support table, so MR cores stay byte-identical to serial.
    let mut cores = gen.cores;
    if params.use_redundancy_filter {
        let mut kept = crate::redundancy::filter_redundant_proven(&gen.proven, &gen.table, n);
        crate::cores::attach_expected_supports(&mut kept, n);
        stats.redundancy_removed = cores.len().saturating_sub(kept.len());
        cores = kept;
    }
    stats.cores = cores.len();
    Ok((cores, stats))
}

/// Map-only membership job for the Light variant: for each point the list
/// of cluster cores whose support set contains it.
fn membership_job(
    engine: &Engine,
    cores: &[ClusterCore],
    rows: &[&[f64]],
) -> Result<Vec<Vec<u32>>, MrError> {
    struct MembershipMapper {
        cores: Arc<Vec<ClusterCore>>,
    }
    impl<'a> Mapper<&'a [f64], (), Vec<u32>> for MembershipMapper {
        fn map(&self, row: &&'a [f64], out: &mut Emitter<(), Vec<u32>>) {
            let containing: Vec<u32> = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, core)| core.signature.contains(row))
                .map(|(c, _)| c as u32)
                .collect();
            out.emit((), containing);
        }
    }
    let cache = cores.iter().map(|c| 4 + c.signature.len() * 32).sum();
    let result = engine.run_map_only_with_cache(
        "p3c-light-membership",
        rows,
        cache,
        &MembershipMapper {
            cores: Arc::new(cores.to_vec()),
        },
    )?;
    Ok(result.output)
}

/// Legacy whole-buffer codec for spilling a [`RowBlock`]: `u64` LE row
/// and attribute counts, then the flat row-major values as `f64` LE. The
/// pipelines seed rows with [`row_block_seg_codec`] instead; this is kept
/// as the baseline the `experiments codec` microbench compares against.
pub fn row_block_codec() -> p3c_mapreduce::DatasetCodec<RowBlock> {
    fn encode(block: &RowBlock) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * block.as_slice().len());
        out.extend_from_slice(&(block.len() as u64).to_le_bytes());
        out.extend_from_slice(&(block.dim() as u64).to_le_bytes());
        for v in block.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
    fn decode(bytes: &[u8]) -> RowBlock {
        let mut take8 = {
            let mut at = 0usize;
            move |buf: &[u8]| -> [u8; 8] {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[at..at + 8]);
                at += 8;
                b
            }
        };
        let n = u64::from_le_bytes(take8(bytes)) as usize;
        let d = u64::from_le_bytes(take8(bytes)) as usize;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            data.push(f64::from_le_bytes(take8(bytes)));
        }
        RowBlock::new(n, d, data)
    }
    p3c_mapreduce::DatasetCodec { encode, decode }
}

/// Segmented columnar codec for spilling a [`RowBlock`]: a tiny `(n, d)`
/// header plus one independently-encoded segment per attribute column
/// (XOR-delta + byte-shuffle + zero-RLE, see `p3c_dataset::colseg`), so
/// partially-relevant jobs can reload just the columns they scan as a
/// [`ColumnSet`] through [`p3c_mapreduce::DatasetStore::get_columns`].
pub fn row_block_seg_codec() -> SegmentedCodec<RowBlock, Vec<f64>, ColumnSet> {
    fn decode_segment(bytes: &[u8], _j: usize, _header: &[u8]) -> Vec<f64> {
        colseg::decode_column(bytes)
    }
    fn project(block: &RowBlock, attrs: &[usize]) -> ColumnSet {
        ColumnSet::from_block(block, attrs)
    }
    SegmentedCodec {
        num_segments: RowBlock::dim,
        encode_header: colseg::block_header,
        encode_segment: colseg::encode_block_column,
        decode_segment,
        assemble_view: colseg::assemble_column_set,
        assemble_full: colseg::assemble_block,
        project,
    }
}

/// Loads the row set into the dataset store once for a whole DAG
/// pipeline (the serial drivers re-ship it into every job) as one
/// contiguous [`RowBlock`]; spillable so a memory-budgeted store can
/// stage it to the block store — in segmented columnar form, so
/// partially-relevant nodes reload only their columns — and reload.
fn seed_rows(store: &DatasetStore, data: &Dataset) -> DatasetHandle<RowBlock> {
    let handle: DatasetHandle<RowBlock> = DatasetHandle::new("rows");
    let block = RowBlock::from(data.clone());
    let bytes = 16 + 8 * block.as_slice().len();
    store.put_segmented(&handle, block, bytes, row_block_seg_codec());
    handle
}

/// Row views over a projected [`ColumnSet`]: the flat buffer holds the
/// `n × width` projection row-major; with zero width (an empty
/// projection) every row is the empty slice, keeping record counts — and
/// thus job metrics — identical to a full-width scan.
fn projected_refs(flat: &[f64], width: usize, n: usize) -> Vec<&[f64]> {
    if width == 0 {
        vec![&[] as &[f64]; n]
    } else {
        flat.chunks_exact(width).collect()
    }
}

/// Attributes constrained by at least one relevant interval, sorted —
/// the projection the core-generation phase actually reads.
fn relevant_attrs(intervals: &[Interval]) -> Vec<usize> {
    intervals
        .iter()
        .map(|iv| iv.attr)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Rewrites interval attributes into positions within the sorted
/// projection `attrs`. The remap is strictly monotone, so every ordering
/// decision downstream (signature sorts, prefix buckets, joins) is
/// preserved and the projected run is step-for-step identical.
fn project_intervals(intervals: &[Interval], attrs: &[usize]) -> Vec<Interval> {
    intervals
        .iter()
        .map(|iv| {
            let attr = attrs
                .binary_search(&iv.attr)
                .expect("interval attr in projection");
            Interval { attr, ..*iv }
        })
        .collect()
}

/// Maps core signatures back from projected positions to global
/// attribute indices — the inverse of [`project_intervals`].
fn unproject_cores(cores: &mut [ClusterCore], attrs: &[usize]) {
    for core in cores.iter_mut() {
        let intervals = core
            .signature
            .intervals()
            .iter()
            .map(|iv| Interval {
                attr: attrs[iv.attr],
                ..*iv
            })
            .collect();
        core.signature = Signature::new(intervals);
    }
}

/// The core-generation phase as a job graph named `p3c-core`: histogram
/// shards over disjoint attribute ranges run concurrently against the
/// cached row set, and their partial counts merge into exactly the
/// histograms the single serial job builds (per-attribute counts are
/// reduced per split in split order, so the merge is bit-exact). The
/// bin-count dataset is pre-seeded for uniform rules and produced by a
/// quartile node under the exact-IQR rule.
/// Partial histogram counts of one shard: `(attribute, bin counts)`.
type HistParts = Vec<(usize, Vec<f64>)>;

fn core_phase_dag(
    engine: &Engine,
    store: &DatasetStore,
    rows_ds: &DatasetHandle<RowBlock>,
    n: usize,
    d: usize,
    params: &P3cParams,
) -> Result<(Vec<ClusterCore>, PipelineStats), MrError> {
    let bins_ds: DatasetHandle<Vec<usize>> = DatasetHandle::new("bins");
    let cores_ds: DatasetHandle<Vec<ClusterCore>> = DatasetHandle::new("cores");
    let stats_ds: DatasetHandle<PipelineStats> = DatasetHandle::new("core-stats");

    let mut graph = JobGraph::new("p3c-core");
    match params.bin_rule {
        BinRuleChoice::FreedmanDiaconisIqr => {
            graph.add(
                JobNode::new("p3c-iqr", JobKind::MapReduce, {
                    let (rows_ds, bins_ds) = (rows_ds.clone(), bins_ds.clone());
                    move |ctx: &NodeCtx| {
                        let rows = ctx.fetch(&rows_ds)?;
                        let refs: Vec<&[f64]> = rows.row_refs();
                        let quartiles = iqr_job(ctx.engine, &refs)?;
                        let bins: Vec<usize> = quartiles
                            .into_iter()
                            .map(|(q1, q3)| crate::p3cplus::iqr_bins(n, q3 - q1))
                            .collect();
                        let bytes = 8 * bins.len();
                        ctx.put(&bins_ds, bins, bytes);
                        Ok(())
                    }
                })
                .input(rows_ds)
                .output(&bins_ds),
            );
        }
        _ => {
            // Uniform rules need no data pass; seeding the bin counts up
            // front makes every histogram shard a source node, so they
            // all become ready at once and overlap maximally.
            let bins = vec![params.bin_rule.to_rule().num_bins(n).max(1); d];
            store.put(&bins_ds, bins, 8 * d.max(1));
        }
    }

    let num_shards = d.clamp(1, 4);
    let chunk = d.div_ceil(num_shards).max(1);
    let mut part_handles: Vec<DatasetHandle<HistParts>> = Vec::with_capacity(num_shards);
    for s in 0..num_shards {
        let (lo, hi) = (s * chunk, ((s + 1) * chunk).min(d));
        let parts_ds: DatasetHandle<HistParts> = DatasetHandle::new(format!("hist-parts-{s}"));
        graph.add(
            JobNode::new(format!("hist-shard-{s}"), JobKind::MapReduce, {
                let (rows_ds, bins_ds, parts_ds) =
                    (rows_ds.clone(), bins_ds.clone(), parts_ds.clone());
                move |ctx: &NodeCtx| {
                    let bins = ctx.fetch(&bins_ds)?;
                    // Projection pushdown: decode only this shard's
                    // attribute columns from the (possibly spilled) rows.
                    let attrs: Vec<usize> = (lo..hi).collect();
                    let cols: Arc<ColumnSet> = ctx.fetch_columns(&rows_ds, &attrs)?;
                    let flat = cols.projected_rows();
                    let refs = projected_refs(&flat, cols.width(), cols.len());
                    let parts = histogram_shard_job_projected(
                        ctx.engine,
                        &refs,
                        &bins,
                        lo..hi,
                        ctx.node_name(),
                    )?;
                    let bytes = parts.iter().map(|(_, c)| 16 + 8 * c.len()).sum();
                    ctx.put(&parts_ds, parts, bytes);
                    Ok(())
                }
            })
            .input(rows_ds)
            .input(&bins_ds)
            .output(&parts_ds),
        );
        part_handles.push(parts_ds);
    }

    graph.add({
        let mut node = JobNode::new("coregen", JobKind::MapReduce, {
            let (rows_ds, bins_ds, cores_ds, stats_ds) = (
                rows_ds.clone(),
                bins_ds.clone(),
                cores_ds.clone(),
                stats_ds.clone(),
            );
            let part_handles = part_handles.clone();
            let params = params.clone();
            move |ctx: &NodeCtx| {
                let bins = ctx.fetch(&bins_ds)?;
                let mut parts: HistParts = Vec::new();
                for h in &part_handles {
                    parts.extend(ctx.fetch(h)?.iter().cloned());
                }
                let hists = assemble_histograms(&bins, parts);
                let mut stats = PipelineStats {
                    bins: hists.bins,
                    ..PipelineStats::default()
                };
                let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
                stats.relevant_intervals = intervals.len();
                // Projection pushdown: RSSC proving only ever tests the
                // relevant attributes, so fetch just those columns and
                // run core generation in the projected attribute space.
                let arel = relevant_attrs(&intervals);
                let cols: Arc<ColumnSet> = ctx.fetch_columns(&rows_ds, &arel)?;
                let flat = cols.projected_rows();
                let refs = projected_refs(&flat, cols.width(), cols.len());
                let projected = project_intervals(&intervals, &arel);
                let gen = generate_cluster_cores_mr(ctx.engine, &projected, &refs, &params)?;
                stats.core_gen = gen.stats.clone();
                // The proven list and support table are keyed by
                // projected-space signatures, so the redundancy filter
                // runs *before* the cores are unprojected back to
                // dataset attribute ids. (Eq. 7 expected supports are
                // width-only and unaffected by the attribute remap.)
                let mut cores = gen.cores;
                if params.use_redundancy_filter {
                    let n_rows = refs.len();
                    let mut kept =
                        crate::redundancy::filter_redundant_proven(&gen.proven, &gen.table, n_rows);
                    crate::cores::attach_expected_supports(&mut kept, n_rows);
                    stats.redundancy_removed = cores.len().saturating_sub(kept.len());
                    cores = kept;
                }
                unproject_cores(&mut cores, &arel);
                stats.cores = cores.len();
                let bytes = 64 + 128 * cores.len();
                ctx.put(&cores_ds, cores, bytes);
                ctx.put(&stats_ds, stats, 64);
                Ok(())
            }
        })
        .input(rows_ds)
        .input(&bins_ds)
        .output(&cores_ds)
        .output(&stats_ds);
        for h in &part_handles {
            node = node.input(h);
        }
        node
    });

    DagScheduler::new(engine)
        .run(&graph, store)
        .map_err(DagError::into_mr)?;
    let cores: Vec<ClusterCore> = take_dataset(store, &cores_ds)?;
    let stats: PipelineStats = take_dataset(store, &stats_ds)?;
    Ok((cores, stats))
}

/// Label of each point when it belongs to exactly one core, else -1 —
/// the Light variant's unique-membership view, shared by two DAG nodes.
fn unique_labels(memberships: &[Vec<u32>]) -> Vec<i64> {
    memberships
        .iter()
        .map(|containing| match containing.as_slice() {
            [only] => *only as i64,
            _ => -1,
        })
        .collect()
}

fn arel_of(cores: &[ClusterCore]) -> Vec<usize> {
    cores
        .iter()
        .flat_map(|c| c.signature.attributes())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn empty_result(n: usize, stats: PipelineStats) -> P3cResult {
    P3cResult {
        clustering: Clustering::new(Vec::new(), (0..n).collect()),
        cores: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_datagen::{generate, SyntheticSpec};
    use p3c_eval::e4sc;
    use p3c_mapreduce::MrConfig;

    fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n,
            d: 12,
            num_clusters: k,
            noise_fraction: noise,
            max_cluster_dims: 5,
            seed,
            ..SyntheticSpec::default()
        }
    }

    fn engine() -> Engine {
        Engine::new(MrConfig {
            split_size: 512,
            num_reducers: 4,
            ..MrConfig::default()
        })
    }

    #[test]
    fn mr_full_pipeline_recovers_clusters() {
        let data = generate(&spec(3000, 3, 0.05, 11));
        let eng = engine();
        let result = P3cPlusMr::new(&eng, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        assert_eq!(
            result.clustering.num_clusters(),
            3,
            "stats: {:?}",
            result.stats
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.6, "E4SC = {q}");
        // The pipeline must have run a realistic number of jobs.
        let jobs = eng.cluster_metrics().num_jobs();
        assert!(jobs >= 8, "only {jobs} jobs recorded");
    }

    #[test]
    fn mr_light_pipeline_recovers_clusters() {
        let data = generate(&spec(3000, 3, 0.1, 5));
        let eng = engine();
        let result = P3cPlusMrLight::new(&eng, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        assert_eq!(
            result.clustering.num_clusters(),
            3,
            "stats: {:?}",
            result.stats
        );
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.7, "E4SC = {q}");
    }

    #[test]
    fn light_runs_fewer_jobs_than_full() {
        let data = generate(&spec(2000, 3, 0.1, 7));
        let eng_full = engine();
        let eng_light = engine();
        P3cPlusMr::new(&eng_full, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        P3cPlusMrLight::new(&eng_light, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let full_jobs = eng_full.cluster_metrics().num_jobs();
        let light_jobs = eng_light.cluster_metrics().num_jobs();
        assert!(
            light_jobs < full_jobs,
            "light {light_jobs} vs full {full_jobs} jobs"
        );
    }

    #[test]
    fn mr_light_matches_serial_light_cores() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let eng = engine();
        let mr = P3cPlusMrLight::new(&eng, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let serial = crate::p3cplus::P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        let mr_sigs: Vec<String> = mr.cores.iter().map(|c| c.signature.to_string()).collect();
        let serial_sigs: Vec<String> = serial
            .cores
            .iter()
            .map(|c| c.signature.to_string())
            .collect();
        assert_eq!(mr_sigs, serial_sigs);
        // And the clusterings agree point-for-point.
        assert_eq!(
            mr.clustering.clusters.len(),
            serial.clustering.clusters.len()
        );
        for (a, b) in mr
            .clustering
            .clusters
            .iter()
            .zip(&serial.clustering.clusters)
        {
            assert_eq!(a.points, b.points);
            assert_eq!(a.attributes, b.attributes);
        }
        assert_eq!(mr.clustering.outliers, serial.clustering.outliers);
    }

    #[test]
    fn exact_iqr_binning_mr_matches_serial() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let params = P3cParams {
            bin_rule: crate::config::BinRuleChoice::FreedmanDiaconisIqr,
            ..P3cParams::default()
        };
        let eng = Engine::new(MrConfig {
            split_size: 100_000,
            ..MrConfig::default()
        });
        // With one split the MR quartile job computes exact quartiles, so
        // MR and serial pipelines must agree on the cores.
        let mr = P3cPlusMrLight::new(&eng, params.clone())
            .cluster(&data.dataset)
            .unwrap();
        let serial = crate::p3cplus::P3cPlusLight::new(params).cluster(&data.dataset);
        let mr_sigs: Vec<String> = mr.cores.iter().map(|c| c.signature.to_string()).collect();
        let serial_sigs: Vec<String> = serial
            .cores
            .iter()
            .map(|c| c.signature.to_string())
            .collect();
        assert_eq!(mr_sigs, serial_sigs);
        // The ledger shows the extra quartile job first.
        assert_eq!(eng.cluster_metrics().jobs()[0].job_name, "p3c-iqr");
    }

    #[test]
    fn empty_data_mr() {
        let ds = p3c_dataset::Dataset::from_rows(vec![]);
        let eng = engine();
        let result = P3cPlusMr::new(&eng, P3cParams::default())
            .cluster(&ds)
            .unwrap();
        assert_eq!(result.clustering.num_clusters(), 0);
    }

    #[test]
    fn fault_injected_pipeline_still_correct() {
        let data = generate(&spec(2000, 2, 0.05, 3));
        let clean_engine = engine();
        let faulty_engine = Engine::new(MrConfig {
            split_size: 512,
            fault: Some(p3c_mapreduce::FaultPlan::new(0.2, 99)),
            max_attempts: 20,
            ..MrConfig::default()
        });
        let clean = P3cPlusMrLight::new(&clean_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let faulty = P3cPlusMrLight::new(&faulty_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        assert_eq!(clean.clustering, faulty.clustering);
        let failed: u64 = faulty_engine
            .cluster_metrics()
            .jobs()
            .iter()
            .map(|j| j.failed_attempts)
            .sum();
        assert!(failed > 0, "fault plan never struck");
    }

    #[test]
    fn dag_full_pipeline_matches_serial_byte_for_byte() {
        let data = generate(&spec(3000, 3, 0.05, 11));
        let eng_serial = engine();
        let eng_dag = engine();
        let serial = P3cPlusMr::new(&eng_serial, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let dag = P3cPlusMr::new(&eng_dag, P3cParams::default())
            .cluster_with(&data.dataset, SchedulerChoice::Dag)
            .unwrap();
        assert_eq!(dag.clustering, serial.clustering);
        assert_eq!(dag.cores, serial.cores);
        assert_eq!(dag.stats.em_iterations, serial.stats.em_iterations);
        // The core graph overlapped its histogram shards and re-used the
        // cached row set across nodes.
        let metrics = eng_dag.cluster_metrics();
        let runs = metrics.dag_runs();
        let core_run = runs.iter().find(|r| r.dag_name == "p3c-core").unwrap();
        assert!(
            core_run.concurrency_high_water >= 2,
            "no overlap: high water {}",
            core_run.concurrency_high_water
        );
        assert!(
            core_run.cache_hits >= 2,
            "rows not re-used: {} hits",
            core_run.cache_hits
        );
        let shards = core_run
            .nodes
            .iter()
            .filter(|n| n.node.starts_with("hist-shard-"))
            .count();
        assert!(shards >= 2, "expected >= 2 histogram shards, got {shards}");
        assert!(runs.iter().any(|r| r.dag_name == "p3c-model"));
    }

    #[test]
    fn dag_light_pipeline_matches_serial_byte_for_byte() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let eng_serial = engine();
        let eng_dag = engine();
        let serial = P3cPlusMrLight::new(&eng_serial, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let dag = P3cPlusMrLight::new(&eng_dag, P3cParams::default())
            .cluster_with(&data.dataset, SchedulerChoice::Dag)
            .unwrap();
        assert_eq!(dag.clustering, serial.clustering);
        assert_eq!(dag.cores, serial.cores);
        let metrics = eng_dag.cluster_metrics();
        let model_run = metrics
            .dag_runs()
            .iter()
            .find(|r| r.dag_name == "p3c-light-model")
            .cloned()
            .unwrap();
        // Membership, inspection, both tightenings — one execution each.
        assert_eq!(model_run.total_executions, 4);
        assert!(model_run.node("membership").is_some());
    }

    #[test]
    fn dag_iqr_rule_adds_a_quartile_node() {
        let data = generate(&spec(2500, 3, 0.1, 13));
        let params = P3cParams {
            bin_rule: crate::config::BinRuleChoice::FreedmanDiaconisIqr,
            ..P3cParams::default()
        };
        let eng_serial = Engine::new(MrConfig {
            split_size: 100_000,
            ..MrConfig::default()
        });
        let eng_dag = Engine::new(MrConfig {
            split_size: 100_000,
            ..MrConfig::default()
        });
        let serial = P3cPlusMrLight::new(&eng_serial, params.clone())
            .cluster(&data.dataset)
            .unwrap();
        let dag = P3cPlusMrLight::new(&eng_dag, params)
            .cluster_dag(&data.dataset)
            .unwrap();
        assert_eq!(dag.clustering, serial.clustering);
        let metrics = eng_dag.cluster_metrics();
        let runs = metrics.dag_runs();
        let core_run = runs.iter().find(|r| r.dag_name == "p3c-core").unwrap();
        assert!(
            core_run.node("p3c-iqr").is_some(),
            "quartile node missing from the DAG"
        );
    }

    #[test]
    fn empty_data_dag() {
        let ds = p3c_dataset::Dataset::from_rows(vec![]);
        let eng = engine();
        let result = P3cPlusMr::new(&eng, P3cParams::default())
            .cluster_dag(&ds)
            .unwrap();
        assert_eq!(result.clustering.num_clusters(), 0);
    }

    #[test]
    fn dag_pipeline_surfaces_exhausted_faults() {
        let data = generate(&spec(1000, 2, 0.05, 3));
        let eng = Engine::new(MrConfig {
            split_size: 512,
            fault: Some(p3c_mapreduce::FaultPlan::new(1.0, 5)),
            max_attempts: 2,
            ..MrConfig::default()
        });
        // Every map attempt fails, so the first DAG node exhausts its
        // engine-level retries on both node attempts; the scheduler must
        // return (not hang) with the underlying task failure.
        let err = P3cPlusMr::new(&eng, P3cParams::default())
            .cluster_dag(&data.dataset)
            .unwrap_err();
        assert!(
            matches!(err, MrError::TaskFailed { attempts: 2, .. }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn dag_fault_injected_pipeline_still_correct() {
        let data = generate(&spec(2000, 2, 0.05, 3));
        let clean_engine = engine();
        let faulty_engine = Engine::new(MrConfig {
            split_size: 512,
            fault: Some(p3c_mapreduce::FaultPlan::new(0.2, 99)),
            max_attempts: 20,
            ..MrConfig::default()
        });
        let clean = P3cPlusMrLight::new(&clean_engine, P3cParams::default())
            .cluster_dag(&data.dataset)
            .unwrap();
        let faulty = P3cPlusMrLight::new(&faulty_engine, P3cParams::default())
            .cluster_dag(&data.dataset)
            .unwrap();
        assert_eq!(clean.clustering, faulty.clustering);
        let failed: u64 = faulty_engine
            .cluster_metrics()
            .jobs()
            .iter()
            .map(|j| j.failed_attempts)
            .sum();
        assert!(failed > 0, "fault plan never struck");
    }

    #[test]
    fn speculative_pipeline_matches_and_launches_backups() {
        let data = generate(&spec(1500, 2, 0.05, 17));
        // Every primary attempt straggles, and there are more worker
        // threads (6) than map tasks (1500 rows / 512 = 3), so idle
        // workers are guaranteed to launch backup attempts while the
        // primaries sleep — the test cannot pass vacuously.
        let mk = |speculative: bool| {
            Engine::new(MrConfig {
                split_size: 512,
                threads: 6,
                straggler: Some(p3c_mapreduce::fault::StragglerPlan::new(1.0, 150, 7)),
                speculative,
                ..MrConfig::default()
            })
        };
        let base_engine = mk(false);
        let spec_engine = mk(true);
        let base = P3cPlusMrLight::new(&base_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        let speculated = P3cPlusMrLight::new(&spec_engine, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap();
        // Backup attempts must not change the output...
        assert_eq!(base.clustering, speculated.clustering);
        // ...and the straggler plan must actually have triggered some.
        let backups: u64 = spec_engine
            .cluster_metrics()
            .jobs()
            .iter()
            .map(|j| j.speculative_attempts)
            .sum();
        assert!(backups > 0, "no speculative attempts launched");
    }
}
