//! The MapReduce implementations: P3C+-MR (Section 5) and P3C+-MR-Light
//! (Section 6).
//!
//! Every data-proportional step of P3C+ is expressed as a job on the
//! [`p3c_mapreduce::Engine`], following the paper's summation-form recipe
//!
//! ```text
//! s = Σᵢ s(xᵢ) = Σ_{splits} (reduce) Σ_{xᵢ ∈ split} (map) s(xᵢ)
//! ```
//!
//! * [`histogram`] — the histogram-building job (Section 5.1),
//! * [`coregen`] — parallel candidate generation, multi-level candidate
//!   collection, and RSSC-based candidate proving (Section 5.3),
//! * [`em`] — EM initialization and the two-jobs-per-iteration EM loop
//!   (Section 5.4),
//! * [`outlier`] — the OD job and the three MVB jobs (Section 5.5),
//! * [`inspect`] — attribute-inspection histograms, AI proving supports
//!   and interval tightening (Sections 5.6, 5.7),
//! * [`pipeline`] — the [`pipeline::P3cPlusMr`] and
//!   [`pipeline::P3cPlusMrLight`] drivers chaining the jobs.

pub mod coregen;
pub mod em;
pub mod histogram;
pub mod inspect;
pub mod outlier;
pub mod pipeline;

pub use pipeline::{P3cPlusMr, P3cPlusMrLight};

use crate::types::{Interval, Signature};
use p3c_linalg::CovarianceAccumulator;
use p3c_mapreduce::distrib::{Wire, WireError, WireReader};
use p3c_mapreduce::Weighable;

/// A signature as a shuffle message (candidate generation output).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SigMsg(pub Signature);

impl Weighable for SigMsg {
    fn weight(&self) -> usize {
        // 4-byte length prefix + 4 packed usizes per interval.
        4 + self.0.len() * 32
    }
}

/// A covariance accumulator as a shuffle message (EM/OD statistics jobs).
#[derive(Debug, Clone)]
pub(crate) struct AccMsg(pub CovarianceAccumulator);

impl Weighable for AccMsg {
    fn weight(&self) -> usize {
        let d = self.0.dim();
        // linear sum + scatter matrix + (weight, weight², count).
        8 * (d + d * d) + 24
    }
}

impl Wire for SigMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for iv in self.0.intervals() {
            iv.attr.encode(buf);
            iv.bin_lo.encode(buf);
            iv.bin_hi.encode(buf);
            iv.bins.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        if n > r.remaining() {
            return Err(WireError::Malformed("signature length exceeds payload"));
        }
        let mut intervals = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = usize::decode(r)?;
            let bin_lo = usize::decode(r)?;
            let bin_hi = usize::decode(r)?;
            let bins = usize::decode(r)?;
            intervals.push(Interval::new(attr, bin_lo, bin_hi, bins));
        }
        Ok(SigMsg(Signature::new(intervals)))
    }
}

impl Wire for AccMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (dim, linear, scatter, weight, weight_sq, count) = self.0.to_parts();
        dim.encode(buf);
        for seq in [linear, scatter] {
            buf.extend_from_slice(&(seq.len() as u32).to_le_bytes());
            for v in seq {
                v.encode(buf);
            }
        }
        weight.encode(buf);
        weight_sq.encode(buf);
        count.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let dim = usize::decode(r)?;
        let linear = Vec::<f64>::decode(r)?;
        let scatter = Vec::<f64>::decode(r)?;
        let weight = f64::decode(r)?;
        let weight_sq = f64::decode(r)?;
        let count = u64::decode(r)?;
        if linear.len() != dim || scatter.len() != dim * dim {
            return Err(WireError::Malformed("accumulator shape mismatch"));
        }
        Ok(AccMsg(CovarianceAccumulator::from_parts(
            dim, linear, scatter, weight, weight_sq, count,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interval;
    use p3c_mapreduce::distrib::{decode_from_slice, encode_to_vec};

    #[test]
    fn message_weights() {
        let sig = Signature::new(vec![Interval::new(0, 0, 1, 10), Interval::new(1, 2, 3, 10)]);
        assert_eq!(SigMsg(sig).weight(), 4 + 64);
        let acc = CovarianceAccumulator::new(3);
        assert_eq!(AccMsg(acc).weight(), 8 * 12 + 24);
    }

    #[test]
    fn sig_msg_wire_roundtrip() {
        let sig = SigMsg(Signature::new(vec![
            Interval::new(0, 0, 1, 10),
            Interval::new(3, 2, 7, 12),
        ]));
        let back: SigMsg = decode_from_slice(&encode_to_vec(&sig)).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn acc_msg_wire_roundtrip_bit_identical() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push(&[1.5, -2.25], 0.3);
        acc.push(&[0.1, 4.0], 1.7);
        let back: AccMsg = decode_from_slice(&encode_to_vec(&AccMsg(acc.clone()))).unwrap();
        let (d0, l0, s0, w0, q0, c0) = acc.to_parts();
        let (d1, l1, s1, w1, q1, c1) = back.0.to_parts();
        assert_eq!(d0, d1);
        assert_eq!(c0, c1);
        // f64 state must survive the wire bit-for-bit.
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(l0), bits(l1));
        assert_eq!(bits(s0), bits(s1));
        assert_eq!(w0.to_bits(), w1.to_bits());
        assert_eq!(q0.to_bits(), q1.to_bits());
    }
}
