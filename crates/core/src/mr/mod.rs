//! The MapReduce implementations: P3C+-MR (Section 5) and P3C+-MR-Light
//! (Section 6).
//!
//! Every data-proportional step of P3C+ is expressed as a job on the
//! [`p3c_mapreduce::Engine`], following the paper's summation-form recipe
//!
//! ```text
//! s = Σᵢ s(xᵢ) = Σ_{splits} (reduce) Σ_{xᵢ ∈ split} (map) s(xᵢ)
//! ```
//!
//! * [`histogram`] — the histogram-building job (Section 5.1),
//! * [`coregen`] — parallel candidate generation, multi-level candidate
//!   collection, and RSSC-based candidate proving (Section 5.3),
//! * [`em`] — EM initialization and the two-jobs-per-iteration EM loop
//!   (Section 5.4),
//! * [`outlier`] — the OD job and the three MVB jobs (Section 5.5),
//! * [`inspect`] — attribute-inspection histograms, AI proving supports
//!   and interval tightening (Sections 5.6, 5.7),
//! * [`pipeline`] — the [`pipeline::P3cPlusMr`] and
//!   [`pipeline::P3cPlusMrLight`] drivers chaining the jobs.

pub mod coregen;
pub mod em;
pub mod histogram;
pub mod inspect;
pub mod outlier;
pub mod pipeline;

pub use pipeline::{P3cPlusMr, P3cPlusMrLight};

use crate::types::Signature;
use p3c_linalg::CovarianceAccumulator;
use p3c_mapreduce::Weighable;

/// A signature as a shuffle message (candidate generation output).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SigMsg(pub Signature);

impl Weighable for SigMsg {
    fn weight(&self) -> usize {
        // 4-byte length prefix + 4 packed usizes per interval.
        4 + self.0.len() * 32
    }
}

/// A covariance accumulator as a shuffle message (EM/OD statistics jobs).
#[derive(Debug, Clone)]
pub(crate) struct AccMsg(pub CovarianceAccumulator);

impl Weighable for AccMsg {
    fn weight(&self) -> usize {
        let d = self.0.dim();
        // linear sum + scatter matrix + (weight, weight², count).
        8 * (d + d * d) + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interval;

    #[test]
    fn message_weights() {
        let sig = Signature::new(vec![Interval::new(0, 0, 1, 10), Interval::new(1, 2, 3, 10)]);
        assert_eq!(SigMsg(sig).weight(), 4 + 64);
        let acc = CovarianceAccumulator::new(3);
        assert_eq!(AccMsg(acc).weight(), 8 * 12 + 24);
    }
}
