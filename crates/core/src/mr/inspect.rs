//! Attribute-inspection and interval-tightening MapReduce jobs
//! (paper Sections 5.6 and 5.7).

use p3c_dataset::AttrInterval;
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError, Reducer};
use p3c_stats::Histogram;
use std::sync::Arc;

/// Mapper of the attribute-inspection histogram job: per (cluster, attr)
/// partial histograms over the split's members. The membership id rides
/// with each input record (`−1` = not a member of any cluster).
struct AiHistMapper {
    /// Bins per cluster (cluster sizes differ, so bin counts do too).
    bins: Arc<Vec<usize>>,
}

impl<'a> Mapper<(i64, &'a [f64]), (usize, usize), Vec<f64>> for AiHistMapper {
    fn map(&self, record: &(i64, &'a [f64]), out: &mut Emitter<(usize, usize), Vec<f64>>) {
        self.map_split(std::slice::from_ref(record), out);
    }

    fn map_split(&self, split: &[(i64, &'a [f64])], out: &mut Emitter<(usize, usize), Vec<f64>>) {
        // BTreeMap so emission is key-sorted by construction — the
        // emitted order feeds the shuffle and must not vary run-to-run.
        use std::collections::BTreeMap;
        let mut partials: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
        for (label, row) in split {
            if *label < 0 {
                continue;
            }
            let c = *label as usize;
            let bins = self.bins[c];
            for (attr, &v) in row.iter().enumerate() {
                let counts = partials.entry((c, attr)).or_insert_with(|| vec![0.0; bins]);
                counts[p3c_stats::histogram::bin_index(v, bins)] += 1.0;
            }
        }
        for (key, counts) in partials {
            out.emit(key, counts);
        }
    }
}

struct VecSumReducer;
impl Reducer<(usize, usize), Vec<f64>, ((usize, usize), Vec<f64>)> for VecSumReducer {
    fn reduce(
        &self,
        key: &(usize, usize),
        values: Vec<Vec<f64>>,
        out: &mut Vec<((usize, usize), Vec<f64>)>,
    ) {
        let total = values.into_iter().reduce(|mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        if let Some(counts) = total {
            out.push((*key, counts));
        }
    }
}

/// Runs the attribute-inspection histogram job: for each cluster `c`
/// (labels in `items`), per-attribute histograms with `bins_per_cluster[c]`
/// bins over the cluster members. Returns `hists[c][attr]`.
pub fn ai_histogram_job(
    engine: &Engine,
    items: &[(i64, &[f64])],
    bins_per_cluster: &[usize],
) -> Result<Vec<Vec<Histogram>>, MrError> {
    let d = items.first().map_or(0, |(_, r)| r.len());
    let k = bins_per_cluster.len();
    let result = engine.run(
        "p3c-attribute-inspection",
        items,
        &AiHistMapper {
            bins: Arc::new(bins_per_cluster.to_vec()),
        },
        &VecSumReducer,
    )?;
    let mut hists: Vec<Vec<Histogram>> = (0..k)
        .map(|c| vec![Histogram::new(bins_per_cluster[c].max(1)); d])
        .collect();
    for ((c, attr), counts) in result.output {
        let bins = counts.len();
        let mut h = Histogram::new(bins);
        for (bin, &v) in counts.iter().enumerate() {
            let mid = (bin as f64 + 0.5) / bins as f64;
            h.add_weighted(mid, v);
        }
        hists[c][attr] = h;
    }
    Ok(hists)
}

// ------------------------------------------------------------- tighten --

/// Mapper of the interval-tightening job: split-local min/max per
/// (cluster, relevant attribute).
struct TightenMapper {
    /// Relevant attributes per cluster.
    attrs: Arc<Vec<Vec<usize>>>,
}

impl<'a> Mapper<(i64, &'a [f64]), (usize, usize), (f64, f64)> for TightenMapper {
    fn map(&self, record: &(i64, &'a [f64]), out: &mut Emitter<(usize, usize), (f64, f64)>) {
        self.map_split(std::slice::from_ref(record), out);
    }

    fn map_split(&self, split: &[(i64, &'a [f64])], out: &mut Emitter<(usize, usize), (f64, f64)>) {
        // BTreeMap: key-sorted emission without an explicit sort pass.
        use std::collections::BTreeMap;
        let mut extrema: BTreeMap<(usize, usize), (f64, f64)> = BTreeMap::new();
        for (label, row) in split {
            if *label < 0 {
                continue;
            }
            let c = *label as usize;
            for &attr in &self.attrs[c] {
                let v = row[attr];
                let e = extrema.entry((c, attr)).or_insert((v, v));
                e.0 = e.0.min(v);
                e.1 = e.1.max(v);
            }
        }
        for (key, (lo, hi)) in extrema {
            out.emit(key, (lo, hi));
        }
    }
}

struct MinMaxReducer;
impl Reducer<(usize, usize), (f64, f64), ((usize, usize), (f64, f64))> for MinMaxReducer {
    fn reduce(
        &self,
        key: &(usize, usize),
        values: Vec<(f64, f64)>,
        out: &mut Vec<((usize, usize), (f64, f64))>,
    ) {
        let folded = values
            .into_iter()
            .reduce(|a, b| (a.0.min(b.0), a.1.max(b.1)))
            .expect("group nonempty");
        out.push((*key, folded));
    }
}

/// Runs the interval-tightening job (Section 5.7): for each labelled item
/// and each relevant attribute of its cluster, the global min/max. The
/// result is one interval list per cluster, sorted by attribute.
pub fn tighten_job(
    engine: &Engine,
    name: &str,
    items: &[(i64, &[f64])],
    attrs_per_cluster: &[Vec<usize>],
) -> Result<Vec<Vec<AttrInterval>>, MrError> {
    let k = attrs_per_cluster.len();
    let result = engine.run(
        name,
        items,
        &TightenMapper {
            attrs: Arc::new(attrs_per_cluster.to_vec()),
        },
        &MinMaxReducer,
    )?;
    let mut intervals: Vec<Vec<AttrInterval>> = vec![Vec::new(); k];
    for ((c, attr), (lo, hi)) in result.output {
        intervals[c].push(AttrInterval::new(attr, lo, hi));
    }
    for list in &mut intervals {
        list.sort_by_key(|iv| iv.attr);
    }
    Ok(intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_mapreduce::MrConfig;

    fn labelled_rows() -> (Vec<Vec<f64>>, Vec<i64>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let t = (i as f64 + 0.5) / 300.0;
            // Cluster 0: concentrated on attr 1; cluster 1: on attr 0.
            if i % 3 == 0 {
                rows.push(vec![t, 0.3 + 0.05 * (t - 0.5)]);
                labels.push(0);
            } else if i % 3 == 1 {
                rows.push(vec![0.7 + 0.05 * (t - 0.5), t]);
                labels.push(1);
            } else {
                rows.push(vec![t, 1.0 - t]);
                labels.push(-1);
            }
        }
        (rows, labels)
    }

    fn items<'a>(rows: &'a [Vec<f64>], labels: &[i64]) -> Vec<(i64, &'a [f64])> {
        labels
            .iter()
            .copied()
            .zip(rows.iter().map(|r| r.as_slice()))
            .collect()
    }

    #[test]
    fn ai_histograms_match_manual_counts() {
        let (rows, labels) = labelled_rows();
        let it = items(&rows, &labels);
        let engine = Engine::new(MrConfig {
            split_size: 37,
            ..MrConfig::default()
        });
        let hists = ai_histogram_job(&engine, &it, &[5, 5]).unwrap();
        // Manual: cluster 0 members.
        let mut manual = Histogram::new(5);
        for (l, row) in &it {
            if *l == 0 {
                manual.add(row[1]);
            }
        }
        assert_eq!(hists[0][1], manual);
        // Totals equal member counts.
        let members0 = labels.iter().filter(|&&l| l == 0).count() as f64;
        assert_eq!(hists[0][0].total(), members0);
        // Outlier records contribute nowhere.
        let members1 = labels.iter().filter(|&&l| l == 1).count() as f64;
        assert_eq!(hists[1][0].total(), members1);
    }

    #[test]
    fn tighten_job_matches_serial_minmax() {
        let (rows, labels) = labelled_rows();
        let it = items(&rows, &labels);
        let engine = Engine::new(MrConfig {
            split_size: 23,
            ..MrConfig::default()
        });
        let attrs = vec![vec![1], vec![0, 1]];
        let tightened = tighten_job(&engine, "tighten", &it, &attrs).unwrap();
        // Serial reference.
        for (c, attr_list) in attrs.iter().enumerate() {
            for &attr in attr_list {
                let vals: Vec<f64> = it
                    .iter()
                    .filter(|(l, _)| *l == c as i64)
                    .map(|(_, r)| r[attr])
                    .collect();
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let iv = tightened[c].iter().find(|iv| iv.attr == attr).unwrap();
                assert!((iv.lo - lo).abs() < 1e-15);
                assert!((iv.hi - hi).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn empty_cluster_has_no_intervals() {
        let (rows, mut labels) = labelled_rows();
        for l in labels.iter_mut() {
            if *l == 1 {
                *l = -1; // erase cluster 1
            }
        }
        let it = items(&rows, &labels);
        let engine = Engine::with_defaults();
        let tightened = tighten_job(&engine, "tighten2", &it, &[vec![1], vec![0]]).unwrap();
        assert!(!tightened[0].is_empty());
        assert!(tightened[1].is_empty());
    }
}
