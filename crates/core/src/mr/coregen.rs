//! MapReduce cluster-core generation (paper Section 5.3).
//!
//! Three pieces:
//!
//! 1. **Parallel candidate generation** — with `k` p-signatures there are
//!    `c = k(k−1)/2` join pairs; above `T_gen` pairs the join runs as a
//!    map-only job over pair-index ranges, with the signature list shipped
//!    through the distributed cache (below `T_gen` it runs serially, since
//!    "each MR job adds some overhead").
//! 2. **Multi-level candidate collection** — candidates are not proven at
//!    every level; levels accumulate until the paper's stop heuristic
//!    `|Cand_j| = 0 ∨ (c_sum > T_c ∧ |Cand_j| > |Cand_{j−1}|)` fires, then
//!    one proving job validates the whole batch.
//! 3. **RSSC candidate proving** — mappers bin each point per relevant
//!    attribute and AND the precomputed bit masks ([`crate::support::Rssc`]),
//!    emitting per-split support counts; reducers sum them.

use crate::config::P3cParams;
use crate::cores::{filter_maximal, ClusterCore, CoreGenStats, SupportTester};
use crate::mr::SigMsg;
use crate::support::{Rssc, SupportTable};
use crate::types::{Interval, Signature};
use p3c_mapreduce::{Emitter, Engine, Mapper, MrError, Reducer};
// audit: unordered-ok — HashSet here backs membership probes only
// (Apriori prune checks); every iterated/emitted collection below is a
// BTreeSet or explicitly sorted Vec.
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

// ------------------------------------------------------------- proving --

/// Mapper for the proving job: per-split RSSC support counting.
struct ProveMapper {
    rssc: Arc<Rssc>,
}

impl<'a> Mapper<&'a [f64], usize, u64> for ProveMapper {
    fn map(&self, row: &&'a [f64], out: &mut Emitter<usize, u64>) {
        for idx in self.rssc.candidates_of(row) {
            out.emit(idx, 1);
        }
    }

    fn map_split(&self, split: &[&'a [f64]], out: &mut Emitter<usize, u64>) {
        let mut counts = vec![0u64; self.rssc.num_candidates()];
        let mut scratch = Vec::new();
        for row in split {
            self.rssc.count_into(row, &mut counts, &mut scratch);
        }
        for (idx, c) in counts.into_iter().enumerate() {
            if c > 0 {
                out.emit(idx, c);
            }
        }
    }
}

struct SumReducer;
impl Reducer<usize, u64, (usize, u64)> for SumReducer {
    fn reduce(&self, key: &usize, values: Vec<u64>, out: &mut Vec<(usize, u64)>) {
        out.push((*key, values.into_iter().sum()));
    }
}

/// Counts the supports of a candidate batch with one MR job.
pub fn proving_job(
    engine: &Engine,
    candidates: &[Signature],
    rows: &[&[f64]],
) -> Result<Vec<u64>, MrError> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    let rssc = Arc::new(Rssc::build(candidates));
    let cache_bytes = rssc.byte_size();
    let result = engine.run_with_cache(
        "p3c-prove-candidates",
        rows,
        cache_bytes,
        &ProveMapper { rssc },
        &SumReducer,
    )?;
    let mut counts = vec![0u64; candidates.len()];
    for (idx, c) in result.output {
        counts[idx] = c;
    }
    Ok(counts)
}

// -------------------------------------------------- candidate generation --

/// Mapper for parallel candidate generation: each record is a range of
/// prefix buckets (index ranges into the sorted signature list) to join.
///
/// The paper partitions the raw `k(k−1)/2` pair-index space across
/// mappers; since only pairs sharing a (p−1)-prefix can produce surviving
/// candidates, we ship the same distributed-cache payload but let each
/// mapper enumerate pairs *within its buckets* — identical output, far
/// fewer wasted join attempts (see DESIGN.md §1).
struct CandGenMapper {
    /// Sorted signature list.
    level: Arc<Vec<Signature>>,
    // audit: unordered-ok — membership probes only, never iterated.
    prune: Arc<HashSet<Signature>>,
}

impl Mapper<(usize, usize), (), SigMsg> for CandGenMapper {
    /// A record `(i, end)` joins `sorted[i]` with every `sorted[j]`,
    /// `i < j < end` — one record per bucket row, so every in-bucket pair
    /// is enumerated exactly once and large buckets spread across tasks.
    fn map(&self, &(i, end): &(usize, usize), out: &mut Emitter<(), SigMsg>) {
        for j in (i + 1)..end {
            if let Some(cand) =
                crate::cores::join_in_bucket(&self.level[i], &self.level[j], &self.prune)
            {
                out.emit((), SigMsg(cand));
            }
        }
    }
}

/// Candidate generation: serial below `t_gen` within-bucket join pairs, a
/// map-only MR job above (paper Section 5.3). Duplicate candidates from
/// different pair joins are removed, and the all-subsets Apriori prune is
/// applied. Produces exactly [`crate::cores::generate_candidates`]'s
/// output either way.
pub fn generate_candidates_mr(
    engine: &Engine,
    level: &[Signature],
    // audit: unordered-ok — membership probes only, never iterated.
    prune_against: &HashSet<Signature>,
    t_gen: usize,
) -> Result<Vec<Signature>, MrError> {
    // Sort and bucket by (p−1)-prefix.
    let mut sorted: Vec<Signature> = level.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut buckets = crate::cores::prefix_buckets(&sorted);
    let join_pairs: usize = buckets
        .iter()
        .map(|(s, e)| (e - s) * (e - s).saturating_sub(1) / 2)
        .sum();
    if join_pairs <= t_gen {
        return Ok(crate::cores::generate_candidates(level, prune_against));
    }
    // One record per bucket row: (i, end) means "join sorted[i] with
    // sorted[i+1..end]" — exact pair coverage with balanced tasks.
    buckets = buckets
        .into_iter()
        .flat_map(|(s, e)| (s..e).map(move |i| (i, e)))
        .collect();
    let level_arc = Arc::new(sorted);
    let prune_arc = Arc::new(prune_against.clone());
    let cache_bytes: usize = level.iter().map(|s| 4 + s.len() * 32).sum();
    let result = engine.run_map_only_with_cache(
        "p3c-candidate-generation",
        &buckets,
        cache_bytes,
        &CandGenMapper {
            level: level_arc,
            prune: prune_arc,
        },
    )?;
    // BTreeSet: dedup and the output's sorted order in one structure —
    // this collection IS the emitted result, so its order must be fixed.
    let mut set: BTreeSet<Signature> = BTreeSet::new();
    for SigMsg(sig) in result.output {
        set.insert(sig);
    }
    Ok(set.into_iter().collect())
}

// ------------------------------------------- multi-level orchestration --

/// Result of the MapReduce core-generation phase.
#[derive(Debug, Clone)]
pub struct MrCoreGenResult {
    /// The maximal proven cores.
    pub cores: Vec<ClusterCore>,
    /// All proven signatures with their supports (pre-maximality).
    pub proven: Vec<(Signature, f64)>,
    /// Support table over all counted signatures.
    pub table: SupportTable,
    /// Per-level generation statistics.
    pub stats: CoreGenStats,
    /// Proving jobs actually executed (multi-level collection batches).
    pub proving_jobs: usize,
}

/// Runs cluster-core generation with multi-level candidate collection
/// (paper Section 5.3). Produces exactly the same proven set as the
/// serial [`crate::cores::generate_cluster_cores`] — the collection
/// heuristic only changes *when* supports are counted.
pub fn generate_cluster_cores_mr(
    engine: &Engine,
    intervals: &[Interval],
    rows: &[&[f64]],
    params: &P3cParams,
) -> Result<MrCoreGenResult, MrError> {
    let n = rows.len();
    let tester = SupportTester::from_params(params);
    let mut table = SupportTable::new();
    let mut stats = CoreGenStats::default();
    let mut all_proven: Vec<(Signature, f64)> = Vec::new();
    // Every signature proven so far, across batches. Threading this set
    // through proving keeps the downward-closure check exact: re-deriving
    // provenness from the support table is wrong, because Equation 1
    // alone is not recursive — a signature can pass it while one of its
    // own subsignatures failed validation.
    // audit: unordered-ok — membership probes only, never iterated.
    let mut proven_set: HashSet<Signature> = HashSet::new();
    let mut proving_jobs = 0usize;

    // Level-1 candidates.
    let mut level1: Vec<Signature> = intervals
        .iter()
        .map(|&iv| Signature::singleton(iv))
        .collect();
    level1.sort();
    level1.dedup();

    // The batch of levels collected since the last proving job.
    let mut batch: Vec<Vec<Signature>> = Vec::new();
    let mut csum = 0usize;
    let mut current = level1;
    let mut level = 1usize;
    // Proven signatures of the last *proven* level (for generation once a
    // batch closes); while collecting, generation chains off candidates.
    let mut generation_basis: Vec<Signature>;

    loop {
        if current.is_empty() || level > params.max_levels {
            // Close any open batch.
            if !batch.is_empty() {
                let proven_now = prove_batch(
                    engine,
                    &batch,
                    rows,
                    n,
                    &tester,
                    &mut table,
                    &mut proven_set,
                    &mut stats,
                )?;
                proving_jobs += 1;
                all_proven.extend(proven_now);
            }
            break;
        }
        crate::cores::truncate_level(&mut current, params, &mut stats);
        stats.candidates_per_level.push(current.len());
        csum += current.len();
        batch.push(current.clone());

        // Stop-collection heuristic (Section 5.3): always prove when the
        // candidate set grew past the budget; otherwise keep collecting
        // while the set shrinks.
        let grew = batch
            .len()
            .checked_sub(2)
            .map(|i| current.len() > batch[i].len())
            .unwrap_or(false);
        let close_batch = csum > params.t_c && (grew || batch.len() == 1);

        if close_batch {
            let proven_now = prove_batch(
                engine,
                &batch,
                rows,
                n,
                &tester,
                &mut table,
                &mut proven_set,
                &mut stats,
            )?;
            proving_jobs += 1;
            // Next generation chains off the just-proven top level.
            generation_basis = proven_now
                .iter()
                .filter(|(s, _)| s.len() == level)
                .map(|(s, _)| s.clone())
                .collect();
            all_proven.extend(proven_now);
            batch.clear();
            csum = 0;
        } else {
            // Keep collecting: generate from the *candidates*.
            generation_basis = current.clone();
        }

        // audit: unordered-ok — membership probes only, never iterated.
        let prune: HashSet<Signature> = generation_basis.iter().cloned().collect();
        current = generate_candidates_mr(engine, &generation_basis, &prune, params.t_gen)?;
        level += 1;
    }

    stats.total_proven = all_proven.len();
    let mut cores = filter_maximal(&all_proven);
    crate::cores::attach_expected_supports(&mut cores, n);
    stats.maximal = cores.len();
    Ok(MrCoreGenResult {
        cores,
        proven: all_proven,
        table,
        stats,
        proving_jobs,
    })
}

/// Proves a batch of levels with one MR support-counting job, evaluating
/// Equation 1 level by level (a candidate needs all its subsignatures
/// proven, so validation ascends).
#[allow(clippy::too_many_arguments)]
fn prove_batch(
    engine: &Engine,
    batch: &[Vec<Signature>],
    rows: &[&[f64]],
    n: usize,
    tester: &SupportTester,
    table: &mut SupportTable,
    // audit: unordered-ok — membership probes only, never iterated.
    proven_set: &mut HashSet<Signature>,
    stats: &mut CoreGenStats,
) -> Result<Vec<(Signature, f64)>, MrError> {
    let flat: Vec<Signature> = batch.iter().flatten().cloned().collect();
    let counts = proving_job(engine, &flat, rows)?;
    for (sig, &c) in flat.iter().zip(&counts) {
        table.insert(sig.clone(), c as f64);
    }
    // Validate ascending by level; a signature is proven iff Equation 1
    // holds AND all its subsignatures are proven (matching the serial
    // per-level semantics). `proven_set` persists across batches, so the
    // downward-closure check is exact for subsignatures proved in earlier
    // batches too. It must NOT be re-derived from the support table: the
    // table already holds this batch's counts, and Equation 1 in
    // isolation can accept a signature whose validation failed the
    // closure check one level down.
    let mut proven: Vec<(Signature, f64)> = Vec::new();
    let mut by_level: Vec<Vec<(&Signature, f64)>> = Vec::new();
    for level_sigs in batch {
        by_level.push(
            level_sigs
                .iter()
                .map(|s| (s, table.get(s).unwrap_or(0.0)))
                .collect(),
        );
    }
    for level_sigs in by_level {
        let mut proven_this_level = 0usize;
        for (sig, support) in level_sigs {
            let subs_ok =
                sig.len() == 1 || sig.subsignatures().all(|sub| proven_set.contains(&sub));
            if subs_ok && tester.passes_equation1(sig, support, n, table) {
                proven_set.insert(sig.clone());
                proven.push((sig.clone(), support));
                proven_this_level += 1;
            }
        }
        stats.proven_per_level.push(proven_this_level);
    }
    Ok(proven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_mapreduce::MrConfig;

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    #[test]
    fn parallel_candgen_matches_serial() {
        // 40 singletons on 8 attributes → 780 pairs; force the MR path
        // with t_gen = 0.
        let level: Vec<Signature> = (0..40)
            .map(|i| Signature::singleton(Interval::new(i % 8, i / 8, i / 8, 10)))
            .collect();
        let prune: HashSet<Signature> = level.iter().cloned().collect();
        let serial = crate::cores::generate_candidates(&level, &prune);
        let engine = Engine::new(MrConfig::default());
        let parallel = generate_candidates_mr(&engine, &level, &prune, 0).unwrap();
        assert_eq!(serial, parallel);
        assert!(engine.cluster_metrics().num_jobs() >= 1);
    }

    #[test]
    fn proving_job_matches_serial_counts() {
        let candidates = vec![
            Signature::new(vec![iv(0, 0, 2)]),
            Signature::new(vec![iv(0, 0, 2), iv(1, 5, 9)]),
        ];
        let data: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let t = (i as f64 + 0.5) / 300.0;
                vec![t, 1.0 - t]
            })
            .collect();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let engine = Engine::new(MrConfig {
            split_size: 37,
            ..MrConfig::default()
        });
        let mr = proving_job(&engine, &candidates, &rows).unwrap();
        let serial = crate::support::count_supports_naive(&candidates, &rows);
        assert_eq!(mr, serial);
        // Cache bytes were charged.
        let metrics = engine.cluster_metrics();
        assert!(metrics.jobs()[0].broadcast_bytes > 0);
    }

    #[test]
    fn mr_coregen_equals_serial_coregen() {
        // Planted 2D cluster; MR and serial generation must agree on the
        // proven set and cores.
        let mut data = Vec::new();
        for i in 0..300 {
            let t = (i as f64 + 0.5) / 300.0;
            data.push(vec![0.11 + 0.08 * t, 0.56 + 0.08 * t, t]);
        }
        for i in 0..300 {
            let t = (i as f64 + 0.5) / 300.0;
            data.push(vec![t, (t * 7.0).fract(), (t * 13.0).fract()]);
        }
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let intervals = vec![iv(0, 1, 2), iv(1, 5, 6), iv(2, 0, 9)];
        let params = P3cParams {
            alpha_poisson: 1e-6,
            ..P3cParams::default()
        };
        let engine = Engine::new(MrConfig {
            split_size: 100,
            ..MrConfig::default()
        });
        let mr = generate_cluster_cores_mr(&engine, &intervals, &rows, &params).unwrap();
        let serial = crate::cores::generate_cluster_cores(&intervals, &rows, &params);
        let mut mr_proven = mr.proven.clone();
        let mut serial_proven = serial.proven.clone();
        mr_proven.sort_by(|a, b| a.0.cmp(&b.0));
        serial_proven.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(mr_proven, serial_proven);
        let mr_sigs: Vec<&Signature> = mr.cores.iter().map(|c| &c.signature).collect();
        let serial_sigs: Vec<&Signature> = serial.cores.iter().map(|c| &c.signature).collect();
        assert_eq!(mr_sigs, serial_sigs);
        assert!(mr.proving_jobs >= 1);
    }

    #[test]
    fn multi_level_collection_with_tiny_tc() {
        // t_c = 0 forces a proving job per level — the degenerate but
        // valid corner of the heuristic.
        let mut data = Vec::new();
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0;
            data.push(vec![0.15 + 0.05 * t, 0.35 + 0.05 * t]);
        }
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0;
            data.push(vec![t, (t * 3.0).fract()]);
        }
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let intervals = vec![iv(0, 1, 1), iv(1, 3, 4)];
        let params = P3cParams {
            t_c: 0,
            alpha_poisson: 1e-6,
            ..P3cParams::default()
        };
        let engine = Engine::with_defaults();
        let result = generate_cluster_cores_mr(&engine, &intervals, &rows, &params).unwrap();
        let serial = crate::cores::generate_cluster_cores(&intervals, &rows, &params);
        assert_eq!(result.proven.len(), serial.proven.len());
    }

    #[test]
    fn empty_intervals() {
        let rows: Vec<&[f64]> = vec![];
        let engine = Engine::with_defaults();
        let result = generate_cluster_cores_mr(&engine, &[], &rows, &P3cParams::default()).unwrap();
        assert!(result.cores.is_empty());
        assert_eq!(result.proving_jobs, 0);
    }
}
