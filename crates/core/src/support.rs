//! Support counting: the naive scan and the Rapid Signature Support
//! Counter (RSSC, paper Section 5.3).
//!
//! RSSC answers "which of these candidate signatures contain point x?"
//! with a handful of AND operations over precomputed bit masks. Per
//! relevant attribute `a`, each histogram bin stores a bit vector over the
//! candidates: bit `j` is 0 iff candidate `j` has an interval on `a` that
//! does **not** cover the bin (candidates without an interval on `a` keep
//! bit 1, like `S2` in the paper's Figure 3). The candidate set of a point
//! is the AND of its bins' vectors over all relevant attributes.
//!
//! Because relevant intervals are runs of histogram bins, using the base
//! histogram binning as the RSSC binning is exact — no boundary
//! subtleties. (The paper derives its binning from interval endpoints;
//! those endpoints *are* bin edges here.)

use crate::types::Signature;
use std::collections::{BTreeMap, HashMap};

/// A table of counted signature supports.
///
/// Filled during cluster-core generation; consulted by the Equation 1
/// leave-one-out tests, redundancy filtering and AI proving.
#[derive(Debug, Clone, Default)]
pub struct SupportTable {
    map: HashMap<Signature, f64>,
}

impl SupportTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `sig`'s counted support.
    pub fn insert(&mut self, sig: Signature, support: f64) {
        self.map.insert(sig, support);
    }

    /// Looks up a previously counted support.
    pub fn get(&self, sig: &Signature) -> Option<f64> {
        self.map.get(sig).copied()
    }

    /// Number of recorded signatures.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no signature has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Maintained signature supports in summation form — the incremental
/// service's delta-maintenance state (DESIGN.md §14).
///
/// Signature supports are per-point indicator sums, so the support over
/// the cumulative dataset equals the support over the previous state
/// plus the support over an appended delta block (or minus, for a
/// retract). Counts are exact `u64`s, making the maintained values
/// *equal*, not approximately equal, to a from-scratch count — the
/// foundation of the service's byte-identity contract.
///
/// Invariant: every cached signature is stated against the *current*
/// histogram discretization. When the bin rule steps (the bin count is
/// a function of `n`), callers must [`SupportCache::clear`] — stale
/// discretizations would make [`SupportCache::apply_delta`]'s RSSC pass
/// disagree with the histograms.
#[derive(Debug, Clone, Default)]
pub struct SupportCache {
    // BTreeMap: apply_delta iterates the cache; deterministic order
    // keeps every downstream count sequence reproducible.
    counts: BTreeMap<Signature, u64>,
}

impl SupportCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached support of `sig`, if the cache has seen it.
    pub fn get(&self, sig: &Signature) -> Option<u64> {
        self.counts.get(sig).copied()
    }

    /// Records a freshly counted support.
    pub fn insert(&mut self, sig: Signature, support: u64) {
        self.counts.insert(sig, support);
    }

    /// Number of cached signatures.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Drops every entry (bin-rule step or full invalidation).
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// The cached `(signature, support)` pairs in deterministic
    /// (BTreeMap key) order — snapshot serialization.
    pub fn iter(&self) -> impl Iterator<Item = (&Signature, u64)> {
        self.counts.iter().map(|(sig, &c)| (sig, c))
    }

    /// Folds a delta block into every cached support: one RSSC pass
    /// over the delta rows, then an exact add (append) or subtract
    /// (retract) per signature. Cost is `O(|delta| · cached)` bit-ops —
    /// independent of the cumulative dataset size.
    pub fn apply_delta(&mut self, delta_rows: &[&[f64]], retract: bool) {
        if self.counts.is_empty() || delta_rows.is_empty() {
            return;
        }
        let sigs: Vec<Signature> = self.counts.keys().cloned().collect();
        let delta = count_supports_rssc(&sigs, delta_rows);
        for (sig, d) in sigs.iter().zip(delta) {
            let entry = self.counts.get_mut(sig).expect("cached signature");
            if retract {
                *entry = entry
                    .checked_sub(d)
                    .expect("retract of rows never appended");
            } else {
                *entry += d;
            }
        }
    }

    /// Estimated resident bytes (admission accounting).
    pub fn mem_bytes(&self) -> usize {
        // A signature holds a handful of intervals (4 usizes each); 256
        // bytes is a generous flat estimate per entry including the
        // tree node.
        self.counts.len() * 256
    }
}

/// The RSSC bit-mask structure for one candidate batch.
#[derive(Debug, Clone)]
pub struct Rssc {
    /// Attributes that at least one candidate constrains (`A_rel` of the
    /// batch).
    attrs: Vec<usize>,
    /// Per entry in `attrs`: the attribute's histogram bin count (bins may
    /// differ across attributes under exact-IQR binning).
    bins_of: Vec<usize>,
    /// Per entry in `attrs`: `bins_of × words` mask words, row-major by bin.
    masks: Vec<Vec<u64>>,
    /// Number of candidates.
    num_candidates: usize,
    /// Words per bit vector.
    words: usize,
    /// All-valid-candidates mask (trailing bits cleared).
    full: Vec<u64>,
}

impl Rssc {
    /// Builds masks for a candidate batch. Each attribute's bin count is
    /// read from the candidate intervals themselves (every
    /// [`Interval`](crate::types::Interval) carries its discretization).
    ///
    /// # Panics
    /// Panics if two candidate intervals on the same attribute disagree
    /// about the attribute's bin count.
    pub fn build(candidates: &[Signature]) -> Self {
        let num_candidates = candidates.len();
        let words = num_candidates.div_ceil(64).max(1);
        // Which attributes are constrained at all, and with how many bins?
        let mut attr_set: Vec<usize> = candidates.iter().flat_map(|s| s.attributes()).collect();
        attr_set.sort_unstable();
        attr_set.dedup();
        let mut bins_of = vec![0usize; attr_set.len()];
        for cand in candidates {
            for iv in cand.intervals() {
                let ai = attr_set.binary_search(&iv.attr).expect("attr present");
                if bins_of[ai] == 0 {
                    bins_of[ai] = iv.bins;
                } else {
                    assert_eq!(
                        bins_of[ai], iv.bins,
                        "inconsistent bin counts on attribute {}",
                        iv.attr
                    );
                }
            }
        }

        // Initialize all-ones (valid candidate bits only).
        let full = full_mask(num_candidates, words);
        let mut masks: Vec<Vec<u64>> = bins_of
            .iter()
            .map(|&bins| {
                let mut m = Vec::with_capacity(bins * words);
                for _ in 0..bins {
                    m.extend_from_slice(&full);
                }
                m
            })
            .collect();

        // Clear bit j on bins outside candidate j's interval on a.
        for (j, cand) in candidates.iter().enumerate() {
            for iv in cand.intervals() {
                let ai = attr_set.binary_search(&iv.attr).expect("attr present");
                let mask = &mut masks[ai];
                for bin in 0..bins_of[ai] {
                    if bin < iv.bin_lo || bin > iv.bin_hi {
                        mask[bin * words + j / 64] &= !(1u64 << (j % 64));
                    }
                }
            }
        }
        Self {
            attrs: attr_set,
            bins_of,
            masks,
            num_candidates,
            words,
            full,
        }
    }

    /// Number of candidate signatures this plan covers.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// Estimated broadcast size in bytes (for distributed-cache costing).
    pub fn byte_size(&self) -> usize {
        self.masks.iter().map(|m| m.len() * 8).sum::<usize>() + self.attrs.len() * 8
    }

    /// Writes the candidate-membership bit vector of `point` into `acc`
    /// (`acc.len() == words`); returns false if there are no candidates.
    pub fn membership_into(&self, point: &[f64], acc: &mut [u64]) -> bool {
        if self.num_candidates == 0 {
            return false;
        }
        debug_assert_eq!(acc.len(), self.words);
        acc.copy_from_slice(&self.full);
        for (ai, &attr) in self.attrs.iter().enumerate() {
            let bin = p3c_stats::histogram::bin_index(point[attr], self.bins_of[ai]);
            let row = &self.masks[ai][bin * self.words..(bin + 1) * self.words];
            let mut any = 0u64;
            for (a, &r) in acc.iter_mut().zip(row) {
                *a &= r;
                any |= *a;
            }
            if any == 0 {
                return false; // early exit: point in no candidate
            }
        }
        true
    }

    /// Adds 1 to `counts[j]` for every candidate j containing `point`.
    pub fn count_into(&self, point: &[f64], counts: &mut [u64], scratch: &mut Vec<u64>) {
        debug_assert_eq!(counts.len(), self.num_candidates);
        scratch.resize(self.words, 0);
        if !self.membership_into(point, scratch) {
            return;
        }
        for (w, &word) in scratch.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                counts[j] += 1;
                bits &= bits - 1;
            }
        }
    }

    /// The candidate indices containing `point` (allocating convenience).
    pub fn candidates_of(&self, point: &[f64]) -> Vec<usize> {
        let mut scratch = vec![0u64; self.words];
        let mut out = Vec::new();
        if !self.membership_into(point, &mut scratch) {
            return out;
        }
        for (w, &word) in scratch.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out
    }
}

fn full_mask(num_candidates: usize, words: usize) -> Vec<u64> {
    let mut m = vec![u64::MAX; words];
    let tail = num_candidates % 64;
    if tail != 0 {
        m[words - 1] = (1u64 << tail) - 1;
    }
    if num_candidates == 0 {
        m.fill(0);
    }
    m
}

/// Naive support counting: query every candidate for every point.
/// Kept as the correctness oracle for RSSC and for the ablation benchmark.
pub fn count_supports_naive(candidates: &[Signature], rows: &[&[f64]]) -> Vec<u64> {
    let mut counts = vec![0u64; candidates.len()];
    for row in rows {
        for (j, cand) in candidates.iter().enumerate() {
            if cand.contains(row) {
                counts[j] += 1;
            }
        }
    }
    counts
}

/// RSSC-accelerated support counting over a row set.
pub fn count_supports_rssc(candidates: &[Signature], rows: &[&[f64]]) -> Vec<u64> {
    let rssc = Rssc::build(candidates);
    let mut counts = vec![0u64; candidates.len()];
    let mut scratch = Vec::new();
    for row in rows {
        rssc.count_into(row, &mut counts, &mut scratch);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interval;

    fn iv(attr: usize, lo: usize, hi: usize) -> Interval {
        Interval::new(attr, lo, hi, 10)
    }

    fn rows(data: &[Vec<f64>]) -> Vec<&[f64]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn rssc_matches_naive_on_small_case() {
        let candidates = vec![
            Signature::new(vec![iv(0, 0, 2)]),
            Signature::new(vec![iv(0, 0, 2), iv(1, 5, 9)]),
            Signature::new(vec![iv(1, 0, 4)]),
        ];
        let data = vec![
            vec![0.15, 0.75],
            vec![0.15, 0.25],
            vec![0.95, 0.15],
            vec![0.25, 0.95],
        ];
        let r = rows(&data);
        assert_eq!(
            count_supports_rssc(&candidates, &r),
            count_supports_naive(&candidates, &r)
        );
    }

    #[test]
    fn unconstrained_attribute_keeps_bit_set() {
        // Candidate 0 constrains attr 0 only; a point anywhere on attr 1
        // must still match (the paper's S2-in-Figure-3 case).
        let candidates = vec![Signature::new(vec![iv(0, 0, 4)])];
        let rssc = Rssc::build(&candidates);
        assert_eq!(rssc.candidates_of(&[0.3, 0.99]), vec![0]);
        assert_eq!(rssc.candidates_of(&[0.9, 0.99]), Vec::<usize>::new());
    }

    #[test]
    fn more_than_64_candidates() {
        // Cross the word boundary: 130 single-interval candidates.
        let candidates: Vec<Signature> = (0..130)
            .map(|j| Signature::new(vec![Interval::new(j % 5, (j / 5) % 10, (j / 5) % 10, 10)]))
            .collect();
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 7 + j * 3) % 100) as f64 / 100.0)
                    .collect()
            })
            .collect();
        let r = rows(&data);
        assert_eq!(
            count_supports_rssc(&candidates, &r),
            count_supports_naive(&candidates, &r)
        );
    }

    #[test]
    fn empty_candidates() {
        let r: Vec<&[f64]> = vec![];
        assert!(count_supports_rssc(&[], &r).is_empty());
        let rssc = Rssc::build(&[]);
        assert_eq!(rssc.candidates_of(&[0.5]), Vec::<usize>::new());
    }

    #[test]
    fn support_table_roundtrip() {
        let mut t = SupportTable::new();
        let s = Signature::new(vec![iv(0, 0, 1)]);
        assert!(t.get(&s).is_none());
        t.insert(s.clone(), 42.0);
        assert_eq!(t.get(&s), Some(42.0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn byte_size_is_positive_and_scales() {
        let small = Rssc::build(&[Signature::new(vec![iv(0, 0, 1)])]);
        let big_cands: Vec<Signature> = (0..200)
            .map(|j| Signature::new(vec![Interval::new(j % 3, 0, 1, 10)]))
            .collect();
        let big = Rssc::build(&big_cands);
        assert!(small.byte_size() > 0);
        assert!(big.byte_size() > small.byte_size());
    }

    #[test]
    fn mixed_bin_counts_across_attributes() {
        // Attribute 0 discretized with 4 bins, attribute 1 with 16 —
        // exactly what exact-IQR binning produces.
        let candidates = vec![
            Signature::new(vec![Interval::new(0, 0, 1, 4), Interval::new(1, 8, 11, 16)]),
            Signature::new(vec![Interval::new(1, 0, 3, 16)]),
        ];
        let data = vec![
            vec![0.3, 0.6], // in cand 0 (bin0 attr0 ∈ [0,1]; attr1 bin 9)
            vec![0.3, 0.1], // in cand 1 only
            vec![0.9, 0.6], // attr0 bin 3 → outside cand 0
        ];
        let r: Vec<&[f64]> = data.iter().map(|x| x.as_slice()).collect();
        assert_eq!(
            count_supports_rssc(&candidates, &r),
            count_supports_naive(&candidates, &r)
        );
        assert_eq!(count_supports_rssc(&candidates, &r), vec![1, 1]);
    }

    #[test]
    fn support_cache_delta_matches_full_recount() {
        let sigs = vec![
            Signature::new(vec![iv(0, 0, 2)]),
            Signature::new(vec![iv(0, 0, 2), iv(1, 5, 9)]),
        ];
        let first = vec![vec![0.15, 0.75], vec![0.15, 0.25], vec![0.95, 0.15]];
        let second = vec![vec![0.25, 0.95], vec![0.05, 0.55]];
        let mut cache = SupportCache::new();
        for (sig, c) in sigs.iter().zip(count_supports_rssc(&sigs, &rows(&first))) {
            cache.insert(sig.clone(), c);
        }
        cache.apply_delta(&rows(&second), false);
        let mut cumulative = first.clone();
        cumulative.extend(second.iter().cloned());
        let full = count_supports_rssc(&sigs, &rows(&cumulative));
        for (sig, c) in sigs.iter().zip(full) {
            assert_eq!(cache.get(sig), Some(c));
        }
        // Retracting the delta restores the original counts exactly.
        cache.apply_delta(&rows(&second), true);
        for (sig, c) in sigs.iter().zip(count_supports_rssc(&sigs, &rows(&first))) {
            assert_eq!(cache.get(sig), Some(c));
        }
    }

    #[test]
    fn count_into_accumulates_across_points() {
        let candidates = vec![Signature::new(vec![iv(0, 0, 4)])];
        let rssc = Rssc::build(&candidates);
        let mut counts = vec![0u64; 1];
        let mut scratch = Vec::new();
        rssc.count_into(&[0.1], &mut counts, &mut scratch);
        rssc.count_into(&[0.3], &mut counts, &mut scratch);
        rssc.count_into(&[0.9], &mut counts, &mut scratch);
        assert_eq!(counts, vec![2]);
    }
}
