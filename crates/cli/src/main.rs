//! The `p3c` binary: thin wrapper over the testable library half.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match p3c_cli::args::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", p3c_cli::args::USAGE);
            return ExitCode::from(2);
        }
    };
    match p3c_cli::execute(&parsed) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
