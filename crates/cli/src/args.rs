//! Argument parsing for the `p3c` binary (hand-rolled: the workspace's
//! dependency budget has no CLI framework, and the grammar is small).

use p3c_mapreduce::{BackendChoice, SchedulerChoice};
use std::fmt;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Original P3C (serial).
    P3c,
    /// P3C+ full pipeline (serial).
    P3cPlus,
    /// P3C+-Light (serial).
    Light,
    /// P3C+-MR full pipeline.
    Mr,
    /// P3C+-MR-Light.
    MrLight,
    /// BoW with per-partition P3C+-Light.
    Bow,
}

impl Algorithm {
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "p3c" => Some(Self::P3c),
            "p3c+" | "p3cplus" => Some(Self::P3cPlus),
            "light" | "p3c+light" => Some(Self::Light),
            "mr" | "p3c+mr" => Some(Self::Mr),
            "mr-light" | "mrlight" => Some(Self::MrLight),
            "bow" => Some(Self::Bow),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Self::P3c => "p3c",
            Self::P3cPlus => "p3c+",
            Self::Light => "light",
            Self::Mr => "mr",
            Self::MrLight => "mr-light",
            Self::Bow => "bow",
        }
    }
}

/// Output format of the `cluster` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable summary.
    Text,
    /// Full clustering as JSON.
    Json,
}

/// A parsed synthetic-workload shape `NxD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    pub n: usize,
    pub d: usize,
}

fn parse_shape(s: &str) -> Option<Shape> {
    let (n, d) = s.split_once(['x', 'X'])?;
    Some(Shape {
        n: n.parse().ok()?,
        d: d.parse().ok()?,
    })
}

/// The `p3c` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Cluster a dataset.
    Cluster {
        /// Text-format input file (see `p3c_dataset::persist`); mutually
        /// exclusive with `synthetic`.
        input: Option<String>,
        /// Synthetic workload shape.
        synthetic: Option<Shape>,
        algorithm: Algorithm,
        /// Hidden clusters for the synthetic workload.
        clusters: usize,
        /// Noise fraction for the synthetic workload.
        noise: f64,
        seed: u64,
        /// Poisson significance level.
        alpha: f64,
        output: OutputFormat,
        /// Report E4SC against the synthetic ground truth.
        evaluate: bool,
        /// Job scheduler for the MR algorithms (serial chaining or the
        /// DAG scheduler with materialized datasets).
        scheduler: SchedulerChoice,
        /// Dump the engine's `ClusterMetrics` (jobs + DAG runs) as JSON
        /// to this path after clustering.
        metrics_json: Option<String>,
        /// Worker threads for the engine and the serial-path kernels
        /// (0 = all cores). `None` keeps the defaults (`P3C_THREADS`
        /// env or 1 for kernels; all cores for the engine). Results
        /// are bit-identical for every value.
        threads: Option<usize>,
        /// Execution backend for the MR algorithms (`local`,
        /// `local-shuffle`, `process[:N]`). `None` keeps the default
        /// (`P3C_BACKEND` env or the in-process engine). Results are
        /// byte-identical across backends and worker counts.
        backend: Option<BackendChoice>,
    },
    /// Generate a synthetic dataset to a file.
    Generate {
        synthetic: Shape,
        clusters: usize,
        noise: f64,
        seed: u64,
        out: String,
    },
    /// Run the incremental multi-tenant clustering service (stdin
    /// protocol by default, TCP with `--listen`).
    Serve {
        /// TCP address to listen on; `None` = stdin mode.
        listen: Option<String>,
        /// Byte budget of the shared dataset cache (LRU spill).
        cache_budget: Option<usize>,
        /// Byte budget for concurrently admitted re-cluster jobs.
        job_budget: Option<usize>,
        /// Worker threads for the clustering kernels.
        threads: Option<usize>,
        /// Durability directory: journal every mutation and recover
        /// tenants on startup. `None` = volatile service.
        data_dir: Option<String>,
        /// Snapshot a tenant after this many journal records
        /// (`None` = the serve default; `Some(0)` = journal only).
        snapshot_every: Option<u64>,
    },
    /// Send one command to a running `serve --listen` instance.
    Ctl {
        /// Server address (`host:port`).
        connect: String,
        /// The protocol command words to send.
        words: Vec<String>,
    },
    /// Run as a shuffle worker subprocess (spawned by the process
    /// backend, not invoked by hand).
    Worker {
        /// Master address to dial back (`host:port`).
        connect: String,
        /// Worker id assigned by the master.
        id: u64,
    },
    /// Print usage.
    Help,
}

/// Parse result plus any warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    pub command: Command,
}

/// Parse errors with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses the argument list (without the program name).
pub fn parse(args: &[String]) -> Result<ParsedArgs, ParseError> {
    let mut it = args.iter().map(String::as_str);
    let command = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => {
            return Ok(ParsedArgs {
                command: Command::Help,
            })
        }
        Some("cluster") => parse_cluster(&mut it)?,
        Some("generate") => parse_generate(&mut it)?,
        Some("serve") => parse_serve(&mut it)?,
        Some("ctl") => parse_ctl(&mut it)?,
        Some("worker") => parse_worker(&mut it)?,
        Some(other) => {
            return Err(ParseError(format!(
            "unknown command '{other}' (expected cluster | generate | serve | ctl | worker | help)"
        )))
        }
    };
    Ok(ParsedArgs { command })
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_cluster<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Command, ParseError> {
    let mut input = None;
    let mut synthetic = None;
    let mut algorithm = Algorithm::P3cPlus;
    let mut clusters = 3;
    let mut noise = 0.1;
    let mut seed = 0;
    let mut alpha = 1e-10;
    let mut output = OutputFormat::Text;
    let mut evaluate = false;
    let mut scheduler = SchedulerChoice::Serial;
    let mut metrics_json = None;
    let mut threads = None;
    let mut backend = None;
    while let Some(arg) = it.next() {
        match arg {
            "--input" | "-i" => input = Some(next_value(it, arg)?.to_string()),
            "--synthetic" => {
                let v = next_value(it, arg)?;
                synthetic = Some(
                    parse_shape(v)
                        .ok_or_else(|| ParseError(format!("bad shape '{v}' (want NxD)")))?,
                );
            }
            "--algorithm" | "-a" => {
                let v = next_value(it, arg)?;
                algorithm = Algorithm::parse(v)
                    .ok_or_else(|| ParseError(format!("unknown algorithm '{v}'")))?;
            }
            "--clusters" | "-k" => {
                clusters = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --clusters value".into()))?;
            }
            "--noise" => {
                noise = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --noise value".into()))?;
            }
            "--seed" => {
                seed = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --seed value".into()))?;
            }
            "--alpha" => {
                alpha = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --alpha value".into()))?;
            }
            "--output" | "-o" => {
                output = match next_value(it, arg)? {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => return Err(ParseError(format!("unknown output '{other}'"))),
                };
            }
            "--evaluate" | "-e" => evaluate = true,
            "--scheduler" => {
                let v = next_value(it, arg)?;
                scheduler = SchedulerChoice::parse(v).ok_or_else(|| {
                    ParseError(format!("unknown scheduler '{v}' (expected serial | dag)"))
                })?;
            }
            "--metrics-json" => metrics_json = Some(next_value(it, arg)?.to_string()),
            "--threads" | "-t" => {
                threads = Some(
                    next_value(it, arg)?
                        .parse()
                        .map_err(|_| ParseError("bad --threads value".into()))?,
                );
            }
            "--backend" => {
                backend = Some(BackendChoice::parse(next_value(it, arg)?).map_err(ParseError)?);
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    match (&input, &synthetic) {
        (None, None) => {
            return Err(ParseError(
                "cluster needs --input FILE or --synthetic NxD".into(),
            ))
        }
        (Some(_), Some(_)) => {
            return Err(ParseError(
                "--input and --synthetic are mutually exclusive".into(),
            ))
        }
        _ => {}
    }
    if evaluate && synthetic.is_none() {
        return Err(ParseError(
            "--evaluate requires --synthetic (needs ground truth)".into(),
        ));
    }
    Ok(Command::Cluster {
        input,
        synthetic,
        algorithm,
        clusters,
        noise,
        seed,
        alpha,
        output,
        evaluate,
        scheduler,
        metrics_json,
        threads,
        backend,
    })
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `4m` = 4 MiB.
fn parse_bytes(s: &str) -> Option<usize> {
    let (digits, factor) = match s.to_ascii_lowercase().strip_suffix(['k', 'm', 'g']) {
        Some(head) => {
            let factor = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (head.to_string(), factor)
        }
        None => (s.to_string(), 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(factor)
}

fn parse_serve<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Command, ParseError> {
    let mut listen = None;
    let mut cache_budget = None;
    let mut job_budget = None;
    let mut threads = None;
    let mut data_dir = None;
    let mut snapshot_every = None;
    while let Some(arg) = it.next() {
        match arg {
            "--listen" => listen = Some(next_value(it, arg)?.to_string()),
            "--data-dir" => data_dir = Some(next_value(it, arg)?.to_string()),
            "--snapshot-every" => {
                snapshot_every = Some(
                    next_value(it, arg)?
                        .parse()
                        .map_err(|_| ParseError("bad --snapshot-every value".into()))?,
                );
            }
            "--cache-budget" => {
                let v = next_value(it, arg)?;
                cache_budget = Some(parse_bytes(v).ok_or_else(|| {
                    ParseError(format!("bad --cache-budget '{v}' (want BYTES[k|m|g])"))
                })?);
            }
            "--job-budget" => {
                let v = next_value(it, arg)?;
                job_budget = Some(parse_bytes(v).ok_or_else(|| {
                    ParseError(format!("bad --job-budget '{v}' (want BYTES[k|m|g])"))
                })?);
            }
            "--threads" | "-t" => {
                threads = Some(
                    next_value(it, arg)?
                        .parse()
                        .map_err(|_| ParseError("bad --threads value".into()))?,
                );
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    Ok(Command::Serve {
        listen,
        cache_budget,
        job_budget,
        threads,
        data_dir,
        snapshot_every,
    })
}

fn parse_ctl<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Command, ParseError> {
    let mut connect = None;
    let mut words = Vec::new();
    while let Some(arg) = it.next() {
        match arg {
            "--connect" => connect = Some(next_value(it, arg)?.to_string()),
            "--" => {
                words.extend(it.by_ref().map(String::from));
            }
            other if words.is_empty() && other.starts_with('-') => {
                return Err(ParseError(format!("unknown flag '{other}'")))
            }
            other => words.push(other.to_string()),
        }
    }
    let connect = connect.ok_or_else(|| ParseError("ctl needs --connect HOST:PORT".into()))?;
    if words.is_empty() {
        return Err(ParseError(
            "ctl needs a command to send (try `help`)".into(),
        ));
    }
    Ok(Command::Ctl { connect, words })
}

fn parse_worker<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Command, ParseError> {
    let mut connect = None;
    let mut id = None;
    while let Some(arg) = it.next() {
        match arg {
            "--connect" => connect = Some(next_value(it, arg)?.to_string()),
            "--id" => {
                id = Some(
                    next_value(it, arg)?
                        .parse()
                        .map_err(|_| ParseError("bad --id value".into()))?,
                );
            }
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    let connect = connect.ok_or_else(|| ParseError("worker needs --connect HOST:PORT".into()))?;
    Ok(Command::Worker {
        connect,
        id: id.unwrap_or(0),
    })
}

fn parse_generate<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Command, ParseError> {
    let mut synthetic = None;
    let mut clusters = 3;
    let mut noise = 0.1;
    let mut seed = 0;
    let mut out = None;
    while let Some(arg) = it.next() {
        match arg {
            "--synthetic" => {
                let v = next_value(it, arg)?;
                synthetic = Some(
                    parse_shape(v)
                        .ok_or_else(|| ParseError(format!("bad shape '{v}' (want NxD)")))?,
                );
            }
            "--clusters" | "-k" => {
                clusters = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --clusters value".into()))?;
            }
            "--noise" => {
                noise = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --noise value".into()))?;
            }
            "--seed" => {
                seed = next_value(it, arg)?
                    .parse()
                    .map_err(|_| ParseError("bad --seed value".into()))?;
            }
            "--out" => out = Some(next_value(it, arg)?.to_string()),
            other => return Err(ParseError(format!("unknown flag '{other}'"))),
        }
    }
    let synthetic = synthetic.ok_or_else(|| ParseError("generate needs --synthetic NxD".into()))?;
    let out = out.ok_or_else(|| ParseError("generate needs --out FILE".into()))?;
    Ok(Command::Generate {
        synthetic,
        clusters,
        noise,
        seed,
        out,
    })
}

/// The usage text printed by `p3c help`.
pub const USAGE: &str = "\
p3c — projected clustering (P3C / P3C+ / P3C+-MR / BoW)

USAGE:
  p3c cluster (--input FILE | --synthetic NxD) [OPTIONS]
  p3c generate --synthetic NxD --out FILE [OPTIONS]
  p3c serve [--listen ADDR] [--cache-budget B] [--job-budget B] [-t N]
            [--data-dir DIR] [--snapshot-every N]
  p3c ctl --connect ADDR -- COMMAND...
  p3c worker --connect HOST:PORT [--id N]
  p3c help

CLUSTER OPTIONS:
  -a, --algorithm ALGO   p3c | p3c+ | light | mr | mr-light | bow  [p3c+]
  -k, --clusters K       hidden clusters for --synthetic            [3]
      --noise FRAC       noise fraction for --synthetic             [0.1]
      --seed SEED        generator seed                             [0]
      --alpha A          Poisson significance level                 [1e-10]
  -o, --output FMT       text | json                                [text]
  -e, --evaluate         report E4SC against the synthetic truth
      --scheduler S      serial | dag (mr / mr-light / bow only)    [serial]
      --metrics-json F   dump job + DAG metrics as JSON to file F
  -t, --threads N        worker threads for the engine and kernels
                         (0 = all cores; results are bit-identical)
      --backend B        local | local-shuffle | process[:N] — MR
                         execution backend (byte-identical results;
                         default honours P3C_BACKEND)

GENERATE OPTIONS:
  -k, --clusters K / --noise FRAC / --seed SEED as above
      --out FILE         destination (text format)

SERVE OPTIONS (incremental multi-tenant clustering service):
      --listen ADDR      TCP mode; default reads commands from stdin
      --cache-budget B   dataset-cache byte budget, LRU spill below it
                         (suffixes k/m/g; default unbounded)
      --job-budget B     byte budget for concurrent re-cluster jobs
  -t, --threads N        worker threads for the clustering kernels
      --data-dir DIR     durable mode: journal every mutation under DIR
                         and recover hosted tenants on startup
      --snapshot-every N snapshot a tenant after N journal records,
                         truncating its journal (0 = journal only) [64]
  protocol: create | append | retract | recluster | verify | stats |
            fingerprint | drop | quit | shutdown  (send `help`)

CTL OPTIONS (one-shot client for serve --listen):
      --connect ADDR     server address; words after -- are sent verbatim

WORKER OPTIONS (spawned by the process backend, not run by hand):
      --connect ADDR     master address to dial back
      --id N             worker id assigned by the master         [0]
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn help_paths() {
        for a in ["", "help", "--help", "-h"] {
            let parsed = parse(&args(a)).unwrap();
            assert_eq!(parsed.command, Command::Help);
        }
    }

    #[test]
    fn cluster_defaults() {
        let parsed = parse(&args("cluster --synthetic 1000x10")).unwrap();
        match parsed.command {
            Command::Cluster {
                synthetic,
                algorithm,
                clusters,
                output,
                evaluate,
                ..
            } => {
                assert_eq!(synthetic, Some(Shape { n: 1000, d: 10 }));
                assert_eq!(algorithm, Algorithm::P3cPlus);
                assert_eq!(clusters, 3);
                assert_eq!(output, OutputFormat::Text);
                assert!(!evaluate);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cluster_full_flags() {
        let parsed = parse(&args(
            "cluster --synthetic 500x8 -a mr-light -k 5 --noise 0.2 --seed 7 --alpha 1e-4 -o json -e",
        ))
        .unwrap();
        match parsed.command {
            Command::Cluster {
                algorithm,
                clusters,
                noise,
                seed,
                alpha,
                output,
                evaluate,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::MrLight);
                assert_eq!(clusters, 5);
                assert!((noise - 0.2).abs() < 1e-12);
                assert_eq!(seed, 7);
                assert!((alpha - 1e-4).abs() < 1e-16);
                assert_eq!(output, OutputFormat::Json);
                assert!(evaluate);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_algorithms_parse() {
        for (s, a) in [
            ("p3c", Algorithm::P3c),
            ("p3c+", Algorithm::P3cPlus),
            ("P3CPLUS", Algorithm::P3cPlus),
            ("light", Algorithm::Light),
            ("mr", Algorithm::Mr),
            ("mr-light", Algorithm::MrLight),
            ("bow", Algorithm::Bow),
        ] {
            assert_eq!(Algorithm::parse(s), Some(a), "{s}");
        }
        assert_eq!(Algorithm::parse("kmeans"), None);
    }

    #[test]
    fn scheduler_and_metrics_flags() {
        let parsed = parse(&args(
            "cluster --synthetic 1000x10 -a mr --scheduler dag --metrics-json /tmp/m.json",
        ))
        .unwrap();
        match parsed.command {
            Command::Cluster {
                scheduler,
                metrics_json,
                ..
            } => {
                assert_eq!(scheduler, SchedulerChoice::Dag);
                assert_eq!(metrics_json.as_deref(), Some("/tmp/m.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: serial scheduler, no metrics dump.
        let parsed = parse(&args("cluster --synthetic 1000x10")).unwrap();
        match parsed.command {
            Command::Cluster {
                scheduler,
                metrics_json,
                ..
            } => {
                assert_eq!(scheduler, SchedulerChoice::Serial);
                assert_eq!(metrics_json, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&args("cluster --synthetic 1000x10 --scheduler turbo")).unwrap_err();
        assert!(err.0.contains("unknown scheduler"));
    }

    #[test]
    fn backend_flag() {
        let parsed = parse(&args(
            "cluster --synthetic 1000x10 -a mr --backend process:3",
        ))
        .unwrap();
        match parsed.command {
            Command::Cluster { backend, .. } => {
                assert_eq!(
                    backend,
                    Some(BackendChoice::Process {
                        workers: 3,
                        kill: None
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let parsed = parse(&args("cluster --synthetic 1000x10")).unwrap();
        match parsed.command {
            Command::Cluster { backend, .. } => assert_eq!(backend, None),
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&args("cluster --synthetic 1000x10 --backend warp")).unwrap_err();
        assert!(err.0.contains("unknown backend"));
    }

    #[test]
    fn worker_command() {
        let parsed = parse(&args("worker --connect 127.0.0.1:9999 --id 3")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Worker {
                connect: "127.0.0.1:9999".to_string(),
                id: 3
            }
        );
        // id defaults to 0; --connect is mandatory.
        let parsed = parse(&args("worker --connect h:1")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Worker {
                connect: "h:1".to_string(),
                id: 0
            }
        );
        let err = parse(&args("worker --id 1")).unwrap_err();
        assert!(err.0.contains("--connect"));
    }

    #[test]
    fn threads_flag() {
        let parsed = parse(&args("cluster --synthetic 1000x10 --threads 8")).unwrap();
        match parsed.command {
            Command::Cluster { threads, .. } => assert_eq!(threads, Some(8)),
            other => panic!("unexpected {other:?}"),
        }
        // Default: unset, so pipeline/engine defaults apply.
        let parsed = parse(&args("cluster --synthetic 1000x10")).unwrap();
        match parsed.command {
            Command::Cluster { threads, .. } => assert_eq!(threads, None),
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&args("cluster --synthetic 1000x10 -t nope")).unwrap_err();
        assert!(err.0.contains("bad --threads"));
    }

    #[test]
    fn cluster_input_and_synthetic_exclusive() {
        let err = parse(&args("cluster --input f.txt --synthetic 10x2")).unwrap_err();
        assert!(err.0.contains("mutually exclusive"));
        let err = parse(&args("cluster")).unwrap_err();
        assert!(err.0.contains("needs"));
    }

    #[test]
    fn evaluate_requires_synthetic() {
        let err = parse(&args("cluster --input f.txt -e")).unwrap_err();
        assert!(err.0.contains("--evaluate requires"));
    }

    #[test]
    fn generate_roundtrip() {
        let parsed = parse(&args("generate --synthetic 200x5 --out /tmp/x.txt -k 2")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Generate {
                synthetic: Shape { n: 200, d: 5 },
                clusters: 2,
                noise: 0.1,
                seed: 0,
                out: "/tmp/x.txt".into()
            }
        );
    }

    #[test]
    fn bad_inputs_error() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("cluster --synthetic banana")).is_err());
        assert!(parse(&args("cluster --synthetic 10x2 --algorithm nope")).is_err());
        assert!(parse(&args("cluster --synthetic 10x2 --output xml")).is_err());
        assert!(parse(&args("generate --synthetic 10x2")).is_err());
    }

    #[test]
    fn serve_command() {
        let parsed = parse(&args("serve")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Serve {
                listen: None,
                cache_budget: None,
                job_budget: None,
                threads: None,
                data_dir: None,
                snapshot_every: None
            }
        );
        let parsed = parse(&args(
            "serve --listen 127.0.0.1:7070 --cache-budget 4m --job-budget 512k -t 2 \
             --data-dir /tmp/p3c-data --snapshot-every 16",
        ))
        .unwrap();
        assert_eq!(
            parsed.command,
            Command::Serve {
                listen: Some("127.0.0.1:7070".into()),
                cache_budget: Some(4 << 20),
                job_budget: Some(512 << 10),
                threads: Some(2),
                data_dir: Some("/tmp/p3c-data".into()),
                snapshot_every: Some(16)
            }
        );
        let err = parse(&args("serve --cache-budget huge")).unwrap_err();
        assert!(err.0.contains("bad --cache-budget"));
        let err = parse(&args("serve --snapshot-every soon")).unwrap_err();
        assert!(err.0.contains("bad --snapshot-every"));
    }

    #[test]
    fn ctl_command() {
        let parsed = parse(&args("ctl --connect h:1 -- append t --synthetic 10x2")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Ctl {
                connect: "h:1".into(),
                words: args("append t --synthetic 10x2"),
            }
        );
        // Bare words also work without the -- separator.
        let parsed = parse(&args("ctl --connect h:1 stats")).unwrap();
        assert_eq!(
            parsed.command,
            Command::Ctl {
                connect: "h:1".into(),
                words: vec!["stats".to_string()],
            }
        );
        assert!(parse(&args("ctl stats")).is_err(), "missing --connect");
        assert!(parse(&args("ctl --connect h:1")).is_err(), "no command");
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("2k"), Some(2048));
        assert_eq!(parse_bytes("3M"), Some(3 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("m"), None);
    }

    #[test]
    fn shape_parser() {
        assert_eq!(parse_shape("100x5"), Some(Shape { n: 100, d: 5 }));
        assert_eq!(parse_shape("100X5"), Some(Shape { n: 100, d: 5 }));
        assert_eq!(parse_shape("100"), None);
        assert_eq!(parse_shape("ax5"), None);
    }
}
