//! The `p3c` command-line tool: projected clustering for text datasets
//! and synthetic workloads, from the shell.
//!
//! ```text
//! p3c cluster --input data.txt --algorithm p3c+ --output json
//! p3c cluster --synthetic 10000x20 --clusters 3 --algorithm mr-light
//! p3c generate --synthetic 5000x10 --clusters 2 --out data.txt
//! ```
//!
//! The library half holds the argument parser and the runner so that both
//! are unit-testable without spawning processes; `main.rs` is a thin
//! wrapper.

pub mod args;
pub mod run;
pub mod serve;

pub use args::{Algorithm, Command, OutputFormat, ParsedArgs};
pub use run::{execute, ExecError};
