//! `p3c serve` — the incremental clustering service behind a line
//! protocol, plus `p3c ctl`, its one-shot TCP client.
//!
//! The server hosts a [`ClusterService`] of [`IncrementalLight`]
//! tenants over one shared, optionally budgeted [`DatasetStore`]. Two
//! transports speak the same protocol:
//!
//! * **stdin mode** (default): one command per line on stdin, one
//!   response block on stdout — scriptable with a heredoc, which is how
//!   the CI smoke leg drives it.
//! * **TCP mode** (`--listen ADDR`): each connection sends command
//!   lines and reads response blocks terminated by a lone `.` line;
//!   `p3c ctl --connect ADDR -- <command…>` wraps one round trip.
//!
//! Commands: `create`, `append`, `retract`, `recluster`, `verify`,
//! `stats`, `drop`, `quit`, `shutdown` — see [`PROTOCOL_HELP`].

use p3c_core::config::P3cParams;
use p3c_core::incremental::IncrementalLight;
use p3c_core::p3cplus::P3cPlusLight;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_dataset::{persist, Clustering, Dataset, RowBlock};
use p3c_mapreduce::{ClusterService, DatasetStore};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeOptions {
    /// TCP address to listen on; `None` = stdin mode.
    pub listen: Option<String>,
    /// Byte budget of the shared dataset store (LRU spill below it).
    pub cache_budget: Option<usize>,
    /// Byte budget admission imposes on concurrent re-cluster jobs.
    pub job_budget: Option<usize>,
    /// Worker threads for the clustering kernels.
    pub threads: Option<usize>,
    /// Per-connection TCP read timeout; `None` uses
    /// [`DEFAULT_READ_TIMEOUT`]. A client that stays silent longer is
    /// disconnected so an abandoned socket cannot pin its thread (and
    /// the tenant locks its commands would take) forever.
    pub read_timeout: Option<std::time::Duration>,
    /// Durability directory: every mutation is journaled under it and
    /// hosted tenants are recovered on startup. `None` = volatile.
    pub data_dir: Option<String>,
    /// Snapshot a tenant after this many journal records, truncating
    /// its journal. `None` uses [`DEFAULT_SNAPSHOT_EVERY`];
    /// `Some(0)` journals without ever snapshotting.
    pub snapshot_every: Option<u64>,
}

/// Read timeout applied to TCP sessions unless overridden.
pub const DEFAULT_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Journal records between snapshots in durable mode unless overridden
/// — also the bound on how many records a restart replays per tenant.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

/// Longest accepted command line on a TCP session. The protocol is
/// line-oriented with short commands; without a bound, one client
/// sending an endless unterminated line would grow the server's buffer
/// without limit.
pub const MAX_LINE_LEN: usize = 64 * 1024;

/// Protocol summary printed by the `help` command.
pub const PROTOCOL_HELP: &str = "\
commands:
  create NAME [--alpha A]        host a new dataset
  append NAME --synthetic NxD [--clusters K] [--noise F] [--seed S]
  append NAME --file PATH        append a normalized text dataset
  retract NAME ID                retract an appended block by id
  recluster NAME                 re-cluster incrementally
  verify NAME                    recluster + from-scratch batch, compare
  stats [NAME]                   service/store or per-dataset counters
  fingerprint NAME               fingerprint of the last published model
  drop NAME                      remove a dataset and its blocks
  quit                           end this session
  shutdown                       stop the server (TCP mode)";

/// What the session loop should do after one command.
enum Reply {
    /// Print/send this response and continue.
    Text(String),
    /// End this session (stdin: stop reading; TCP: close connection).
    Quit,
    /// Stop the whole server.
    Shutdown,
}

/// The service with the base parameters tenants are created from.
struct ServerState {
    service: ClusterService<IncrementalLight>,
    base_params: P3cParams,
}

impl ServerState {
    /// Builds the service; in durable mode (`--data-dir`) this also
    /// recovers every persisted tenant from its snapshot + journal tail
    /// and reports the recovery on stderr before any command is served.
    fn new(opts: &ServeOptions) -> std::io::Result<Self> {
        let store = Arc::new(match opts.cache_budget {
            Some(budget) => DatasetStore::with_budget(budget),
            None => DatasetStore::new(),
        });
        let mut base_params = P3cParams::default();
        if let Some(t) = opts.threads {
            base_params.threads = t;
        }
        let service = match &opts.data_dir {
            None => ClusterService::new(store, opts.job_budget),
            Some(dir) => {
                let every = opts.snapshot_every.unwrap_or(DEFAULT_SNAPSHOT_EVERY);
                let service = ClusterService::with_durability(
                    store,
                    opts.job_budget,
                    std::path::Path::new(dir),
                    every,
                )?;
                let report = service.recover().map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                eprintln!(
                    "p3c serve: recovered {} tenant(s) from {dir} \
                     ({} snapshot(s) loaded, {} journal record(s) replayed)",
                    report.tenants, report.snapshots_loaded, report.records_replayed
                );
                service
            }
        };
        Ok(Self {
            service,
            base_params,
        })
    }
}

fn parse_usize(v: &str, what: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("bad {what} '{v}'"))
}

/// Block ids are `u64` end to end; parsing through `usize` would
/// truncate ids above 2³²−1 on 32-bit targets.
fn parse_u64(v: &str, what: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("bad {what} '{v}'"))
}

fn next_val<'a>(it: &mut std::slice::Iter<'_, &'a str>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .copied()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_shape(v: &str) -> Result<(usize, usize), String> {
    let (n, d) = v
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("bad shape '{v}' (want NxD)"))?;
    Ok((parse_usize(n, "shape")?, parse_usize(d, "shape")?))
}

/// FNV-1a over a canonical byte rendering of a clustering — a compact
/// fingerprint two shells can compare for the byte-identity contract.
fn fingerprint(clustering: &Clustering) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for cluster in &clustering.clusters {
        for &p in &cluster.points {
            eat(&(p as u64).to_le_bytes());
        }
        for &a in &cluster.attributes {
            eat(&(a as u64).to_le_bytes());
        }
        for iv in &cluster.intervals {
            eat(&(iv.attr as u64).to_le_bytes());
            eat(&iv.lo.to_bits().to_le_bytes());
            eat(&iv.hi.to_bits().to_le_bytes());
        }
        eat(b"|");
    }
    for &o in &clustering.outliers {
        eat(&(o as u64).to_le_bytes());
    }
    hash
}

fn cmd_create(state: &ServerState, name: &str, rest: &[&str]) -> Result<String, String> {
    let mut params = state.base_params.clone();
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--alpha" => {
                let v = it.next().ok_or("--alpha needs a value")?;
                params.alpha_poisson = v.parse().map_err(|_| format!("bad --alpha '{v}'"))?;
            }
            other => return Err(format!("unknown create flag '{other}'")),
        }
    }
    state
        .service
        .create(name, IncrementalLight::new(name, params))
        .map_err(|e| e.to_string())?;
    Ok(format!("created {name}"))
}

fn cmd_append(state: &ServerState, name: &str, rest: &[&str]) -> Result<String, String> {
    let mut synthetic = None;
    let mut file = None;
    let mut clusters = 3usize;
    let mut noise = 0.1f64;
    let mut seed = 0u64;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--synthetic" => synthetic = Some(parse_shape(next_val(&mut it, flag)?)?),
            "--file" => file = Some(next_val(&mut it, flag)?.to_string()),
            "--clusters" | "-k" => clusters = parse_usize(next_val(&mut it, flag)?, "--clusters")?,
            "--noise" => {
                let v = next_val(&mut it, flag)?;
                noise = v.parse().map_err(|_| format!("bad --noise '{v}'"))?;
            }
            "--seed" => {
                let v = next_val(&mut it, flag)?;
                seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            other => return Err(format!("unknown append flag '{other}'")),
        }
    }
    let block = match (synthetic, file) {
        (Some((n, d)), None) => {
            let data = generate(&SyntheticSpec {
                n,
                d,
                num_clusters: clusters,
                noise_fraction: noise,
                max_cluster_dims: 10.min(d),
                seed,
                ..SyntheticSpec::default()
            });
            RowBlock::from(data.dataset)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let ds = persist::from_text(&text).map_err(|e| e.to_string())?;
            if !ds.is_normalized() {
                return Err(format!(
                    "{path}: values outside [0,1] — appends must share one \
                     normalization, so pre-normalize the whole stream"
                ));
            }
            RowBlock::from(ds)
        }
        _ => return Err("append needs exactly one of --synthetic NxD or --file PATH".into()),
    };
    let rows = block.len();
    let id = state
        .service
        .append(name, block)
        .map_err(|e| e.to_string())?;
    Ok(format!("appended block {id} ({rows} rows) to {name}"))
}

fn cmd_recluster(state: &ServerState, name: &str) -> Result<String, String> {
    let outcome = state.service.recluster(name).map_err(|e| e.to_string())?;
    let n = state
        .service
        .with_tenant(name, |t| t.total_rows())
        .map_err(|e| e.to_string())?;
    let clustering = &outcome.result.clustering;
    Ok(format!(
        "{name}: {} clusters, {} outliers, n={n} path={} fingerprint={:016x}",
        clustering.num_clusters(),
        clustering.outliers.len(),
        outcome.path.label(),
        fingerprint(clustering)
    ))
}

fn cmd_verify(state: &ServerState, name: &str) -> Result<String, String> {
    let outcome = state.service.recluster(name).map_err(|e| e.to_string())?;
    let (params, cumulative) = state
        .service
        .with_tenant(name, |t| {
            (t.params().clone(), t.materialize(state.service.store()))
        })
        .map_err(|e| e.to_string())?;
    let cumulative = cumulative?;
    let batch = P3cPlusLight::new(params).cluster(&Dataset::from(cumulative));
    let identical =
        outcome.result.clustering == batch.clustering && outcome.result.cores == batch.cores;
    if identical {
        Ok(format!(
            "{name}: incremental and batch models identical (fingerprint {:016x}, path={})",
            fingerprint(&batch.clustering),
            outcome.path.label()
        ))
    } else {
        Err(format!(
            "{name}: MISMATCH — incremental {:016x} vs batch {:016x}",
            fingerprint(&outcome.result.clustering),
            fingerprint(&batch.clustering)
        ))
    }
}

fn cmd_stats(state: &ServerState, name: Option<&str>) -> Result<String, String> {
    match name {
        Some(name) => state
            .service
            .with_tenant(name, |t| {
                let s = t.stats();
                format!(
                    "{name}: n={} blocks={} state_bytes={} appends={} retracts={} \
                     reclusters={} fast={} full={} hist_rebuilds={} \
                     support_scans={} cached_levels={}",
                    t.total_rows(),
                    t.block_ids().len(),
                    t.mem_bytes(),
                    s.appends,
                    s.retracts,
                    s.reclusters,
                    s.fast_reclusters,
                    s.full_reclusters,
                    s.hist_rebuilds,
                    s.support_scans,
                    s.cached_levels
                )
            })
            .map_err(|e| e.to_string()),
        None => {
            let m = state.service.metrics();
            let s = state.service.store().stats();
            Ok(format!(
                "service: datasets={} appends={} retracts={} reclusters={} admission_waits={}\n\
                 store: mem_bytes={} hits={} misses={} spills={} spill_loads={} evictions={}",
                state.service.names().len(),
                m.appends,
                m.retracts,
                m.reclusters,
                m.admission_waits,
                state.service.store().mem_bytes(),
                s.hits,
                s.misses,
                s.spills,
                s.spill_loads,
                s.evictions
            ))
        }
    }
}

/// Executes one protocol line against the service.
fn handle_line(state: &ServerState, line: &str) -> Reply {
    let words: Vec<&str> = line.split_whitespace().collect();
    let result = match words.as_slice() {
        [] | ["#", ..] => return Reply::Text(String::new()),
        ["quit"] | ["exit"] => return Reply::Quit,
        ["shutdown"] => return Reply::Shutdown,
        ["help"] => Ok(PROTOCOL_HELP.to_string()),
        ["create", name, rest @ ..] => cmd_create(state, name, rest),
        ["append", name, rest @ ..] => cmd_append(state, name, rest),
        ["retract", name, id] => {
            parse_u64(id, "block id").and_then(|id| match state.service.retract(name, id) {
                Ok(true) => Ok(format!("retracted block {id} from {name}")),
                Ok(false) => Err(format!("no live block {id} in {name}")),
                Err(e) => Err(e.to_string()),
            })
        }
        ["recluster", name] => cmd_recluster(state, name),
        ["verify", name] => cmd_verify(state, name),
        ["stats"] => cmd_stats(state, None),
        ["stats", name] => cmd_stats(state, Some(name)),
        ["fingerprint", name] => match state.service.last_model(name) {
            Some(model) => Ok(format!(
                "{name}: fingerprint={:016x} path={}",
                fingerprint(&model.result.clustering),
                model.path.label()
            )),
            None => Err(format!("no published model for {name} (run recluster)")),
        },
        ["drop", name] => state
            .service
            .drop_dataset(name)
            .map(|()| format!("dropped {name}"))
            .map_err(|e| e.to_string()),
        [cmd, ..] => Err(format!("unknown command '{cmd}' (try `help`)")),
    };
    match result {
        Ok(text) => Reply::Text(text),
        Err(msg) => Reply::Text(format!("error: {msg}")),
    }
}

/// Runs the service in stdin mode until EOF or `quit`; responses go
/// straight to stdout so heredoc scripting sees them in order.
pub fn serve_stdin(opts: &ServeOptions) -> std::io::Result<()> {
    let state = ServerState::new(opts)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        // audit: lock-blocking-ok — single-threaded REPL: the stdin lock *is* the serve loop, and command I/O under it is its job (§15).
        match handle_line(&state, &line) {
            Reply::Text(text) if text.is_empty() => {}
            Reply::Text(text) => {
                let mut out = stdout.lock();
                writeln!(out, "{text}")?;
                // audit: lock-blocking-ok — flushing the REPL's own output stream; nothing is ever locked under `cli.stdout`.
                out.flush()?;
            }
            Reply::Quit | Reply::Shutdown => break,
        }
    }
    Ok(())
}

/// Runs the service on an already-bound listener until a `shutdown`
/// command arrives. Each response block is terminated by a lone `.`.
pub fn serve_listener(opts: &ServeOptions, listener: TcpListener) -> std::io::Result<()> {
    let state = Arc::new(ServerState::new(opts)?);
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    let mut sessions = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let session_state = Arc::clone(&state);
        let session_stop = Arc::clone(&stop);
        let timeout = opts.read_timeout.unwrap_or(DEFAULT_READ_TIMEOUT);
        sessions.push(std::thread::spawn(move || {
            let _ = serve_connection(&session_state, &session_stop, stream, addr, timeout);
        }));
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    for session in sessions {
        let _ = session.join();
    }
    Ok(())
}

/// Reads one `\n`-terminated line of at most `max` bytes. `Ok(None)`
/// is EOF; a line that hits the bound without a terminator is an
/// `InvalidData` error (the caller disconnects rather than buffer an
/// unbounded line).
fn read_bounded_line<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    // Re-borrow so `take` consumes `&mut R` (itself a Read impl), not R.
    let mut limited = <&mut R as std::io::Read>::take(&mut *reader, max as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && n > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("command line exceeds {max} bytes"),
        ));
    }
    while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "command line is not UTF-8")
    })
}

fn serve_connection(
    state: &ServerState,
    stop: &AtomicBool,
    stream: TcpStream,
    addr: std::net::SocketAddr,
    timeout: std::time::Duration,
) -> std::io::Result<()> {
    // A silent peer trips the timeout, errors the next read, and the
    // session thread exits instead of parking forever.
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, MAX_LINE_LEN) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Tell the client why before hanging up.
                let _ = writeln!(writer, "error: {e}\n.");
                let _ = writer.flush();
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        match handle_line(state, &line) {
            Reply::Text(text) => {
                if text.is_empty() {
                    writeln!(writer, ".")?;
                } else {
                    writeln!(writer, "{text}\n.")?;
                }
                writer.flush()?;
            }
            Reply::Quit => break,
            Reply::Shutdown => {
                writeln!(writer, "shutting down\n.")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop.
                let _ = TcpStream::connect(addr);
                break;
            }
        }
    }
    Ok(())
}

/// Binds `addr` and serves until shutdown (the `serve --listen` path).
pub fn serve_tcp(opts: &ServeOptions, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("p3c serve: listening on {}", listener.local_addr()?);
    serve_listener(opts, listener)
}

/// One `ctl` round trip: sends `words` as a single command line and
/// returns the response block (without the `.` terminator).
pub fn ctl_send(connect: &str, words: &[String]) -> std::io::Result<String> {
    let stream = TcpStream::connect(connect)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", words.join(" "))?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    let mut response = String::new();
    for line in reader.lines() {
        let line = line?;
        if line == "." {
            break;
        }
        response.push_str(&line);
        response.push('\n');
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        ServerState::new(&ServeOptions::default()).unwrap()
    }

    fn text(state: &ServerState, line: &str) -> String {
        match handle_line(state, line) {
            Reply::Text(t) => t,
            _ => panic!("expected text reply for {line:?}"),
        }
    }

    #[test]
    fn create_append_recluster_verify_roundtrip() {
        let state = state();
        assert_eq!(text(&state, "create t"), "created t");
        assert!(text(&state, "create t").contains("already exists"));
        let out = text(&state, "append t --synthetic 1200x8 --seed 3 --clusters 2");
        assert!(out.contains("appended block 0 (1200 rows) to t"), "{out}");
        let out = text(&state, "recluster t");
        assert!(out.contains("clusters") && out.contains("n=1200"), "{out}");
        assert!(out.contains("path=full"), "{out}");
        let out = text(&state, "append t --synthetic 600x8 --seed 4 --clusters 2");
        assert!(out.contains("appended block 1"), "{out}");
        let out = text(&state, "verify t");
        assert!(out.contains("identical"), "{out}");
        let out = text(&state, "retract t 0");
        assert!(out.contains("retracted block 0"), "{out}");
        let out = text(&state, "verify t");
        assert!(out.contains("identical"), "{out}");
        let out = text(&state, "stats t");
        assert!(out.contains("n=600") && out.contains("retracts=1"), "{out}");
        let out = text(&state, "stats");
        assert!(out.contains("service: datasets=1"), "{out}");
        assert_eq!(text(&state, "drop t"), "dropped t");
        assert!(text(&state, "recluster t").contains("unknown dataset"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let state = state();
        assert!(text(&state, "recluster nope").starts_with("error:"));
        assert!(text(&state, "append nope --synthetic 10x2").starts_with("error:"));
        assert!(text(&state, "frobnicate").contains("unknown command"));
        assert!(text(&state, "create t --alpha banana").starts_with("error:"));
        text(&state, "create t");
        assert!(text(&state, "retract t 7").contains("no live block"));
        assert!(text(&state, "append t --synthetic 10x2 --file x").starts_with("error:"));
    }

    #[test]
    fn quit_and_shutdown_replies() {
        let state = state();
        assert!(matches!(handle_line(&state, "quit"), Reply::Quit));
        assert!(matches!(handle_line(&state, "exit"), Reply::Quit));
        assert!(matches!(handle_line(&state, "shutdown"), Reply::Shutdown));
        assert!(matches!(handle_line(&state, ""), Reply::Text(t) if t.is_empty()));
        assert!(matches!(handle_line(&state, "# comment"), Reply::Text(t) if t.is_empty()));
    }

    #[test]
    fn bounded_line_reader_accepts_short_and_rejects_long() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"hello\nworld\r\n".to_vec());
        assert_eq!(read_bounded_line(&mut r, 16).unwrap().unwrap(), "hello");
        assert_eq!(read_bounded_line(&mut r, 16).unwrap().unwrap(), "world");
        assert!(read_bounded_line(&mut r, 16).unwrap().is_none());

        // A line exactly at the bound still parses; one past it errors.
        let mut r = Cursor::new([vec![b'a'; 16], b"\n".to_vec()].concat());
        assert_eq!(
            read_bounded_line(&mut r, 16).unwrap().unwrap(),
            "a".repeat(16)
        );
        let mut r = Cursor::new(vec![b'a'; 17]); // unterminated and too long
        let err = read_bounded_line(&mut r, 16).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn tcp_session_disconnects_on_oversized_line() {
        use std::io::Read;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = ServeOptions::default();
        let server = std::thread::spawn(move || serve_listener(&opts, listener));

        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        // An unterminated line one past the bound: the server must send
        // an error block and hang up rather than buffer forever.
        writer.write_all(&vec![b'x'; MAX_LINE_LEN + 1]).unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut response).unwrap(); // returns only on EOF
        assert!(
            response.contains("error: command line exceeds"),
            "{response}"
        );

        // The listener is still healthy for well-behaved clients.
        let out = ctl_send(&addr, &["create".to_string(), "a".to_string()]).unwrap();
        assert_eq!(out, "created a\n");
        let out = ctl_send(&addr, &["shutdown".to_string()]).unwrap();
        assert!(out.contains("shutting down"), "{out}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_session_disconnects_an_idle_client() {
        use std::io::Read;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = ServeOptions {
            read_timeout: Some(std::time::Duration::from_millis(50)),
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || serve_listener(&opts, listener));

        // Connect and go silent: the read timeout must end the session
        // (observed as EOF on our side) instead of pinning it forever.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "{response}");

        let out = ctl_send(&addr, &["shutdown".to_string()]).unwrap();
        assert!(out.contains("shutting down"), "{out}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn fingerprint_distinguishes_clusterings() {
        let a = Clustering::new(Vec::new(), vec![0, 1, 2]);
        let b = Clustering::new(Vec::new(), vec![0, 1, 3]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn fingerprint_command_reads_published_model_without_reclustering() {
        let state = state();
        text(&state, "create t");
        text(&state, "append t --synthetic 800x6 --seed 5");
        let out = text(&state, "fingerprint t");
        assert!(out.starts_with("error: no published model"), "{out}");
        let reclustered = text(&state, "recluster t");
        let out = text(&state, "fingerprint t");
        let fp = |s: &str| {
            let at = s.find("fingerprint=").expect(s) + "fingerprint=".len();
            s[at..at + 16].to_string()
        };
        assert_eq!(fp(&out), fp(&reclustered), "{out} vs {reclustered}");
        let reclusters_before = state.service.metrics().reclusters;
        text(&state, "fingerprint t");
        assert_eq!(
            state.service.metrics().reclusters,
            reclusters_before,
            "fingerprint must read the pinned model, not re-cluster"
        );
    }

    #[test]
    fn huge_block_ids_parse_as_u64() {
        let state = state();
        text(&state, "create t");
        // Regression: ids used to round-trip through usize; an id above
        // 2^32-1 must parse (and report "no live block", not a parse
        // error) on every target.
        let out = text(&state, "retract t 18446744073709551615");
        assert!(out.contains("no live block 18446744073709551615"), "{out}");
        assert!(text(&state, "retract t -3").starts_with("error: bad block id"));
    }

    #[test]
    fn durable_server_recovers_tenants_across_restarts() {
        let dir = std::env::temp_dir().join(format!("p3c-serve-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            data_dir: Some(dir.to_string_lossy().into_owned()),
            snapshot_every: Some(2),
            ..ServeOptions::default()
        };
        let pre_kill = {
            let state = ServerState::new(&opts).unwrap();
            text(&state, "create t");
            text(&state, "append t --synthetic 500x6 --seed 1");
            text(&state, "append t --synthetic 300x6 --seed 2");
            text(&state, "append t --synthetic 200x6 --seed 3");
            text(&state, "recluster t")
            // The state is dropped without any shutdown handshake —
            // exactly what a SIGKILL leaves behind.
        };
        let state = ServerState::new(&opts).unwrap();
        assert_eq!(state.service.names(), vec!["t".to_string()]);
        let post = text(&state, "recluster t");
        let fp = |s: &str| {
            let at = s.find("fingerprint=").expect(s) + "fingerprint=".len();
            s[at..at + 16].to_string()
        };
        assert_eq!(fp(&post), fp(&pre_kill), "{post} vs {pre_kill}");
        let out = text(&state, "verify t");
        assert!(out.contains("identical"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_server_round_trips_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let opts = ServeOptions {
            cache_budget: Some(200_000),
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || serve_listener(&opts, listener));
        let send = |words: &[&str]| {
            let words: Vec<String> = words.iter().map(|s| s.to_string()).collect();
            ctl_send(&addr, &words).unwrap()
        };
        assert_eq!(send(&["create", "a"]), "created a\n");
        assert_eq!(send(&["create", "b"]), "created b\n");
        let out = send(&["append", "a", "--synthetic", "900x6", "--seed", "1"]);
        assert!(out.contains("appended block 0"), "{out}");
        let out = send(&["append", "b", "--synthetic", "900x6", "--seed", "2"]);
        assert!(out.contains("appended block 0"), "{out}");
        let out = send(&["verify", "a"]);
        assert!(out.contains("identical"), "{out}");
        let out = send(&["stats"]);
        assert!(out.contains("datasets=2"), "{out}");
        let out = send(&["shutdown"]);
        assert!(out.contains("shutting down"), "{out}");
        server.join().unwrap().unwrap();
    }
}
