//! Command execution for the `p3c` binary.

use crate::args::{Algorithm, Command, OutputFormat, ParsedArgs};
use p3c_bow::{Bow, BowConfig, BowVariant};
use p3c_core::config::P3cParams;
use p3c_core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_core::p3c::P3c;
use p3c_core::p3cplus::{P3cPlus, P3cPlusLight};
use p3c_datagen::{generate, SyntheticSpec};
use p3c_dataset::{persist, Clustering, Dataset};
use p3c_eval::e4sc;
use p3c_mapreduce::{BackendChoice, Engine, MrConfig, SchedulerChoice};
use std::fmt;

/// Execution errors (I/O, decoding, clustering failures).
#[derive(Debug)]
pub enum ExecError {
    Io(std::io::Error),
    Decode(String),
    Mr(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Io(e) => write!(f, "I/O error: {e}"),
            ExecError::Decode(e) => write!(f, "could not decode input: {e}"),
            ExecError::Mr(e) => write!(f, "MapReduce failure: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Io(e)
    }
}

/// Executes a parsed command, returning the text to print.
pub fn execute(parsed: &ParsedArgs) -> Result<String, ExecError> {
    match &parsed.command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Worker { connect, id } => {
            p3c_mapreduce::distrib::run_worker(connect, *id)?;
            Ok(String::new())
        }
        Command::Serve {
            listen,
            cache_budget,
            job_budget,
            threads,
            data_dir,
            snapshot_every,
        } => {
            let opts = crate::serve::ServeOptions {
                listen: listen.clone(),
                cache_budget: *cache_budget,
                job_budget: *job_budget,
                threads: *threads,
                read_timeout: None,
                data_dir: data_dir.clone(),
                snapshot_every: *snapshot_every,
            };
            match listen {
                Some(addr) => crate::serve::serve_tcp(&opts, addr)?,
                None => crate::serve::serve_stdin(&opts)?,
            }
            Ok(String::new())
        }
        Command::Ctl { connect, words } => Ok(crate::serve::ctl_send(connect, words)?),
        Command::Generate {
            synthetic,
            clusters,
            noise,
            seed,
            out,
        } => {
            let data = generate(&SyntheticSpec {
                n: synthetic.n,
                d: synthetic.d,
                num_clusters: *clusters,
                noise_fraction: *noise,
                max_cluster_dims: 10.min(synthetic.d),
                seed: *seed,
                ..SyntheticSpec::default()
            });
            std::fs::write(out, persist::to_text(&data.dataset))?;
            Ok(format!(
                "wrote {} points × {} dims ({} clusters, {:.0}% noise) to {}",
                synthetic.n,
                synthetic.d,
                clusters,
                noise * 100.0,
                out
            ))
        }
        Command::Cluster {
            input,
            synthetic,
            algorithm,
            clusters,
            noise,
            seed,
            alpha,
            output,
            evaluate,
            scheduler,
            metrics_json,
            threads,
            backend,
        } => {
            let (dataset, truth) = match (input, synthetic) {
                (Some(path), None) => {
                    let text = std::fs::read_to_string(path)?;
                    let ds =
                        persist::from_text(&text).map_err(|e| ExecError::Decode(e.to_string()))?;
                    let ds = if ds.is_normalized() {
                        ds
                    } else {
                        ds.normalize().0
                    };
                    (ds, None)
                }
                (None, Some(shape)) => {
                    let data = generate(&SyntheticSpec {
                        n: shape.n,
                        d: shape.d,
                        num_clusters: *clusters,
                        noise_fraction: *noise,
                        max_cluster_dims: 10.min(shape.d),
                        seed: *seed,
                        ..SyntheticSpec::default()
                    });
                    (data.dataset, Some(data.ground_truth))
                }
                _ => unreachable!("validated at parse time"),
            };
            let mut params = P3cParams {
                alpha_poisson: *alpha,
                ..P3cParams::default()
            };
            if let Some(t) = threads {
                params.threads = *t;
            }
            let (clustering, metrics) = run_algorithm(
                *algorithm,
                &params,
                &dataset,
                *scheduler,
                *threads,
                backend.clone(),
            )?;
            let mut text = render(&clustering, *output, *algorithm);
            if *evaluate {
                if let Some(truth) = &truth {
                    text.push_str(&format!(
                        "\nE4SC vs ground truth: {:.3}\n",
                        e4sc(&clustering, truth)
                    ));
                }
            }
            if let Some(path) = metrics_json {
                let json =
                    serde_json::to_string_pretty(&metrics).expect("cluster metrics serialize");
                std::fs::write(path, json + "\n")?;
                text.push_str(&format!(
                    "\nwrote metrics for {} job(s), {} DAG run(s) to {}\n",
                    metrics.num_jobs(),
                    metrics.dag_runs().len(),
                    path
                ));
            }
            Ok(text)
        }
    }
}

fn run_algorithm(
    algorithm: Algorithm,
    params: &P3cParams,
    dataset: &Dataset,
    scheduler: SchedulerChoice,
    threads: Option<usize>,
    backend: Option<BackendChoice>,
) -> Result<(Clustering, p3c_mapreduce::ClusterMetrics), ExecError> {
    let mr_err = |e: p3c_mapreduce::MrError| ExecError::Mr(e.to_string());
    // The serial algorithms run no jobs; their metrics ledger stays empty.
    let engine = Engine::new(MrConfig {
        threads: threads.unwrap_or(0),
        backend: backend.unwrap_or_default(),
        ..MrConfig::default()
    });
    let clustering = match algorithm {
        Algorithm::P3c => P3c::new(params.alpha_poisson).cluster(dataset).clustering,
        Algorithm::P3cPlus => P3cPlus::new(params.clone()).cluster(dataset).clustering,
        Algorithm::Light => {
            P3cPlusLight::new(params.clone())
                .cluster(dataset)
                .clustering
        }
        Algorithm::Mr => {
            P3cPlusMr::new(&engine, params.clone())
                .cluster_with(dataset, scheduler)
                .map_err(mr_err)?
                .clustering
        }
        Algorithm::MrLight => {
            P3cPlusMrLight::new(&engine, params.clone())
                .cluster_with(dataset, scheduler)
                .map_err(mr_err)?
                .clustering
        }
        Algorithm::Bow => {
            let config = BowConfig {
                variant: BowVariant::Light,
                params: params.clone(),
                ..BowConfig::default()
            };
            Bow::new(&engine, config)
                .cluster_with(dataset, scheduler)
                .map_err(mr_err)?
                .clustering
        }
    };
    Ok((clustering, engine.cluster_metrics()))
}

fn render(clustering: &Clustering, format: OutputFormat, algorithm: Algorithm) -> String {
    match format {
        OutputFormat::Json => {
            serde_json::to_string_pretty(clustering).expect("clustering serializes") + "\n"
        }
        OutputFormat::Text => {
            let mut out = format!(
                "{}: {} clusters, {} outliers\n",
                algorithm.name(),
                clustering.num_clusters(),
                clustering.outliers.len()
            );
            for (i, c) in clustering.clusters.iter().enumerate() {
                let attrs: Vec<String> = c.attributes.iter().map(|a| format!("a{a}")).collect();
                out.push_str(&format!(
                    "  cluster {i}: {} points, subspace {{{}}}\n",
                    c.size(),
                    attrs.join(", ")
                ));
                for iv in &c.intervals {
                    out.push_str(&format!(
                        "    a{} ∈ [{:.3}, {:.3}]\n",
                        iv.attr, iv.lo, iv.hi
                    ));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(cmdline: &str) -> Result<String, ExecError> {
        let args: Vec<String> = cmdline.split_whitespace().map(|s| s.to_string()).collect();
        execute(&parse(&args).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("mr-light"));
    }

    #[test]
    fn synthetic_cluster_text_output() {
        let out = run("cluster --synthetic 2000x10 -k 2 --seed 3 -e").unwrap();
        assert!(out.contains("p3c+:"), "{out}");
        assert!(out.contains("cluster 0:"));
        assert!(out.contains("E4SC vs ground truth"));
        // Quality on this easy instance must be reported high.
        let e4sc_line = out.lines().find(|l| l.contains("E4SC")).unwrap();
        let score: f64 = e4sc_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(score > 0.5, "{e4sc_line}");
    }

    #[test]
    fn json_output_deserializes() {
        let out = run("cluster --synthetic 1500x8 -k 2 --seed 5 -o json").unwrap();
        // Parsing back needs a real serde_json; the offline stub
        // cannot deserialize (and serializes a placeholder).
        match serde_json::from_str::<Clustering>(&out) {
            Ok(clustering) => assert!(clustering.num_clusters() >= 1),
            Err(e) => assert!(
                e.to_string().contains("offline stub"),
                "round-trip failed with a real serde_json: {e}"
            ),
        }
    }

    #[test]
    fn all_algorithms_execute() {
        for algo in ["p3c", "p3c+", "light", "mr", "mr-light", "bow"] {
            let out = run(&format!(
                "cluster --synthetic 1500x8 -k 2 --seed 3 -a {algo}"
            ))
            .unwrap();
            assert!(out.contains("clusters"), "{algo}: {out}");
        }
    }

    #[test]
    fn dag_scheduler_matches_serial_output() {
        for algo in ["mr", "mr-light"] {
            let serial = run(&format!(
                "cluster --synthetic 1500x8 -k 2 --seed 3 -a {algo} --scheduler serial"
            ))
            .unwrap();
            let dag = run(&format!(
                "cluster --synthetic 1500x8 -k 2 --seed 3 -a {algo} --scheduler dag"
            ))
            .unwrap();
            assert_eq!(serial, dag, "{algo}");
        }
    }

    #[test]
    fn metrics_json_dump_records_dag_runs() {
        let dir = std::env::temp_dir().join("p3c-cli-test-metrics");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.json");
        let path_s = path.to_str().unwrap();
        let out = run(&format!(
            "cluster --synthetic 1500x8 -k 2 --seed 3 -a mr-light --scheduler dag \
             --metrics-json {path_s}"
        ))
        .unwrap();
        assert!(out.contains("wrote metrics for"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        match serde_json::from_str::<p3c_mapreduce::ClusterMetrics>(&json) {
            Ok(metrics) => {
                assert!(metrics.num_jobs() > 0);
                assert!(!metrics.dag_runs().is_empty());
                assert!(metrics.dag_runs()[0].concurrency_high_water >= 1);
            }
            Err(e) => assert!(
                e.to_string().contains("offline stub"),
                "round-trip failed with a real serde_json: {e}"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_json_for_serial_algorithm_is_empty() {
        let dir = std::env::temp_dir().join("p3c-cli-test-metrics-serial");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.json");
        let path_s = path.to_str().unwrap();
        run(&format!(
            "cluster --synthetic 1500x8 -k 2 --seed 3 -a light --metrics-json {path_s}"
        ))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        match serde_json::from_str::<p3c_mapreduce::ClusterMetrics>(&json) {
            Ok(metrics) => {
                assert_eq!(metrics.num_jobs(), 0);
                assert!(metrics.dag_runs().is_empty());
            }
            Err(e) => assert!(
                e.to_string().contains("offline stub"),
                "round-trip failed with a real serde_json: {e}"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_then_cluster_file_roundtrip() {
        let dir = std::env::temp_dir().join("p3c-cli-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("data.txt");
        let path_s = path.to_str().unwrap();
        let gen_out = run(&format!(
            "generate --synthetic 1500x8 -k 2 --seed 3 --out {path_s}"
        ))
        .unwrap();
        assert!(gen_out.contains("wrote 1500 points"));
        let out = run(&format!("cluster --input {path_s} -a light")).unwrap();
        assert!(out.contains("light:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run("cluster --input /nonexistent/nope.txt").unwrap_err();
        assert!(matches!(err, ExecError::Io(_)));
    }

    #[test]
    fn malformed_file_is_decode_error() {
        let dir = std::env::temp_dir().join("p3c-cli-test-bad");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.txt");
        std::fs::write(&path, "this is not a dataset\n").unwrap();
        let err = run(&format!("cluster --input {}", path.to_str().unwrap())).unwrap_err();
        assert!(matches!(err, ExecError::Decode(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unnormalized_input_is_normalized() {
        // Values outside [0,1] must be min-max normalized, not rejected.
        let dir = std::env::temp_dir().join("p3c-cli-test-norm");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("wide.txt");
        let ds = Dataset::from_rows(
            (0..200)
                .map(|i| vec![i as f64, 1000.0 - i as f64, (i % 7) as f64 * 100.0])
                .collect(),
        );
        std::fs::write(&path, persist::to_text(&ds)).unwrap();
        let out = run(&format!(
            "cluster --input {} -a light",
            path.to_str().unwrap()
        ));
        assert!(out.is_ok(), "{out:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
