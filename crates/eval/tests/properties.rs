//! Property-based tests for the quality measures.

use p3c_dataset::{Clustering, ProjectedCluster};
use p3c_eval::{ce, e4sc, f1_object, rnia};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random clustering over point ids `< 60` and attributes `< 8`.
fn arb_clustering() -> impl Strategy<Value = Clustering> {
    prop::collection::vec(
        (
            prop::collection::btree_set(0usize..60, 1..20),
            prop::collection::btree_set(0usize..8, 1..4),
        ),
        1..5,
    )
    .prop_map(|spec| {
        let clusters = spec
            .into_iter()
            .map(|(points, attrs)| {
                ProjectedCluster::new(points.into_iter().collect(), attrs, vec![])
            })
            .collect();
        Clustering::new(clusters, vec![])
    })
}

proptest! {
    #[test]
    fn measures_are_in_unit_interval(a in arb_clustering(), b in arb_clustering()) {
        for (name, v) in [
            ("e4sc", e4sc(&a, &b)),
            ("f1", f1_object(&a, &b)),
            ("rnia", rnia(&a, &b)),
            ("ce", ce(&a, &b)),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
    }

    #[test]
    fn identity_scores_one(a in arb_clustering()) {
        prop_assert!((e4sc(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((f1_object(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((rnia(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((ce(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rnia_and_ce_are_symmetric(a in arb_clustering(), b in arb_clustering()) {
        prop_assert!((rnia(&a, &b) - rnia(&b, &a)).abs() < 1e-12);
        prop_assert!((ce(&a, &b) - ce(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn e4sc_is_symmetric(a in arb_clustering(), b in arb_clustering()) {
        // The harmonic combination of both directional averages is
        // symmetric by construction.
        prop_assert!((e4sc(&a, &b) - e4sc(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ce_bounded_by_rnia(a in arb_clustering(), b in arb_clustering()) {
        prop_assert!(ce(&a, &b) <= rnia(&a, &b) + 1e-12);
    }

    #[test]
    fn subobject_blindness_ordering(a in arb_clustering()) {
        // Replacing every cluster's subspace with a disjoint one zeroes
        // E4SC/RNIA/CE but leaves object-F1 at 1.
        let shifted = Clustering::new(
            a.clusters
                .iter()
                .map(|c| {
                    let attrs: BTreeSet<usize> = c.attributes.iter().map(|x| x + 100).collect();
                    ProjectedCluster::new(c.points.clone(), attrs, vec![])
                })
                .collect(),
            vec![],
        );
        prop_assert_eq!(e4sc(&shifted, &a), 0.0);
        prop_assert_eq!(rnia(&shifted, &a), 0.0);
        prop_assert_eq!(ce(&shifted, &a), 0.0);
        prop_assert!((f1_object(&shifted, &a) - 1.0).abs() < 1e-12);
    }
}
