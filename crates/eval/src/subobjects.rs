//! Subobject arithmetic shared by the quality measures.

use p3c_dataset::ProjectedCluster;

/// Size of the intersection of two sorted, deduplicated id lists
/// (two-pointer scan).
pub fn sorted_intersection_count(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// `|sub(A) ∩ sub(B)| = |points ∩| · |attrs ∩|` — the factorized subobject
/// intersection of two projected clusters.
pub fn subobject_intersection(a: &ProjectedCluster, b: &ProjectedCluster) -> usize {
    let points = sorted_intersection_count(&a.points, &b.points);
    if points == 0 {
        return 0;
    }
    let attrs = a.attributes.intersection(&b.attributes).count();
    points * attrs
}

/// Pairwise F1 of two clusters over subobject sets.
pub fn pairwise_f1_subobjects(a: &ProjectedCluster, b: &ProjectedCluster) -> f64 {
    let inter = subobject_intersection(a, b) as f64;
    pairwise_f1_from_counts(inter, a.num_subobjects() as f64, b.num_subobjects() as f64)
}

/// Pairwise F1 of two clusters over plain object sets (ignores subspaces).
pub fn pairwise_f1_objects(a: &ProjectedCluster, b: &ProjectedCluster) -> f64 {
    let inter = sorted_intersection_count(&a.points, &b.points) as f64;
    pairwise_f1_from_counts(inter, a.size() as f64, b.size() as f64)
}

/// F1 from intersection and set sizes; 0 when either set is empty.
pub fn pairwise_f1_from_counts(intersection: f64, size_a: f64, size_b: f64) -> f64 {
    if size_a <= 0.0 || size_b <= 0.0 || intersection <= 0.0 {
        return 0.0;
    }
    let precision = intersection / size_a;
    let recall = intersection / size_b;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>, attrs: &[usize]) -> ProjectedCluster {
        ProjectedCluster::new(
            points,
            attrs.iter().copied().collect::<BTreeSet<_>>(),
            vec![],
        )
    }

    #[test]
    fn intersection_count() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2], &[1, 2]), 2);
    }

    #[test]
    fn subobject_intersection_factorizes() {
        let a = cluster(vec![0, 1, 2, 3], &[0, 1]);
        let b = cluster(vec![2, 3, 4], &[1, 2]);
        // points ∩ = {2,3} (2), attrs ∩ = {1} (1) → 2 subobjects.
        assert_eq!(subobject_intersection(&a, &b), 2);
    }

    #[test]
    fn identical_clusters_have_f1_one() {
        let a = cluster(vec![0, 1, 2], &[3, 4]);
        assert!((pairwise_f1_subobjects(&a, &a) - 1.0).abs() < 1e-15);
        assert!((pairwise_f1_objects(&a, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn disjoint_clusters_have_f1_zero() {
        let a = cluster(vec![0, 1], &[0]);
        let b = cluster(vec![2, 3], &[0]);
        assert_eq!(pairwise_f1_subobjects(&a, &b), 0.0);
    }

    #[test]
    fn wrong_subspace_penalized() {
        // Same points, disjoint subspaces: subobject F1 is 0, object F1 is 1.
        let a = cluster(vec![0, 1, 2], &[0, 1]);
        let b = cluster(vec![0, 1, 2], &[2, 3]);
        assert_eq!(pairwise_f1_subobjects(&a, &b), 0.0);
        assert!((pairwise_f1_objects(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn partial_overlap_value() {
        // A = {0..4}×{0}, B = {0..9}×{0}: P = 1, R = 0.5 → F1 = 2/3.
        let a = cluster((0..5).collect(), &[0]);
        let b = cluster((0..10).collect(), &[0]);
        assert!((pairwise_f1_subobjects(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_yields_zero() {
        let a = cluster(vec![], &[0]);
        let b = cluster(vec![0], &[0]);
        assert_eq!(pairwise_f1_subobjects(&a, &b), 0.0);
    }
}
