//! RNIA — relative non-intersecting area (Patrikainen & Meilă), reported
//! here as a score: `1 − (U − I)/U = I/U` over subobject multisets.

use p3c_dataset::Clustering;
use std::collections::HashMap;

/// Per-subobject coverage multiplicities of a clustering.
fn multiplicities(c: &Clustering) -> HashMap<(usize, usize), u32> {
    let mut m = HashMap::new();
    for cluster in &c.clusters {
        for &p in &cluster.points {
            for &a in &cluster.attributes {
                *m.entry((p, a)).or_insert(0u32) += 1;
            }
        }
    }
    m
}

/// RNIA score of `found` against `hidden`, in `[0,1]` (1 is perfect).
///
/// `I = Σ min(m_found, m_hidden)` and `U = Σ max(m_found, m_hidden)` over
/// all subobjects, with multiset semantics so overlapping clusters count
/// multiply. Two empty clusterings score 1.
pub fn rnia(found: &Clustering, hidden: &Clustering) -> f64 {
    let mf = multiplicities(found);
    let mh = multiplicities(hidden);
    let mut intersection = 0u64;
    let mut union = 0u64;
    for (so, &cf) in &mf {
        let ch = mh.get(so).copied().unwrap_or(0);
        intersection += cf.min(ch) as u64;
        union += cf.max(ch) as u64;
    }
    for (so, &ch) in &mh {
        if !mf.contains_key(so) {
            union += ch as u64;
        }
    }
    if union == 0 {
        1.0 // both clusterings cover nothing — identical
    } else {
        intersection as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::ProjectedCluster;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>, attrs: &[usize]) -> ProjectedCluster {
        ProjectedCluster::new(
            points,
            attrs.iter().copied().collect::<BTreeSet<_>>(),
            vec![],
        )
    }

    fn clustering(clusters: Vec<ProjectedCluster>) -> Clustering {
        Clustering::new(clusters, vec![])
    }

    #[test]
    fn identical_scores_one() {
        let c = clustering(vec![cluster((0..10).collect(), &[0, 1])]);
        assert!((rnia(&c, &c) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn disjoint_scores_zero() {
        let a = clustering(vec![cluster((0..10).collect(), &[0])]);
        let b = clustering(vec![cluster((10..20).collect(), &[0])]);
        assert_eq!(rnia(&a, &b), 0.0);
    }

    #[test]
    fn half_coverage() {
        // found covers 10×1 subobjects, hidden 20×1, intersection 10 → 10/20.
        let found = clustering(vec![cluster((0..10).collect(), &[0])]);
        let hidden = clustering(vec![cluster((0..20).collect(), &[0])]);
        assert!((rnia(&found, &hidden) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn multiset_semantics() {
        // found double-covers the same subobjects with two clusters; hidden
        // covers once. I = Σ min(2,1) = 10, U = Σ max(2,1) = 20.
        let found = clustering(vec![
            cluster((0..10).collect(), &[0]),
            cluster((0..10).collect(), &[0]),
        ]);
        let hidden = clustering(vec![cluster((0..10).collect(), &[0])]);
        assert!((rnia(&found, &hidden) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn empty_both_is_one() {
        let empty = clustering(vec![]);
        assert_eq!(rnia(&empty, &empty), 1.0);
    }

    #[test]
    fn empty_one_side_is_zero() {
        let empty = clustering(vec![]);
        let one = clustering(vec![cluster(vec![0], &[0])]);
        assert_eq!(rnia(&empty, &one), 0.0);
        assert_eq!(rnia(&one, &empty), 0.0);
    }

    #[test]
    fn insensitive_to_splits_unlike_ce() {
        // RNIA is (by design) blind to splitting a cluster into two halves
        // that cover the same subobjects.
        let hidden = clustering(vec![cluster((0..10).collect(), &[0])]);
        let split = clustering(vec![
            cluster((0..5).collect(), &[0]),
            cluster((5..10).collect(), &[0]),
        ]);
        assert!((rnia(&split, &hidden) - 1.0).abs() < 1e-15);
    }
}
