//! CE — clustering error (Patrikainen & Meilă), reported as a score.
//!
//! Like RNIA but with a **one-to-one** correspondence between found and
//! hidden clusters: `CE = D_max / U`, where `D_max` is the total subobject
//! intersection of the best bipartite matching and `U` the multiset union
//! of subobjects. Splitting one hidden cluster into two found halves is
//! punished (only one half can match) — which is exactly why the paper
//! calls CE "too sensitive in the case of cluster splits" (Section 7.2).

use crate::matching::max_weight_matching;
use crate::subobjects::subobject_intersection;
use p3c_dataset::Clustering;
use std::collections::HashMap;

/// CE score of `found` against `hidden`, in `[0,1]` (1 is perfect).
pub fn ce(found: &Clustering, hidden: &Clustering) -> f64 {
    match (found.clusters.is_empty(), hidden.clusters.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    // Matched intersection mass under the best 1:1 correspondence.
    let weights: Vec<Vec<f64>> = found
        .clusters
        .iter()
        .map(|f| {
            hidden
                .clusters
                .iter()
                .map(|h| subobject_intersection(f, h) as f64)
                .collect()
        })
        .collect();
    let (_, d_max) = max_weight_matching(&weights);

    // Multiset union size (same accounting as RNIA's denominator).
    let mut mult: HashMap<(usize, usize), (u32, u32)> = HashMap::new();
    for cluster in &found.clusters {
        for &p in &cluster.points {
            for &a in &cluster.attributes {
                mult.entry((p, a)).or_default().0 += 1;
            }
        }
    }
    for cluster in &hidden.clusters {
        for &p in &cluster.points {
            for &a in &cluster.attributes {
                mult.entry((p, a)).or_default().1 += 1;
            }
        }
    }
    let union: u64 = mult.values().map(|&(f, h)| f.max(h) as u64).sum();
    if union == 0 {
        1.0
    } else {
        d_max / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::ProjectedCluster;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>, attrs: &[usize]) -> ProjectedCluster {
        ProjectedCluster::new(
            points,
            attrs.iter().copied().collect::<BTreeSet<_>>(),
            vec![],
        )
    }

    fn clustering(clusters: Vec<ProjectedCluster>) -> Clustering {
        Clustering::new(clusters, vec![])
    }

    #[test]
    fn identical_scores_one() {
        let c = clustering(vec![
            cluster((0..10).collect(), &[0, 1]),
            cluster((10..20).collect(), &[2]),
        ]);
        assert!((ce(&c, &c) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn split_is_punished_where_rnia_is_blind() {
        let hidden = clustering(vec![cluster((0..10).collect(), &[0])]);
        let split = clustering(vec![
            cluster((0..5).collect(), &[0]),
            cluster((5..10).collect(), &[0]),
        ]);
        let ce_score = ce(&split, &hidden);
        let rnia_score = crate::rnia(&split, &hidden);
        assert!((rnia_score - 1.0).abs() < 1e-15);
        // CE can match only one half: D = 5, U = 10.
        assert!((ce_score - 0.5).abs() < 1e-15);
    }

    #[test]
    fn one_to_one_matching_picks_best_pairs() {
        let hidden = clustering(vec![
            cluster((0..10).collect(), &[0]),
            cluster((10..30).collect(), &[0]),
        ]);
        // Found cluster A overlaps both hidden clusters; matching must give
        // it to the one maximizing total mass.
        let found = clustering(vec![
            cluster((5..15).collect(), &[0]),  // 5 with h0, 5 with h1
            cluster((15..30).collect(), &[0]), // 15 with h1
        ]);
        // Best: f0→h0 (5) + f1→h1 (15) = 20. U = 30 distinct subobjects... plus f covers 5..30 = 25, union = 30.
        let s = ce(&found, &hidden);
        assert!((s - 20.0 / 30.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn wrong_subspace_scores_zero() {
        let hidden = clustering(vec![cluster((0..10).collect(), &[0])]);
        let wrong = clustering(vec![cluster((0..10).collect(), &[1])]);
        assert_eq!(ce(&wrong, &hidden), 0.0);
    }

    #[test]
    fn empty_conventions() {
        let empty = clustering(vec![]);
        let one = clustering(vec![cluster(vec![0], &[0])]);
        assert_eq!(ce(&empty, &empty), 1.0);
        assert_eq!(ce(&one, &empty), 0.0);
        assert_eq!(ce(&empty, &one), 0.0);
    }

    #[test]
    fn bounded_by_rnia() {
        // CE ≤ RNIA always (matching restricts the intersection mass).
        let hidden = clustering(vec![
            cluster((0..20).collect(), &[0, 1]),
            cluster((20..50).collect(), &[1, 2]),
        ]);
        let found = clustering(vec![
            cluster((0..15).collect(), &[0, 1]),
            cluster((15..35).collect(), &[1]),
            cluster((35..50).collect(), &[1, 2]),
        ]);
        assert!(ce(&found, &hidden) <= crate::rnia(&found, &hidden) + 1e-12);
    }
}
