//! E4SC: symmetric subobject-F1 quality of a found clustering against the
//! hidden ground truth.
//!
//! Construction (see crate docs for provenance):
//!
//! ```text
//! F1_cov  = avg over hidden clusters h of  max over found f of F1(f, h)
//! F1_prec = avg over found  clusters f of  max over hidden h of F1(f, h)
//! E4SC    = harmonic mean of F1_cov and F1_prec
//! ```
//!
//! `F1_cov` drops when hidden clusters are missed or split; `F1_prec`
//! drops when spurious or merged clusters are reported; pairwise F1 itself
//! drops on wrong subspaces and wrong object assignments.

use crate::subobjects::pairwise_f1_subobjects;
use p3c_dataset::Clustering;

/// E4SC of `found` against `hidden`, in `[0,1]`.
///
/// Conventions for degenerate inputs: two empty clusterings are identical
/// (`1.0`); one-sided emptiness scores `0.0`.
///
/// ```
/// use p3c_dataset::{Clustering, ProjectedCluster};
/// use p3c_eval::e4sc;
/// use std::collections::BTreeSet;
///
/// let hidden = Clustering::new(vec![ProjectedCluster::new(
///     (0..100).collect(), BTreeSet::from([0, 1]), vec![])], vec![]);
/// // Same points, half the subspace: quality strictly between 0 and 1.
/// let found = Clustering::new(vec![ProjectedCluster::new(
///     (0..100).collect(), BTreeSet::from([1, 2]), vec![])], vec![]);
/// let q = e4sc(&found, &hidden);
/// assert!(q > 0.0 && q < 1.0);
/// assert_eq!(e4sc(&hidden, &hidden), 1.0);
/// ```
pub fn e4sc(found: &Clustering, hidden: &Clustering) -> f64 {
    match (found.clusters.is_empty(), hidden.clusters.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let coverage: f64 = hidden
        .clusters
        .iter()
        .map(|h| {
            found
                .clusters
                .iter()
                .map(|f| pairwise_f1_subobjects(f, h))
                .fold(0.0f64, f64::max)
        })
        .sum::<f64>()
        / hidden.clusters.len() as f64;
    let precision: f64 = found
        .clusters
        .iter()
        .map(|f| {
            hidden
                .clusters
                .iter()
                .map(|h| pairwise_f1_subobjects(f, h))
                .fold(0.0f64, f64::max)
        })
        .sum::<f64>()
        / found.clusters.len() as f64;
    if coverage + precision == 0.0 {
        0.0
    } else {
        2.0 * coverage * precision / (coverage + precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::ProjectedCluster;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>, attrs: &[usize]) -> ProjectedCluster {
        ProjectedCluster::new(
            points,
            attrs.iter().copied().collect::<BTreeSet<_>>(),
            vec![],
        )
    }

    fn clustering(clusters: Vec<ProjectedCluster>) -> Clustering {
        Clustering::new(clusters, vec![])
    }

    #[test]
    fn identical_clusterings_score_one() {
        let c = clustering(vec![
            cluster((0..50).collect(), &[0, 1]),
            cluster((50..100).collect(), &[2, 3]),
        ]);
        assert!((e4sc(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let empty = clustering(vec![]);
        let something = clustering(vec![cluster(vec![0], &[0])]);
        assert_eq!(e4sc(&empty, &empty), 1.0);
        assert_eq!(e4sc(&empty, &something), 0.0);
        assert_eq!(e4sc(&something, &empty), 0.0);
    }

    #[test]
    fn merge_is_punished() {
        let hidden = clustering(vec![
            cluster((0..50).collect(), &[0, 1]),
            cluster((50..100).collect(), &[0, 1]),
        ]);
        let merged = clustering(vec![cluster((0..100).collect(), &[0, 1])]);
        let s = e4sc(&merged, &hidden);
        assert!(s < 0.8, "merge scored {s}");
        assert!(s > 0.0);
    }

    #[test]
    fn wrong_subspace_is_punished() {
        let hidden = clustering(vec![cluster((0..50).collect(), &[0, 1])]);
        let wrong = clustering(vec![cluster((0..50).collect(), &[2, 3])]);
        assert_eq!(e4sc(&wrong, &hidden), 0.0);
        // Half-right subspace scores between 0 and 1.
        let half = clustering(vec![cluster((0..50).collect(), &[1, 2])]);
        let s = e4sc(&half, &hidden);
        assert!(s > 0.3 && s < 0.9, "half subspace scored {s}");
    }

    #[test]
    fn spurious_cluster_is_punished() {
        let hidden = clustering(vec![cluster((0..50).collect(), &[0, 1])]);
        let exact = clustering(vec![cluster((0..50).collect(), &[0, 1])]);
        let with_spurious = clustering(vec![
            cluster((0..50).collect(), &[0, 1]),
            cluster((60..80).collect(), &[4, 5]),
        ]);
        assert!(e4sc(&with_spurious, &hidden) < e4sc(&exact, &hidden));
    }

    #[test]
    fn missed_cluster_is_punished() {
        let hidden = clustering(vec![
            cluster((0..50).collect(), &[0, 1]),
            cluster((50..100).collect(), &[2, 3]),
        ]);
        let partial = clustering(vec![cluster((0..50).collect(), &[0, 1])]);
        let s = e4sc(&partial, &hidden);
        assert!(s < 0.8 && s > 0.3, "missed cluster scored {s}");
    }

    #[test]
    fn score_in_unit_interval_for_noisy_result() {
        let hidden = clustering(vec![cluster((0..30).collect(), &[0, 1, 2])]);
        let found = clustering(vec![
            cluster((10..40).collect(), &[0, 1]),
            cluster((0..5).collect(), &[2]),
        ]);
        let s = e4sc(&found, &hidden);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn symmetry_of_identity() {
        let a = clustering(vec![cluster((0..10).collect(), &[0])]);
        let b = clustering(vec![cluster((0..10).collect(), &[0])]);
        assert_eq!(e4sc(&a, &b), e4sc(&b, &a));
    }

    #[test]
    fn better_approximation_scores_higher() {
        let hidden = clustering(vec![cluster((0..100).collect(), &[0, 1, 2])]);
        let close = clustering(vec![cluster((0..90).collect(), &[0, 1, 2])]);
        let far = clustering(vec![cluster((0..50).collect(), &[0, 1])]);
        assert!(e4sc(&close, &hidden) > e4sc(&far, &hidden));
    }
}
