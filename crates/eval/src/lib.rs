//! External quality measures for subspace/projected clusterings.
//!
//! The paper evaluates with the measures of Günnemann et al., *"External
//! evaluation measures for subspace clustering"* (CIKM 2011): **E4SC**
//! (the headline measure of every quality figure), plus **F1**, **RNIA**
//! and **CE** (discussed and dismissed in Section 7.2 — we implement all
//! four so that the comparison can be reproduced). The real-world
//! experiment (Section 7.6) additionally uses label **accuracy**.
//!
//! All subspace-aware measures operate on *subobjects*: pairs
//! `(point, attribute)` with the attribute relevant to the cluster.
//! Pairwise subobject intersections factorize as
//! `|points(A) ∩ points(B)| · |attrs(A) ∩ attrs(B)|`, so no subobject set
//! is ever materialized for the F1-style measures.
//!
//! The original E4SC definition is not reproduced verbatim in the P3C+-MR
//! paper; we implement the standard symmetric subobject-F1 construction
//! (best-match F1 in both directions, combined harmonically), which has
//! the properties the paper relies on: it is in `[0,1]`, equals 1 exactly
//! on identical clusterings, and punishes cluster merges, wrong subspaces
//! and wrong object assignments.

pub mod accuracy;
pub mod ce;
pub mod e4sc;
pub mod f1;
pub mod matching;
pub mod rnia;
pub mod subobjects;

pub use accuracy::label_accuracy;
pub use ce::ce;
pub use e4sc::e4sc;
pub use f1::f1_object;
pub use rnia::rnia;
