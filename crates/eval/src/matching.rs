//! Maximum-weight bipartite matching (Hungarian algorithm) for the CE
//! measure's one-to-one cluster correspondence.

/// Solves the assignment problem on a `rows × cols` weight matrix,
/// returning the matching that **maximizes** total weight and that total.
///
/// The returned vector has one entry per row: `Some(col)` if the row is
/// matched, `None` otherwise. Rectangular matrices are handled by padding
/// to a square with zero weights; zero-weight pads are reported as `None`.
///
/// Complexity O(n³) — cluster counts here are tiny (tens), so this is
/// instantaneous.
pub fn max_weight_matching(weights: &[Vec<f64>]) -> (Vec<Option<usize>>, f64) {
    let rows = weights.len();
    let cols = weights.first().map_or(0, Vec::len);
    if rows == 0 || cols == 0 {
        return (vec![None; rows], 0.0);
    }
    let n = rows.max(cols);
    // Convert to a min-cost square matrix: cost = max_w − w.
    let max_w = weights
        .iter()
        .flat_map(|r| r.iter().copied())
        .fold(0.0f64, f64::max);
    let cost = |r: usize, c: usize| -> f64 {
        if r < rows && c < cols {
            max_w - weights[r][c]
        } else {
            max_w // padding: equivalent to weight 0
        }
    };

    // Hungarian algorithm (Jonker-style potentials), 1-indexed internals.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; rows];
    let mut total = 0.0;
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i - 1 < rows && j - 1 < cols {
            let w = weights[i - 1][j - 1];
            if w > 0.0 {
                assignment[i - 1] = Some(j - 1);
                total += w;
            }
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_matching() {
        let w = vec![
            vec![7.0, 5.0, 1.0],
            vec![2.0, 4.0, 6.0],
            vec![8.0, 3.0, 9.0],
        ];
        let (assign, total) = max_weight_matching(&w);
        // Best: (0→0)=7, (1→1)=4, (2→2)=9 → 20; check alternatives:
        // (0→1)+ (1→2)+(2→0)=5+6+8=19; (0→0)+(1→2)+(2→1)? invalid col reuse no: 7+6+3=16.
        assert_eq!(total, 20.0);
        assert_eq!(assign, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_rows() {
        let w = vec![vec![5.0], vec![9.0], vec![1.0]];
        let (assign, total) = max_weight_matching(&w);
        assert_eq!(total, 9.0);
        assert_eq!(assign[1], Some(0));
        assert_eq!(assign[0], None);
        assert_eq!(assign[2], None);
    }

    #[test]
    fn rectangular_more_cols() {
        let w = vec![vec![1.0, 100.0, 3.0]];
        let (assign, total) = max_weight_matching(&w);
        assert_eq!(total, 100.0);
        assert_eq!(assign, vec![Some(1)]);
    }

    #[test]
    fn empty_matrix() {
        let (assign, total) = max_weight_matching(&[]);
        assert!(assign.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn all_zero_weights_match_nothing() {
        let w = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let (assign, total) = max_weight_matching(&w);
        assert_eq!(total, 0.0);
        assert_eq!(assign, vec![None, None]);
    }

    #[test]
    fn one_to_one_constraint_holds() {
        // A greedy matcher would give row0→col0 (10) and row1 nothing good;
        // optimal sacrifices row0 to col1.
        let w = vec![vec![10.0, 9.0], vec![10.0, 0.0]];
        let (assign, total) = max_weight_matching(&w);
        assert_eq!(total, 19.0);
        assert_eq!(assign, vec![Some(1), Some(0)]);
    }

    #[test]
    fn brute_force_agreement() {
        // Exhaustively compare against permutation enumeration on 4×4.
        let w: Vec<Vec<f64>> = vec![
            vec![3.0, 8.0, 2.0, 9.0],
            vec![7.0, 1.0, 5.0, 4.0],
            vec![6.0, 9.0, 2.0, 2.0],
            vec![4.0, 4.0, 8.0, 1.0],
        ];
        let perms = permutations(4);
        let best = perms
            .iter()
            .map(|p| p.iter().enumerate().map(|(r, &c)| w[r][c]).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        let (_, total) = max_weight_matching(&w);
        assert_eq!(total, best);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let smaller = permutations(n - 1);
        let mut out = Vec::new();
        for p in smaller {
            for pos in 0..=p.len() {
                let mut q: Vec<usize> = p.clone();
                q.insert(pos, n - 1);
                out.push(q);
            }
        }
        out
    }
}
