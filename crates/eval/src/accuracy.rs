//! Label accuracy for labelled data — the Section 7.6 colon experiment.

use p3c_dataset::Clustering;
use std::collections::HashMap;

/// Accuracy of a clustering against per-point class labels (purity-style).
///
/// Every cell of the partition — each cluster, *and the outlier set as
/// one additional cell* — votes for its majority class; a point is
/// counted correct iff its cell's majority class equals its label. When
/// a point belongs to several clusters, the first containing cluster
/// decides. Points in no cluster belong to the outlier cell.
///
/// Grading the outlier cell by its own majority keeps the measure fair
/// to algorithms that *explain* part of the data and explicitly reject
/// the rest: rejecting a coherent class as outliers is a correct binary
/// separation, not `|outliers|` errors. The floor of the measure is the
/// majority-class frequency (attained by any single-cell partition).
pub fn label_accuracy(clustering: &Clustering, labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    // Cell index per point: Some(cluster) or None (outlier cell).
    let cell_of = |p: usize| -> Option<usize> {
        clustering.clusters.iter().position(|c| c.contains_point(p))
    };

    // Majority class per cluster cell and for the outlier cell.
    let mut votes: Vec<HashMap<usize, usize>> = vec![HashMap::new(); clustering.clusters.len() + 1];
    for (p, &label) in labels.iter().enumerate() {
        let cell = cell_of(p).unwrap_or(clustering.clusters.len());
        *votes[cell].entry(label).or_insert(0) += 1;
    }
    let majorities: Vec<Option<usize>> = votes
        .iter()
        .map(|v| {
            v.iter()
                .max_by_key(|&(class, n)| (*n, std::cmp::Reverse(*class)))
                .map(|(&c, _)| c)
        })
        .collect();

    let mut correct = 0usize;
    for (p, &label) in labels.iter().enumerate() {
        let cell = cell_of(p).unwrap_or(clustering.clusters.len());
        if majorities[cell] == Some(label) {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::ProjectedCluster;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>) -> ProjectedCluster {
        ProjectedCluster::new(points, BTreeSet::from([0]), vec![])
    }

    #[test]
    fn perfect_clustering() {
        let labels = vec![0, 0, 0, 1, 1];
        let c = Clustering::new(vec![cluster(vec![0, 1, 2]), cluster(vec![3, 4])], vec![]);
        assert!((label_accuracy(&c, &labels) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn majority_decides() {
        let labels = vec![0, 0, 1, 1, 1];
        // One cluster with majority 1: the two 0-points are wrong.
        let c = Clustering::new(vec![cluster(vec![0, 1, 2, 3, 4])], vec![]);
        assert!((label_accuracy(&c, &labels) - 0.6).abs() < 1e-15);
    }

    #[test]
    fn coherent_outlier_cell_is_rewarded() {
        // Cluster isolates class 0; class 1 is rejected wholesale — a
        // correct binary separation scores 1.0.
        let labels = vec![0, 0, 1, 1];
        let c = Clustering::new(vec![cluster(vec![0, 1])], vec![2, 3]);
        assert!((label_accuracy(&c, &labels) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mixed_outlier_cell_scores_its_majority() {
        let labels = vec![0, 0, 0, 1, 1, 0];
        // Outlier cell = {3, 4, 5} with labels {1, 1, 0} → majority 1.
        let c = Clustering::new(vec![cluster(vec![0, 1, 2])], vec![3, 4, 5]);
        // Correct: 0,1,2 (cluster majority 0) + 3,4 (outlier majority 1).
        assert!((label_accuracy(&c, &labels) - 5.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn empty_clustering_scores_majority_floor() {
        let labels = vec![0, 0, 0, 1];
        let c = Clustering::new(vec![], vec![0, 1, 2, 3]);
        assert!((label_accuracy(&c, &labels) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn empty_labels() {
        let c = Clustering::new(vec![], vec![]);
        assert_eq!(label_accuracy(&c, &[]), 0.0);
    }

    #[test]
    fn first_containing_cluster_decides_for_overlap() {
        let labels = vec![0, 1];
        let c = Clustering::new(vec![cluster(vec![0, 1]), cluster(vec![1])], vec![]);
        // Cluster 0 holds both points; tie {0:1, 1:1} broken to class 0.
        let acc = label_accuracy(&c, &labels);
        assert!((acc - 0.5).abs() < 1e-15);
    }
}
