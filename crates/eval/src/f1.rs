//! Object-level F1 — the full-space clustering measure the paper reports
//! alongside E4SC (and criticizes: it cannot punish wrong subspaces).

use crate::subobjects::pairwise_f1_objects;
use p3c_dataset::Clustering;

/// Symmetric object-level F1 of `found` against `hidden` — identical
/// construction to [`crate::e4sc::e4sc`] but over plain object sets.
pub fn f1_object(found: &Clustering, hidden: &Clustering) -> f64 {
    match (found.clusters.is_empty(), hidden.clusters.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let coverage: f64 = hidden
        .clusters
        .iter()
        .map(|h| {
            found
                .clusters
                .iter()
                .map(|f| pairwise_f1_objects(f, h))
                .fold(0.0f64, f64::max)
        })
        .sum::<f64>()
        / hidden.clusters.len() as f64;
    let precision: f64 = found
        .clusters
        .iter()
        .map(|f| {
            hidden
                .clusters
                .iter()
                .map(|h| pairwise_f1_objects(f, h))
                .fold(0.0f64, f64::max)
        })
        .sum::<f64>()
        / found.clusters.len() as f64;
    if coverage + precision == 0.0 {
        0.0
    } else {
        2.0 * coverage * precision / (coverage + precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3c_dataset::ProjectedCluster;
    use std::collections::BTreeSet;

    fn cluster(points: Vec<usize>, attrs: &[usize]) -> ProjectedCluster {
        ProjectedCluster::new(
            points,
            attrs.iter().copied().collect::<BTreeSet<_>>(),
            vec![],
        )
    }

    fn clustering(clusters: Vec<ProjectedCluster>) -> Clustering {
        Clustering::new(clusters, vec![])
    }

    #[test]
    fn identical_scores_one() {
        let c = clustering(vec![cluster((0..20).collect(), &[0])]);
        assert!((f1_object(&c, &c) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn blind_to_wrong_subspace() {
        // The paper's criticism of F1, verified: same objects in a totally
        // wrong subspace still score 1.
        let hidden = clustering(vec![cluster((0..20).collect(), &[0, 1])]);
        let wrong = clustering(vec![cluster((0..20).collect(), &[7, 8])]);
        assert!((f1_object(&wrong, &hidden) - 1.0).abs() < 1e-15);
        // ...whereas E4SC gives 0 on the same input.
        assert_eq!(crate::e4sc(&wrong, &hidden), 0.0);
    }

    #[test]
    fn object_errors_still_punished() {
        let hidden = clustering(vec![cluster((0..20).collect(), &[0])]);
        let half = clustering(vec![cluster((0..10).collect(), &[0])]);
        let s = f1_object(&half, &hidden);
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn empty_conventions() {
        let empty = clustering(vec![]);
        let one = clustering(vec![cluster(vec![0], &[0])]);
        assert_eq!(f1_object(&empty, &empty), 1.0);
        assert_eq!(f1_object(&one, &empty), 0.0);
    }
}
