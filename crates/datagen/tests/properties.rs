//! Property tests for the synthetic workload generator.

use p3c_datagen::{generate, SyntheticSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        1usize..5,
        200usize..800,
        0.0f64..0.3,
        4usize..12,
        0u64..1000,
    )
        .prop_map(|(k, n, noise, d, seed)| SyntheticSpec {
            n,
            d,
            num_clusters: k,
            noise_fraction: noise,
            min_cluster_dims: 1.min(d),
            max_cluster_dims: 4.min(d),
            seed,
            ..SyntheticSpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_data_is_consistent(spec in arb_spec()) {
        let g = generate(&spec);
        // Shape.
        prop_assert_eq!(g.dataset.len(), spec.n);
        prop_assert_eq!(g.dataset.dim(), spec.d);
        prop_assert_eq!(g.labels.len(), spec.n);
        prop_assert_eq!(g.ground_truth.num_clusters(), spec.num_clusters);
        // All values normalized.
        prop_assert!(g.dataset.is_normalized());
        // Labels partition the points consistently with the ground truth.
        let mut seen = vec![false; spec.n];
        for (ci, cluster) in g.ground_truth.clusters.iter().enumerate() {
            for &p in &cluster.points {
                prop_assert_eq!(g.labels[p], ci as i64);
                prop_assert!(!seen[p]);
                seen[p] = true;
            }
        }
        for &o in &g.ground_truth.outliers {
            prop_assert_eq!(g.labels[o], -1);
            prop_assert!(!seen[o]);
            seen[o] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Noise count matches the fraction.
        let expected_noise = (spec.n as f64 * spec.noise_fraction).round() as usize;
        prop_assert_eq!(g.ground_truth.outliers.len(), expected_noise);
    }

    #[test]
    fn members_lie_in_true_signatures(spec in arb_spec()) {
        let g = generate(&spec);
        for cluster in &g.ground_truth.clusters {
            prop_assert!(cluster.attributes.len() <= spec.max_cluster_dims);
            for &p in &cluster.points {
                prop_assert!(cluster.covers(g.dataset.row(p)));
            }
            for iv in &cluster.intervals {
                prop_assert!(iv.width() <= spec.max_width + 1e-9);
            }
        }
    }

    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.dataset, b.dataset);
        prop_assert_eq!(a.labels, b.labels);
    }
}
