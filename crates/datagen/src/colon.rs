//! A colon-cancer-like high-dimensional, tiny-sample dataset.
//!
//! The paper's only real-world experiment (Section 7.6) runs P3C and P3C+
//! on the UCI 'colon cancer' microarray set: 62 samples × 2000 genes, with
//! a tumor/normal annotation, and compares clustering *accuracy* against
//! the labels (67% for P3C vs 71% for P3C+). The original data is a
//! licensed download, so this module synthesizes a matrix with the same
//! shape and the same statistical character: a small block of
//! discriminative genes whose expression separates the two classes, buried
//! in a large number of non-informative noise genes.

use p3c_dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Specification for the colon-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColonSpec {
    /// Samples in class 0 ("tumor"; real set: 40).
    pub class0: usize,
    /// Samples in class 1 ("normal"; real set: 22).
    pub class1: usize,
    /// Total genes/attributes (real set: 2000).
    pub genes: usize,
    /// Number of genes that actually separate the classes.
    pub discriminative: usize,
    /// Class separation in normalized expression units.
    pub separation: f64,
    /// Within-class standard deviation on discriminative genes.
    pub sigma: f64,
    pub seed: u64,
}

impl Default for ColonSpec {
    fn default() -> Self {
        Self {
            class0: 40,
            class1: 22,
            genes: 2000,
            // Few enough markers that the 2^markers signature lattice a
            // perfectly correlated gene block induces stays tractable for
            // the Apriori search (the real microarray data is far less
            // correlated than a synthetic block).
            discriminative: 12,
            separation: 0.4,
            sigma: 0.06,
            seed: 0,
        }
    }
}

/// A dataset with per-point class labels.
#[derive(Debug, Clone)]
pub struct LabeledData {
    pub dataset: Dataset,
    /// Class of each point (0 or 1).
    pub labels: Vec<usize>,
    /// The genes that actually discriminate (ground truth for inspection).
    pub discriminative_genes: Vec<usize>,
}

/// Generates the colon-like dataset.
pub fn colon_like(spec: &ColonSpec) -> LabeledData {
    assert!(spec.class0 + spec.class1 >= 2, "need at least two samples");
    assert!(spec.discriminative <= spec.genes, "more markers than genes");
    assert!(spec.separation > 0.0 && spec.sigma > 0.0);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.class0 + spec.class1;

    // Choose which genes discriminate.
    let mut all: Vec<usize> = (0..spec.genes).collect();
    all.shuffle(&mut rng);
    let mut markers: Vec<usize> = all.into_iter().take(spec.discriminative).collect();
    markers.sort_unstable();

    // Class centers on marker genes, symmetric around 0.5.
    let c0 = 0.5 - spec.separation / 2.0;
    let c1 = 0.5 + spec.separation / 2.0;

    // Draw straight into one flat row-major buffer and shuffle a
    // (class, source-row) permutation instead of owned row vectors; the
    // RNG consumption is unchanged, so seeded output stays stable.
    let d = spec.genes;
    let mut drawn: Vec<f64> = Vec::with_capacity(n * d);
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(n);
    for class in [0usize, 1] {
        let count = if class == 0 { spec.class0 } else { spec.class1 };
        let center = if class == 0 { c0 } else { c1 };
        let gauss = Normal::new(center, spec.sigma).expect("valid normal");
        for _ in 0..count {
            let start = drawn.len();
            order.push((class, order.len()));
            drawn.extend((0..d).map(|_| rng.gen::<f64>()));
            let row = &mut drawn[start..];
            for &g in &markers {
                let v: f64 = gauss.sample(&mut rng);
                row[g] = v.clamp(0.0, 1.0);
            }
        }
    }
    order.shuffle(&mut rng);
    let labels: Vec<usize> = order.iter().map(|(c, _)| *c).collect();
    let mut data = Vec::with_capacity(n * d);
    for &(_, src) in &order {
        data.extend_from_slice(&drawn[src * d..(src + 1) * d]);
    }
    let dataset = Dataset::new(n, d, data);
    LabeledData {
        dataset,
        labels,
        discriminative_genes: markers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_real_colon() {
        let g = colon_like(&ColonSpec::default());
        assert_eq!(g.dataset.len(), 62);
        assert_eq!(g.dataset.dim(), 2000);
        assert_eq!(g.labels.iter().filter(|&&c| c == 0).count(), 40);
        assert_eq!(g.labels.iter().filter(|&&c| c == 1).count(), 22);
        assert!(g.dataset.is_normalized());
    }

    #[test]
    fn marker_genes_separate_classes() {
        let g = colon_like(&ColonSpec::default());
        // On every marker gene the class means differ by roughly the
        // configured separation.
        for &gene in &g.discriminative_genes {
            let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0, 0.0, 0);
            for (i, &c) in g.labels.iter().enumerate() {
                let v = g.dataset.get(i, gene);
                if c == 0 {
                    s0 += v;
                    n0 += 1;
                } else {
                    s1 += v;
                    n1 += 1;
                }
            }
            let diff = s1 / n1 as f64 - s0 / n0 as f64;
            assert!(diff > 0.25, "gene {gene} separation {diff}");
        }
    }

    #[test]
    fn non_marker_genes_do_not_separate() {
        let g = colon_like(&ColonSpec::default());
        let markers: std::collections::BTreeSet<usize> =
            g.discriminative_genes.iter().copied().collect();
        let mut max_diff: f64 = 0.0;
        for gene in (0..2000).filter(|g| !markers.contains(g)).take(100) {
            let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0, 0.0, 0);
            for (i, &c) in g.labels.iter().enumerate() {
                let v = g.dataset.get(i, gene);
                if c == 0 {
                    s0 += v;
                    n0 += 1;
                } else {
                    s1 += v;
                    n1 += 1;
                }
            }
            max_diff = max_diff.max((s1 / n1 as f64 - s0 / n0 as f64).abs());
        }
        // Random-noise genes: class-mean gaps stay well below the marker
        // separation (sampling noise at n=62 is ~0.1).
        assert!(max_diff < 0.3, "noise gene separation {max_diff}");
    }

    #[test]
    fn deterministic() {
        let a = colon_like(&ColonSpec::default());
        let b = colon_like(&ColonSpec::default());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn custom_spec() {
        let spec = ColonSpec {
            class0: 5,
            class1: 5,
            genes: 50,
            discriminative: 10,
            ..ColonSpec::default()
        };
        let g = colon_like(&spec);
        assert_eq!(g.dataset.len(), 10);
        assert_eq!(g.dataset.dim(), 50);
        assert_eq!(g.discriminative_genes.len(), 10);
    }
}
