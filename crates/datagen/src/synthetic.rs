//! The Section 7.1 synthetic projected-cluster generator.
//!
//! Paper parameters reproduced here:
//!
//! * data dimensionality `d = 50` (default; configurable),
//! * number of hidden clusters ∈ {3, 5, 7},
//! * noise percentage ∈ {0, 5, 10, 20} of the database size,
//! * cluster dimensionality between 2 and 10,
//! * relevant interval widths between 0.1 and 0.3,
//! * Gaussian distribution inside each relevant interval (the paper's
//!   "σ = 1" Gaussian scaled to the interval: we use σ = width/6 and clamp
//!   to the interval so the true signature exactly bounds the cluster),
//! * uniform distribution on irrelevant attributes and for noise points,
//! * at least two clusters overlap on a shared relevant attribute.

use p3c_dataset::{AttrInterval, Clustering, Dataset, ProjectedCluster};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Specification of one synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Total number of points (clusters + noise).
    pub n: usize,
    /// Data dimensionality (paper: 50).
    pub d: usize,
    /// Number of hidden clusters (paper: 3, 5 or 7).
    pub num_clusters: usize,
    /// Fraction of `n` that is uniform noise (paper: 0.0–0.2).
    pub noise_fraction: f64,
    /// Minimum cluster dimensionality (paper: 2).
    pub min_cluster_dims: usize,
    /// Maximum cluster dimensionality (paper: 10).
    pub max_cluster_dims: usize,
    /// Minimum relevant-interval width (paper: 0.1).
    pub min_width: f64,
    /// Maximum relevant-interval width (paper: 0.3).
    pub max_width: f64,
    /// Guarantee that clusters 0 and 1 overlap on a shared attribute
    /// (the paper: "each generated data set contains at least two clusters
    /// that overlap").
    pub force_overlap: bool,
    /// RNG seed — everything about the dataset is a pure function of the
    /// spec, including this seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            n: 10_000,
            d: 50,
            num_clusters: 5,
            noise_fraction: 0.1,
            min_cluster_dims: 2,
            max_cluster_dims: 10,
            min_width: 0.1,
            max_width: 0.3,
            force_overlap: true,
            seed: 0,
        }
    }
}

impl SyntheticSpec {
    /// Convenience constructor for the paper's main grid: size, cluster
    /// count, noise level.
    pub fn grid(n: usize, num_clusters: usize, noise_fraction: f64, seed: u64) -> Self {
        Self {
            n,
            num_clusters,
            noise_fraction,
            seed,
            ..Self::default()
        }
    }
}

/// A generated dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    pub dataset: Dataset,
    /// The hidden clusters as true signatures (Definition 4: the smallest
    /// intervals containing all member points on the relevant attributes).
    pub ground_truth: Clustering,
    /// Per-point label: cluster index, or `-1` for noise.
    pub labels: Vec<i64>,
}

/// Hidden-cluster geometry decided before points are drawn.
struct ClusterPlan {
    attrs: Vec<usize>,
    intervals: Vec<(f64, f64)>, // (lo, hi) per attr, same order as attrs
    size: usize,
}

/// Generates a dataset according to the spec.
///
/// ```
/// use p3c_datagen::{generate, SyntheticSpec};
///
/// let data = generate(&SyntheticSpec {
///     n: 1_000, d: 10, num_clusters: 2, noise_fraction: 0.1,
///     max_cluster_dims: 4, seed: 7, ..SyntheticSpec::default()
/// });
/// assert_eq!(data.dataset.len(), 1_000);
/// assert_eq!(data.ground_truth.num_clusters(), 2);
/// // Every cluster member lies inside its true signature.
/// for c in &data.ground_truth.clusters {
///     assert!(c.points.iter().all(|&p| c.covers(data.dataset.row(p))));
/// }
/// ```
///
/// # Panics
/// Panics if the spec is inconsistent (zero clusters with cluster points,
/// more cluster dims than data dims, widths outside `(0,1]`).
pub fn generate(spec: &SyntheticSpec) -> GeneratedData {
    assert!(spec.d >= 1, "need at least one dimension");
    assert!(spec.num_clusters >= 1, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&spec.noise_fraction),
        "noise fraction in [0,1]"
    );
    assert!(spec.min_cluster_dims >= 1 && spec.min_cluster_dims <= spec.max_cluster_dims);
    assert!(
        spec.max_cluster_dims <= spec.d,
        "cluster dims exceed data dims"
    );
    assert!(spec.min_width > 0.0 && spec.max_width <= 1.0 && spec.min_width <= spec.max_width);

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let noise_count = (spec.n as f64 * spec.noise_fraction).round() as usize;
    let cluster_total = spec.n - noise_count;

    let plans = plan_clusters(spec, cluster_total, &mut rng);

    // Draw the points cluster-block by cluster-block straight into one
    // flat row-major buffer (the columnar data plane's native layout),
    // then shuffle a (label, source-row) permutation so input splits do
    // not align with clusters. Shuffling indices instead of owned rows
    // consumes the identical Fisher–Yates randomness, so the generated
    // data is byte-for-byte what the row-vector path produced.
    let d = spec.d;
    let mut drawn: Vec<f64> = Vec::with_capacity(spec.n * d);
    let mut order: Vec<(i64, usize)> = Vec::with_capacity(spec.n);
    for (ci, plan) in plans.iter().enumerate() {
        for _ in 0..plan.size {
            order.push((ci as i64, order.len()));
            draw_member_into(plan, d, &mut rng, &mut drawn);
        }
    }
    for _ in 0..noise_count {
        order.push((-1, order.len()));
        drawn.extend((0..d).map(|_| rng.gen::<f64>()));
    }
    order.shuffle(&mut rng);

    let labels: Vec<i64> = order.iter().map(|(l, _)| *l).collect();
    let mut data = Vec::with_capacity(spec.n * d);
    for &(_, src) in &order {
        data.extend_from_slice(&drawn[src * d..(src + 1) * d]);
    }
    let dataset = Dataset::new(spec.n, d, data);

    // Ground truth: the *true signature* of each hidden cluster — the
    // tightest interval actually containing the drawn members.
    let mut clusters = Vec::with_capacity(plans.len());
    for (ci, plan) in plans.iter().enumerate() {
        let ids: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == ci as i64)
            .map(|(i, _)| i)
            .collect();
        let mut intervals = Vec::with_capacity(plan.attrs.len());
        for &a in &plan.attrs {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &id in &ids {
                let v = dataset.get(id, a);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if ids.is_empty() {
                lo = 0.0;
                hi = 0.0;
            }
            intervals.push(AttrInterval::new(a, lo, hi));
        }
        let attrs: BTreeSet<usize> = plan.attrs.iter().copied().collect();
        clusters.push(ProjectedCluster::new(ids, attrs, intervals));
    }
    let outliers: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == -1)
        .map(|(i, _)| i)
        .collect();

    GeneratedData {
        dataset,
        ground_truth: Clustering::new(clusters, outliers),
        labels,
    }
}

/// Decides attribute subsets, interval geometry and sizes for all clusters.
fn plan_clusters(spec: &SyntheticSpec, cluster_total: usize, rng: &mut StdRng) -> Vec<ClusterPlan> {
    let k = spec.num_clusters;
    let base = cluster_total / k;
    let extra = cluster_total % k;
    let mut plans = Vec::with_capacity(k);
    for ci in 0..k {
        let dims = rng.gen_range(spec.min_cluster_dims..=spec.max_cluster_dims.min(spec.d));
        let mut all: Vec<usize> = (0..spec.d).collect();
        all.shuffle(rng);
        let mut attrs: Vec<usize> = all.into_iter().take(dims).collect();
        if spec.force_overlap && ci < 2 && !attrs.contains(&0) {
            // Clusters 0 and 1 share attribute 0 with overlapping intervals.
            attrs[0] = 0;
        }
        attrs.sort_unstable();
        attrs.dedup();
        let mut intervals = Vec::with_capacity(attrs.len());
        for &a in &attrs {
            let width = rng.gen_range(spec.min_width..=spec.max_width);
            let lo = if spec.force_overlap && a == 0 && ci < 2 {
                // Anchor both overlap clusters near the same region so
                // their attribute-0 intervals intersect.
                (0.4 + 0.05 * ci as f64).min(1.0 - width)
            } else {
                rng.gen_range(0.0..=(1.0 - width))
            };
            intervals.push((lo, lo + width));
        }
        let size = base + usize::from(ci < extra);
        plans.push(ClusterPlan {
            attrs,
            intervals,
            size,
        });
    }
    plans
}

/// Draws one member of a cluster into the tail of a flat row-major
/// buffer: Gaussian inside relevant intervals (σ = width/6, clamped to
/// the interval), uniform elsewhere. The RNG call order — `d` uniforms
/// first, then one Gaussian per relevant attribute — matches the old
/// row-vector generator exactly, keeping seeded output stable.
fn draw_member_into(plan: &ClusterPlan, d: usize, rng: &mut StdRng, out: &mut Vec<f64>) {
    let start = out.len();
    out.extend((0..d).map(|_| rng.gen::<f64>()));
    let row = &mut out[start..];
    for (&a, &(lo, hi)) in plan.attrs.iter().zip(&plan.intervals) {
        let center = 0.5 * (lo + hi);
        let sigma = (hi - lo) / 6.0;
        let g = Normal::new(center, sigma).expect("valid normal");
        let v: f64 = g.sample(rng);
        row[a] = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SyntheticSpec {
        SyntheticSpec {
            n: 1000,
            d: 12,
            num_clusters: 3,
            noise_fraction: 0.1,
            max_cluster_dims: 6,
            seed: 7,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn shape_and_counts() {
        let spec = small_spec();
        let g = generate(&spec);
        assert_eq!(g.dataset.len(), 1000);
        assert_eq!(g.dataset.dim(), 12);
        assert_eq!(g.labels.len(), 1000);
        assert_eq!(g.ground_truth.num_clusters(), 3);
        let noise = g.labels.iter().filter(|&&l| l == -1).count();
        assert_eq!(noise, 100);
        let clustered: usize = g.ground_truth.clusters.iter().map(|c| c.size()).sum();
        assert_eq!(clustered + noise, 1000);
    }

    #[test]
    fn points_lie_in_unit_cube() {
        let g = generate(&small_spec());
        assert!(g.dataset.is_normalized());
    }

    #[test]
    fn members_lie_inside_true_signature() {
        let g = generate(&small_spec());
        for cluster in &g.ground_truth.clusters {
            for &id in &cluster.points {
                assert!(
                    cluster.covers(g.dataset.row(id)),
                    "point {id} escapes its signature"
                );
            }
        }
    }

    #[test]
    fn true_signature_is_tight() {
        // The interval bounds must be attained by actual members
        // (Definition 4: smallest intervals containing all points).
        let g = generate(&small_spec());
        for cluster in &g.ground_truth.clusters {
            for iv in &cluster.intervals {
                let lo_hit = cluster
                    .points
                    .iter()
                    .any(|&id| (g.dataset.get(id, iv.attr) - iv.lo).abs() < 1e-12);
                let hi_hit = cluster
                    .points
                    .iter()
                    .any(|&id| (g.dataset.get(id, iv.attr) - iv.hi).abs() < 1e-12);
                assert!(lo_hit && hi_hit, "interval on {} not tight", iv.attr);
            }
        }
    }

    #[test]
    fn cluster_dimensionalities_respect_bounds() {
        let spec = small_spec();
        let g = generate(&spec);
        for c in &g.ground_truth.clusters {
            assert!(c.attributes.len() >= spec.min_cluster_dims);
            assert!(c.attributes.len() <= spec.max_cluster_dims);
        }
    }

    #[test]
    fn interval_widths_in_declared_range() {
        // True signatures are at most as wide as the planned interval and
        // (for reasonably big clusters) nearly as wide.
        let spec = small_spec();
        let g = generate(&spec);
        for c in &g.ground_truth.clusters {
            for iv in &c.intervals {
                assert!(iv.width() <= spec.max_width + 1e-9, "width {}", iv.width());
                assert!(iv.width() > 0.0);
            }
        }
    }

    #[test]
    fn forced_overlap_exists() {
        let g = generate(&small_spec());
        let c0 = &g.ground_truth.clusters[0];
        let c1 = &g.ground_truth.clusters[1];
        let shared: Vec<usize> = c0
            .attributes
            .intersection(&c1.attributes)
            .copied()
            .collect();
        assert!(!shared.is_empty(), "overlap clusters share no attribute");
        let any_overlap = shared.iter().any(|&a| {
            let i0 = c0.interval_on(a).unwrap();
            let i1 = c1.interval_on(a).unwrap();
            i0.overlaps(i1)
        });
        assert!(any_overlap, "shared attributes but disjoint intervals");
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let spec = small_spec();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.labels, b.labels);
        let c = generate(&SyntheticSpec { seed: 8, ..spec });
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn zero_noise() {
        let spec = SyntheticSpec {
            noise_fraction: 0.0,
            ..small_spec()
        };
        let g = generate(&spec);
        assert!(g.ground_truth.outliers.is_empty());
        assert!(g.labels.iter().all(|&l| l >= 0));
    }

    #[test]
    fn labels_match_ground_truth_membership() {
        let g = generate(&small_spec());
        for (ci, cluster) in g.ground_truth.clusters.iter().enumerate() {
            for &id in &cluster.points {
                assert_eq!(g.labels[id], ci as i64);
            }
        }
        for &id in &g.ground_truth.outliers {
            assert_eq!(g.labels[id], -1);
        }
    }

    #[test]
    fn rows_are_shuffled() {
        // The first points should not all belong to cluster 0.
        let g = generate(&SyntheticSpec {
            n: 3000,
            ..small_spec()
        });
        let first: BTreeSet<i64> = g.labels.iter().take(100).copied().collect();
        assert!(first.len() > 1, "rows appear unshuffled");
    }

    use std::collections::BTreeSet;
}
