//! Synthetic workload generators matching the paper's evaluation data.
//!
//! * [`synthetic`] — the Section 7.1 generator: hyperrectangular projected
//!   clusters of 2–10 relevant dimensions with interval widths 0.1–0.3,
//!   Gaussian within relevant intervals, uniform on irrelevant attributes,
//!   configurable noise percentage, guaranteed cluster overlap, and full
//!   ground-truth bookkeeping.
//! * [`colon`] — a stand-in for the UCI 'colon cancer' set (62 points ×
//!   2000 attributes, two classes); the real set is a licensed download,
//!   so we synthesize a matrix with the same shape and the same
//!   discriminative structure (a small block of class-separating genes in
//!   a sea of noise). See DESIGN.md §1 for the substitution rationale.

pub mod colon;
pub mod synthetic;

pub use colon::{colon_like, ColonSpec, LabeledData};
pub use synthetic::{generate, GeneratedData, SyntheticSpec};
