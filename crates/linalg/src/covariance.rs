//! Weighted mean/covariance estimation in the paper's summation form.
//!
//! Section 5.4 of the paper expresses EM initialization and covariance
//! estimation as sums computable record-by-record in a mapper and combined
//! in a reducer:
//!
//! ```text
//! l_C  = Σ w_{C,i} · x_i          (weighted linear sum)
//! w_C  = Σ w_{C,i}                (sum of weights)
//! w_C2 = Σ w_{C,i}²               (sum of squared weights)
//! μ_C  = l_C / w_C
//! Σ_C  = w_C / (w_C² − w_C2) · Σ w_{C,i} (x_i − μ_C)(x_i − μ_C)ᵀ
//! ```
//!
//! [`CovarianceAccumulator`] implements exactly those statistics and is
//! *mergeable*, so partial accumulators from independent splits combine into
//! the global result — the key property exploited by the MapReduce jobs.
//! The scatter part uses a shifted two-pass-free formulation (sums of
//! `w·x xᵀ`) so that merging stays exact.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Mergeable accumulator of weighted first and second moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CovarianceAccumulator {
    dim: usize,
    /// Σ w_i x_i
    linear: Vec<f64>,
    /// Σ w_i x_i x_iᵀ (row-major). Only the lower triangle is
    /// maintained — [`CovarianceAccumulator::push`] stops each row's
    /// update just past the diagonal, so entries above it hold
    /// deterministic but meaningless partial sums. Covariance
    /// extraction mirrors the lower triangle; nothing reads the upper
    /// entries numerically.
    scatter: Vec<f64>,
    /// Σ w_i
    weight: f64,
    /// Σ w_i²
    weight_sq: f64,
    /// Number of observations folded in (unweighted count).
    count: u64,
}

impl CovarianceAccumulator {
    /// Empty accumulator for `dim`-dimensional observations.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            linear: vec![0.0; dim],
            scatter: vec![0.0; dim * dim],
            weight: 0.0,
            weight_sq: 0.0,
            count: 0,
        }
    }

    /// Dimensionality of accepted observations.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds one observation with weight `w` (weights are EM
    /// responsibilities; pass `1.0` for hard assignments).
    ///
    /// The scatter update walks row slices with iterators — the same
    /// `scatter[i][j] += (w·x_i)·x_j` arithmetic in the same order as
    /// the indexed form (bit-identical), with bounds checks hoisted.
    /// Each row's update stops at the diagonal: the matrix is
    /// symmetric, so only the lower triangle is maintained (see the
    /// field docs) and extraction mirrors it. Hot loops should prefer
    /// [`CovarianceAccumulator::push_block`], which runs the same
    /// per-entry add sequences row-outer/point-inner so the short
    /// triangular rows stop throttling vectorization. `#[inline]`
    /// because the workspace builds without cross-crate LTO.
    #[inline]
    pub fn push(&mut self, x: &[f64], w: f64) {
        debug_assert_eq!(x.len(), self.dim);
        if w == 0.0 {
            return;
        }
        for (li, &xi) in self.linear.iter_mut().zip(x) {
            *li += w * xi;
        }
        let dim = self.dim.max(1);
        for (i, (row, &xi)) in self.scatter.chunks_exact_mut(dim).zip(x).enumerate() {
            let wxi = w * xi;
            for (s, &xj) in row[..i + 1].iter_mut().zip(x) {
                *s += wxi * xj;
            }
        }
        self.weight += w;
        self.weight_sq += w * w;
        self.count += 1;
    }

    /// Folds a whole block of observations in at once — bit-identical
    /// to pushing `(xs[p], ws[p])` sequentially for every `p` (weights
    /// must be non-zero; [`CovarianceAccumulator::push`] would skip
    /// zero-weight points, so callers filter them out first, exactly
    /// like the E-step's responsibility gate does).
    ///
    /// Every accumulator field is a per-entry sum over points, and
    /// points only interact *within* one entry, so looping points
    /// inside entries (here: scatter row-outer, point-inner) replays
    /// the exact per-entry add chains of sequential pushes while each
    /// triangular row's partial sums stay in registers for the whole
    /// block — the fixed-length inner loop vectorizes and the row's
    /// loads/stores amortize over `ws.len()` points instead of one.
    pub fn push_block(&mut self, xs: &[f64], ws: &[f64]) {
        let d = self.dim;
        assert_eq!(xs.len(), ws.len() * d, "block is not ws.len() points");
        if d == 0 {
            for &w in ws {
                debug_assert!(w != 0.0, "push_block requires non-zero weights");
                self.weight += w;
                self.weight_sq += w * w;
            }
            self.count += ws.len() as u64;
            return;
        }
        for (x, &w) in xs.chunks_exact(d).zip(ws) {
            debug_assert!(w != 0.0, "push_block requires non-zero weights");
            for (li, &xi) in self.linear.iter_mut().zip(x) {
                *li += w * xi;
            }
            self.weight += w;
            self.weight_sq += w * w;
        }
        self.count += ws.len() as u64;
        // Rows are processed in adjacent pairs: both rows share the
        // `x[..i+1]` loads, so each streamed point feeds two triangular
        // rows per pass (entries never interact across rows, so the
        // per-entry point-ascending add chains are unchanged).
        let mut i = 0;
        while i + 1 < d {
            let (head, tail) = self.scatter.split_at_mut((i + 1) * d);
            let row0 = &mut head[i * d..i * d + i + 1];
            let row1 = &mut tail[..i + 2];
            for (x, &w) in xs.chunks_exact(d).zip(ws) {
                let wxi0 = w * x[i];
                let wxi1 = w * x[i + 1];
                for ((s0, s1), &xj) in row0
                    .iter_mut()
                    .zip(row1[..i + 1].iter_mut())
                    .zip(&x[..i + 1])
                {
                    *s0 += wxi0 * xj;
                    *s1 += wxi1 * xj;
                }
                row1[i + 1] += wxi1 * x[i + 1];
            }
            i += 2;
        }
        if i < d {
            let row = &mut self.scatter[i * d..i * d + i + 1];
            for (x, &w) in xs.chunks_exact(d).zip(ws) {
                let wxi = w * x[i];
                for (s, &xj) in row.iter_mut().zip(x) {
                    *s += wxi * xj;
                }
            }
        }
    }

    /// Merges a partial accumulator from another split.
    pub fn merge(&mut self, other: &CovarianceAccumulator) {
        assert_eq!(
            self.dim, other.dim,
            "merging accumulators of different dims"
        );
        for (a, b) in self.linear.iter_mut().zip(&other.linear) {
            *a += b;
        }
        for (a, b) in self.scatter.iter_mut().zip(&other.scatter) {
            *a += b;
        }
        self.weight += other.weight;
        self.weight_sq += other.weight_sq;
        self.count += other.count;
    }

    /// Total weight `w_C`.
    pub fn total_weight(&self) -> f64 {
        self.weight
    }

    /// Number of observations pushed (over all merged parts).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Weighted mean `μ_C`, or `None` when no weight was accumulated.
    pub fn mean(&self) -> Option<Vec<f64>> {
        if self.weight <= 0.0 {
            return None;
        }
        Some(self.linear.iter().map(|l| l / self.weight).collect())
    }

    /// Unbiased weighted covariance `Σ_C` using the paper's
    /// `w_C/(w_C² − w_C2)` normalization (reduces to `1/(n−1)` for unit
    /// weights). `None` when fewer than two effective observations exist.
    pub fn covariance(&self) -> Option<Matrix> {
        let mean = self.mean()?;
        let denom = self.weight * self.weight - self.weight_sq;
        if denom <= 0.0 {
            return None;
        }
        let norm = self.weight / denom;
        let mut cov = Matrix::zeros(self.dim, self.dim);
        // Σ w (x−μ)(x−μ)ᵀ = scatter − w_C μ μᵀ  (since Σ w x = w_C μ).
        // Only the lower triangle of `scatter` is maintained (see
        // `push`); mirror it into the upper half of the result.
        for i in 0..self.dim {
            for j in 0..=i {
                let centered = self.scatter[i * self.dim + j] - self.weight * mean[i] * mean[j];
                let c = norm * centered;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }
        Some(cov)
    }

    /// Biased (maximum-likelihood) covariance `1/w_C Σ w (x−μ)(x−μ)ᵀ`,
    /// the form EM's M-step uses.
    pub fn covariance_ml(&self) -> Option<Matrix> {
        let mean = self.mean()?;
        if self.weight <= 0.0 {
            return None;
        }
        let mut cov = Matrix::zeros(self.dim, self.dim);
        // Lower triangle mirrored, as in `covariance`.
        for i in 0..self.dim {
            for j in 0..=i {
                let centered = self.scatter[i * self.dim + j] - self.weight * mean[i] * mean[j];
                let c = centered / self.weight;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }
        Some(cov)
    }

    /// Decomposes the accumulator into its raw sums
    /// `(dim, linear, scatter, weight, weight_sq, count)` — the exact
    /// state [`CovarianceAccumulator::from_parts`] rebuilds. Used by the
    /// distributed shuffle codec, which must round-trip accumulators
    /// bit-identically.
    pub fn to_parts(&self) -> (usize, &[f64], &[f64], f64, f64, u64) {
        (
            self.dim,
            &self.linear,
            &self.scatter,
            self.weight,
            self.weight_sq,
            self.count,
        )
    }

    /// Rebuilds an accumulator from raw sums produced by
    /// [`CovarianceAccumulator::to_parts`].
    ///
    /// # Panics
    ///
    /// Panics when the vector lengths are inconsistent with `dim`.
    pub fn from_parts(
        dim: usize,
        linear: Vec<f64>,
        scatter: Vec<f64>,
        weight: f64,
        weight_sq: f64,
        count: u64,
    ) -> Self {
        assert_eq!(linear.len(), dim, "linear sum length mismatch");
        assert_eq!(scatter.len(), dim * dim, "scatter matrix length mismatch");
        Self {
            dim,
            linear,
            scatter,
            weight,
            weight_sq,
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![2.0, 4.0],
            vec![0.0, 0.0],
            vec![4.0, 3.0],
        ]
    }

    /// Textbook two-pass covariance for comparison.
    fn naive_cov(points: &[Vec<f64>]) -> (Vec<f64>, Matrix) {
        let n = points.len() as f64;
        let d = points[0].len();
        let mut mean = vec![0.0; d];
        for p in points {
            for (m, x) in mean.iter_mut().zip(p) {
                *m += x / n;
            }
        }
        let mut cov = Matrix::zeros(d, d);
        for p in points {
            for i in 0..d {
                for j in 0..d {
                    cov[(i, j)] += (p[i] - mean[i]) * (p[j] - mean[j]) / (n - 1.0);
                }
            }
        }
        (mean, cov)
    }

    #[test]
    fn matches_two_pass_estimator() {
        let pts = sample();
        let mut acc = CovarianceAccumulator::new(2);
        for p in &pts {
            acc.push(p, 1.0);
        }
        let (mean, cov) = naive_cov(&pts);
        let m = acc.mean().unwrap();
        let c = acc.covariance().unwrap();
        for (a, b) in m.iter().zip(&mean) {
            assert!((a - b).abs() < 1e-12);
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((c[(i, j)] - cov[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn merge_equals_single_accumulator() {
        let pts = sample();
        let mut whole = CovarianceAccumulator::new(2);
        for p in &pts {
            whole.push(p, 1.0);
        }
        let mut a = CovarianceAccumulator::new(2);
        let mut b = CovarianceAccumulator::new(2);
        for (i, p) in pts.iter().enumerate() {
            if i % 2 == 0 {
                a.push(p, 1.0);
            } else {
                b.push(p, 1.0);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let (cw, cm) = (whole.covariance().unwrap(), a.covariance().unwrap());
        for i in 0..2 {
            for j in 0..2 {
                assert!((cw[(i, j)] - cm[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_mean_prefers_heavy_points() {
        let mut acc = CovarianceAccumulator::new(1);
        acc.push(&[0.0], 1.0);
        acc.push(&[10.0], 3.0);
        let m = acc.mean().unwrap();
        assert!((m[0] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_is_ignored() {
        let mut acc = CovarianceAccumulator::new(1);
        acc.push(&[5.0], 0.0);
        assert!(acc.mean().is_none());
    }

    #[test]
    fn single_point_has_no_covariance() {
        let mut acc = CovarianceAccumulator::new(2);
        acc.push(&[1.0, 2.0], 1.0);
        assert!(acc.covariance().is_none());
        assert!(acc.mean().is_some());
    }

    #[test]
    fn ml_covariance_is_smaller_by_n_minus_1_over_n() {
        let pts = sample();
        let mut acc = CovarianceAccumulator::new(2);
        for p in &pts {
            acc.push(p, 1.0);
        }
        let unbiased = acc.covariance().unwrap();
        let ml = acc.covariance_ml().unwrap();
        let ratio = (pts.len() as f64 - 1.0) / pts.len() as f64;
        for i in 0..2 {
            for j in 0..2 {
                assert!((ml[(i, j)] - unbiased[(i, j)] * ratio).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_block_is_bit_identical_to_sequential_pushes() {
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for d in [0usize, 1, 2, 3, 7, 10] {
            for npts in [0usize, 1, 5, 23] {
                let xs: Vec<f64> = (0..npts * d).map(|_| rng()).collect();
                let ws: Vec<f64> = (0..npts).map(|_| rng() + 1e-3).collect();
                let mut seq = CovarianceAccumulator::new(d);
                for (p, &w) in ws.iter().enumerate() {
                    seq.push(&xs[p * d..(p + 1) * d], w);
                }
                let mut blk = CovarianceAccumulator::new(d);
                blk.push_block(&xs, &ws);
                let (d0, l0, s0, w0, q0, c0) = seq.to_parts();
                let (d1, l1, s1, w1, q1, c1) = blk.to_parts();
                assert_eq!(d0, d1);
                assert_eq!(c0, c1, "d={d}, npts={npts}");
                assert_eq!(w0.to_bits(), w1.to_bits(), "d={d}, npts={npts}");
                assert_eq!(q0.to_bits(), q1.to_bits(), "d={d}, npts={npts}");
                for (a, b) in l0.iter().zip(l1) {
                    assert_eq!(a.to_bits(), b.to_bits(), "d={d}, npts={npts}");
                }
                for (a, b) in s0.iter().zip(s1) {
                    assert_eq!(a.to_bits(), b.to_bits(), "d={d}, npts={npts}");
                }
            }
        }
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        let pts = sample();
        let mut acc = CovarianceAccumulator::new(2);
        for p in &pts {
            acc.push(p, 0.5 + (p[0] * 0.1));
        }
        let c = acc.covariance().unwrap();
        assert!(c.is_symmetric(1e-12));
        assert!(crate::Cholesky::new_regularized(&c).is_some());
    }
}
