//! Small dense linear algebra for the P3C+-MR reproduction.
//!
//! The algorithms in this workspace operate on clusters living in projected
//! subspaces of at most a few dozen dimensions, so all matrices here are
//! small, dense and row-major. The crate provides exactly the machinery the
//! paper's pipeline needs:
//!
//! * [`Matrix`] — a row-major `f64` matrix with the usual arithmetic,
//!   Gauss–Jordan inversion and determinants,
//! * [`Cholesky`] — a Cholesky factorization used for Mahalanobis distances
//!   and log-determinants of covariance matrices,
//! * [`CovarianceAccumulator`] — the weighted mean/covariance summation
//!   form used by the paper's EM and outlier-detection MapReduce jobs
//!   (Section 5.4: the `l_C`, `w_C`, `w_C2` statistics),
//! * [`mahalanobis_sq`] — the squared Mahalanobis distance that the outlier
//!   detection step compares against a chi-square critical value.

pub mod cholesky;
pub mod covariance;
pub mod matrix;
pub mod vector;

pub use cholesky::{Cholesky, LaneScratch, LANES};
pub use covariance::CovarianceAccumulator;
pub use matrix::Matrix;
pub use vector::{add, dist, dist_sq, dot, norm, scale, sub};

/// Squared Mahalanobis distance of `x` from `mean` under covariance `cov`.
///
/// Computed through a Cholesky factorization of a (ridge-regularized if
/// needed) covariance matrix; returns `None` only if the covariance cannot
/// be made positive definite even after regularization, which for the
/// clusters produced by this workspace indicates a degenerate (empty or
/// single-point) cluster.
///
/// ```
/// use p3c_linalg::{mahalanobis_sq, Matrix};
///
/// let cov = Matrix::identity(2);
/// let d2 = mahalanobis_sq(&[3.0, 4.0], &[0.0, 0.0], &cov).unwrap();
/// assert!((d2 - 25.0).abs() < 1e-12); // Euclidean under identity covariance
/// ```
pub fn mahalanobis_sq(x: &[f64], mean: &[f64], cov: &Matrix) -> Option<f64> {
    assert_eq!(x.len(), mean.len(), "point/mean dimensionality mismatch");
    assert_eq!(cov.rows(), x.len(), "covariance dimensionality mismatch");
    let chol = Cholesky::new_regularized(cov)?;
    let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
    Some(chol.mahalanobis_sq(&diff))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mahalanobis_identity_covariance_is_euclidean() {
        let cov = Matrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mean = [0.0, 0.0, 1.0];
        let d2 = mahalanobis_sq(&x, &mean, &cov).unwrap();
        assert!((d2 - (1.0 + 4.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_scales_with_variance() {
        let mut cov = Matrix::identity(2);
        cov[(0, 0)] = 4.0; // std 2 in dim 0
        let d2 = mahalanobis_sq(&[2.0, 0.0], &[0.0, 0.0], &cov).unwrap();
        assert!((d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_zero_at_mean() {
        let cov = Matrix::identity(4);
        let p = [0.3, 0.5, 0.1, 0.9];
        let d2 = mahalanobis_sq(&p, &p, &cov).unwrap();
        assert!(d2.abs() < 1e-15);
    }
}
