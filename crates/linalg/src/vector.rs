//! Free functions on `&[f64]` slices.
//!
//! The workspace stores points as flat `f64` slices (rows of a row-major
//! dataset), so vector arithmetic is expressed over slices rather than a
//! dedicated vector type.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scalar multiple `s * a`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Euclidean distance restricted to a subset of attributes.
///
/// Used by the MVB (minimum volume ball) outlier detector, which operates
/// in the relevant subspace `A_rel` only.
pub fn dist_in_subspace(a: &[f64], b: &[f64], attrs: &[usize]) -> f64 {
    attrs
        .iter()
        .map(|&j| {
            let diff = a[j] - b[j];
            diff * diff
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.25, 4.0, -1.0];
        let s = add(&sub(&a, &b), &b);
        for (x, y) in s.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-15);
        }
        let doubled = scale(&a, 2.0);
        assert_eq!(doubled, vec![2.0, -4.0, 1.0]);
    }

    #[test]
    fn distances() {
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dist_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn subspace_distance_ignores_other_dims() {
        let a = [0.0, 100.0, 0.0, 7.0];
        let b = [3.0, -100.0, 4.0, -7.0];
        let d = dist_in_subspace(&a, &b, &[0, 2]);
        assert!((d - 5.0).abs() < 1e-15);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = [0.1, 0.9, 0.5];
        let b = [0.7, 0.2, 0.3];
        assert!((dist(&a, &b) - dist(&b, &a)).abs() < 1e-15);
    }
}
