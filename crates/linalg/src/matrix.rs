//! Row-major dense matrix with the operations the clustering pipeline needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// Dimensions in this workspace are small (projected subspaces of at most a
/// few dozen attributes), so no blocking or SIMD heroics are attempted;
/// clarity and correctness win.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Diagonal matrix with the given entries.
    pub fn diag(entries: &[f64]) -> Self {
        let mut m = Self::zeros(entries.len(), entries.len());
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), v))
            .collect()
    }

    /// Adds `lambda` to every diagonal entry (ridge regularization).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Whether the matrix is square and symmetric up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Inverse via Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns `None` for singular (or non-square) matrices. Covariance
    /// matrices should prefer [`crate::Cholesky`]; this generic routine
    /// exists for the odd non-PSD case and for testing.
    pub fn inverse(&self) -> Option<Matrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot: pick the largest |entry| at or below the diagonal.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-300 {
                return None;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= p;
                inv[(col, j)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(r, j)] -= f * a[(col, j)];
                    inv[(r, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }

    /// Determinant via LU decomposition with partial pivoting.
    pub fn determinant(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)] == 0.0 {
                return 0.0;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                det = -det;
            }
            det *= a[(col, col)];
            for r in (col + 1)..n {
                let f = a[(r, col)] / a[(col, col)];
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
            }
        }
        det
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for col in 0..self.cols {
            self.data.swap(i * self.cols + col, j * self.cols + col);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|x| x * s).collect(),
        )
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let expected = Matrix::from_rows(&[&[0.6, -0.7], &[-0.2, 0.4]]);
        for i in 0..2 {
            for j in 0..2 {
                assert!((inv[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_none());
        assert_eq!(a.determinant(), 0.0);
    }

    #[test]
    fn determinant_of_triangular_is_diag_product() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 5.0], &[0.0, 3.0, -1.0], &[0.0, 0.0, 4.0]]);
        assert!((a.determinant() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_flips_under_row_swap() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn ridge_changes_only_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 5.0;
        a.add_ridge(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 5.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        assert!(!ns.is_symmetric(1e-12));
    }

    #[test]
    fn add_and_sub_are_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!((&a + &b).data(), &[11.0, 22.0]);
        assert_eq!((&b - &a).data(), &[9.0, 18.0]);
    }

    #[test]
    fn scalar_multiplication() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!((&a * 3.0).data(), &[3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "shape/data length mismatch")]
    fn from_vec_validates_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
