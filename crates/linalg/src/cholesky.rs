//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Covariance matrices estimated from finite clusters are occasionally
//! rank-deficient (e.g. a cluster that is constant on an attribute), so the
//! factorization offers a regularized constructor that adds an escalating
//! ridge until the matrix becomes positive definite.

use crate::matrix::Matrix;

/// Lane width of the batched solve kernels: 8 points advance through the
/// forward substitution together. The width is a compile-time constant so
/// the per-step inner loops are fixed-length `[f64; LANES]` updates the
/// compiler unrolls and vectorizes on stable Rust (no `std::simd`).
pub const LANES: usize = 8;

/// Reusable scratch for the lane-batched kernels: the transposed
/// lane-group (`xt`) and the point-major solve coefficients (`y`), both
/// laid out coordinate-major (`buf[i * LANES + lane]`) so every step of
/// the triangular recurrence reads and writes one contiguous lane-group.
#[derive(Debug, Default)]
pub struct LaneScratch {
    /// Transposed lane-group: `xt[i * LANES + lane] = x_lane[i]`.
    pub xt: Vec<f64>,
    /// Solve coefficients, same layout as `xt`.
    pub y: Vec<f64>,
}

impl LaneScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes both buffers for an order-`n` solve and returns them.
    pub fn for_order(&mut self, n: usize) -> (&mut [f64], &mut [f64]) {
        self.xt.clear();
        self.xt.resize(n * LANES, 0.0);
        self.y.clear();
        self.y.resize(n * LANES, 0.0);
        (&mut self.xt, &mut self.y)
    }
}

/// Transposes a full lane-group of `LANES` points (row-major, `n` values
/// per point) into the coordinate-major layout the lane kernels consume:
/// `xt[i * LANES + lane] = group[lane * n + i]`.
#[inline]
pub fn transpose_lane_group(group: &[f64], n: usize, xt: &mut [f64]) {
    debug_assert_eq!(group.len(), n * LANES);
    debug_assert_eq!(xt.len(), n * LANES);
    for (lane, point) in group.chunks_exact(n).enumerate() {
        for (i, &v) in point.iter().enumerate() {
            xt[i * LANES + lane] = v;
        }
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper part is zero).
    l: Vec<f64>,
    /// `1 / L_ii`, precomputed once so the solve paths — which run per
    /// point per component in the EM E-step — multiply instead of
    /// divide. Every solve variant uses the same reciprocal, so they
    /// all stay bit-identical to each other.
    inv_diag: Vec<f64>,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns `None` if the matrix is not (numerically) positive definite.
    pub fn new(a: &Matrix) -> Option<Self> {
        assert_eq!(a.rows(), a.cols(), "Cholesky of non-square matrix");
        let n = a.rows();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        let inv_diag = (0..n).map(|i| 1.0 / l[i * n + i]).collect();
        Some(Self { n, l, inv_diag })
    }

    /// Factorizes after adding an escalating ridge to the diagonal.
    ///
    /// Starts at `1e-9 * max_diag` and multiplies by 10 until the matrix
    /// factorizes or the ridge exceeds the largest diagonal entry, at which
    /// point `None` is returned (the matrix is hopeless).
    pub fn new_regularized(a: &Matrix) -> Option<Self> {
        if let Some(c) = Self::new(a) {
            return Some(c);
        }
        // audit: order-exact — f64::max is associative and commutative
        let max_diag = (0..a.rows())
            .map(|i| a[(i, i)].abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut ridge = max_diag * 1e-9;
        while ridge <= max_diag {
            let mut reg = a.clone();
            reg.add_ridge(ridge);
            if let Some(c) = Self::new(&reg) {
                return Some(c);
            }
            ridge *= 10.0;
        }
        None
    }

    /// Order of the factorized matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solves `L y = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * self.n + k] * y[k];
            }
            y[i] = sum * self.inv_diag[i];
        }
        y
    }

    /// Solves `A x = b` via forward then backward substitution.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        // Back substitution with Lᵀ.
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..self.n {
                sum -= self.l[k * self.n + i] * x[k];
            }
            x[i] = sum * self.inv_diag[i];
        }
        x
    }

    /// Squared Mahalanobis length `diffᵀ A⁻¹ diff` of an offset vector.
    ///
    /// Uses `‖L⁻¹ diff‖²`, avoiding an explicit inverse.
    pub fn mahalanobis_sq(&self, diff: &[f64]) -> f64 {
        let y = self.solve_lower(diff);
        // audit: order-exact — ascending-index sum; the lane kernel
        // (`mahalanobis_sq_block`) replays this exact per-lane order.
        y.iter().map(|v| v * v).sum::<f64>()
    }

    /// Forward-substitutes `L y = b` into a caller-owned buffer — the
    /// allocation-free form of [`Cholesky::solve_lower`].
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        y.clear();
        y.resize(self.n, 0.0);
        for i in 0..self.n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * self.n + k] * y[k];
            }
            y[i] = sum * self.inv_diag[i];
        }
    }

    /// Squared Mahalanobis distance of `x` from `mean`, fusing the offset
    /// into the forward substitution: no `diff` vector, no allocation
    /// beyond the caller's scratch. The floating-point operation order is
    /// exactly that of `mahalanobis_sq(&(x - mean))`, so results are
    /// bit-identical to the allocating path.
    #[inline]
    pub fn mahalanobis_sq_scratch(&self, x: &[f64], mean: &[f64], scratch: &mut Vec<f64>) -> f64 {
        assert_eq!(x.len(), self.n);
        assert_eq!(mean.len(), self.n);
        scratch.clear();
        let mut dist = 0.0;
        for i in 0..self.n {
            let mut sum = x[i] - mean[i];
            // Zip over the triangular row and the solved prefix — the
            // same left-to-right subtraction sequence as the indexed
            // loop, but with the bounds checks hoisted out.
            let row = &self.l[i * self.n..i * self.n + i];
            for (lik, yk) in row.iter().zip(scratch.iter()) {
                sum -= lik * yk;
            }
            let yi = sum * self.inv_diag[i];
            scratch.push(yi);
            dist += yi * yi;
        }
        dist
    }

    /// [`Cholesky::mahalanobis_sq_scratch`] over a caller-owned slice of
    /// exactly `n` elements. Taking a plain slice (instead of a `Vec`)
    /// lets callers evaluating several factors against the same point
    /// hand each factor a *disjoint* scratch region, so the CPU can
    /// overlap the otherwise latency-bound forward substitutions.
    /// Identical floating-point sequence; bit-identical results.
    #[inline]
    pub fn mahalanobis_sq_slice(&self, x: &[f64], mean: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        assert_eq!(mean.len(), self.n);
        assert_eq!(y.len(), self.n);
        let mut dist = 0.0;
        for i in 0..self.n {
            let mut sum = x[i] - mean[i];
            let row = &self.l[i * self.n..i * self.n + i];
            for (lik, yk) in row.iter().zip(y[..i].iter()) {
                sum -= lik * yk;
            }
            let yi = sum * self.inv_diag[i];
            y[i] = yi;
            dist += yi * yi;
        }
        dist
    }

    /// Forward-substitutes `L y = b` for [`LANES`] right-hand sides at
    /// once. `bt` and `y` are coordinate-major lane-groups
    /// (`buf[i * LANES + lane]`, see [`transpose_lane_group`]): at step
    /// `i` the recurrence subtracts `L_ik · y_k` from all lanes with one
    /// broadcast load of `L_ik`, so the otherwise latency-bound scalar
    /// chain becomes [`LANES`] independent chains the CPU overlaps and
    /// vectorizes. Each lane runs exactly the floating-point sequence of
    /// [`Cholesky::solve_lower`], so per-lane results are bit-identical
    /// to the scalar path.
    pub fn solve_lower_lanes(&self, bt: &[f64], y: &mut [f64]) {
        let n = self.n;
        assert_eq!(bt.len(), n * LANES);
        assert_eq!(y.len(), n * LANES);
        for i in 0..n {
            let mut sum = [0.0f64; LANES];
            sum.copy_from_slice(&bt[i * LANES..(i + 1) * LANES]);
            let row = &self.l[i * n..i * n + i];
            // `split_at_mut` + `chunks_exact` prove the lane-group
            // bounds once, keeping the recurrence free of per-step
            // bounds checks so it vectorizes cleanly.
            let (done, rest) = y.split_at_mut(i * LANES);
            for (yk, &lik) in done.chunks_exact(LANES).zip(row) {
                for lane in 0..LANES {
                    sum[lane] -= lik * yk[lane];
                }
            }
            let inv = self.inv_diag[i];
            for (yi, s) in rest[..LANES].iter_mut().zip(sum) {
                *yi = s * inv;
            }
        }
    }

    /// Squared Mahalanobis distances of a full lane-group of [`LANES`]
    /// points, fusing the mean offset into the batched forward
    /// substitution. `xt` and `y` are coordinate-major lane-groups
    /// (`scratch.for_order` layouts); returns one squared distance per
    /// lane. Per lane, the operation sequence — offset, ascending-`k`
    /// subtractions, reciprocal multiply, `dist += y_i²` in ascending
    /// `i` — is exactly that of [`Cholesky::mahalanobis_sq_slice`], so
    /// every lane is bit-identical to the scalar kernel.
    pub fn mahalanobis_sq_lanes(&self, xt: &[f64], mean: &[f64], y: &mut [f64]) -> [f64; LANES] {
        let n = self.n;
        assert_eq!(xt.len(), n * LANES);
        assert_eq!(mean.len(), n);
        assert_eq!(y.len(), n * LANES);
        let mut dist = [0.0f64; LANES];
        for i in 0..n {
            let mut sum = [0.0f64; LANES];
            let xi = &xt[i * LANES..(i + 1) * LANES];
            let mi = mean[i];
            for lane in 0..LANES {
                sum[lane] = xi[lane] - mi;
            }
            let row = &self.l[i * n..i * n + i];
            // Same bounds-check-free shape as `solve_lower_lanes`.
            let (done, rest) = y.split_at_mut(i * LANES);
            for (yk, &lik) in done.chunks_exact(LANES).zip(row) {
                for lane in 0..LANES {
                    sum[lane] -= lik * yk[lane];
                }
            }
            let inv = self.inv_diag[i];
            for (lane, (yi, s)) in rest[..LANES].iter_mut().zip(sum).enumerate() {
                let v = s * inv;
                *yi = v;
                dist[lane] += v * v;
            }
        }
        dist
    }

    /// Squared Mahalanobis distances of a contiguous block of points
    /// (row-major, `n` values per point) to one `(mean, L)` geometry:
    /// full lane-groups of [`LANES`] points run the batched kernel, the
    /// ragged tail runs the scalar [`Cholesky::mahalanobis_sq_slice`]
    /// path point by point. Both produce the per-point scalar operation
    /// sequence, so `out` is bit-identical to a plain per-point loop for
    /// every block length (including blocks shorter than one lane-group).
    pub fn mahalanobis_sq_block(
        &self,
        block: &[f64],
        mean: &[f64],
        scratch: &mut LaneScratch,
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        assert_eq!(mean.len(), n);
        let npts = block.len().checked_div(n).unwrap_or(0);
        assert_eq!(block.len(), npts * n, "block is not whole points");
        out.clear();
        if n == 0 {
            out.resize(npts, 0.0);
            return;
        }
        let (xt, y) = scratch.for_order(n);
        let full = npts / LANES * LANES;
        for group in block[..full * n].chunks_exact(n * LANES) {
            transpose_lane_group(group, n, xt);
            out.extend(self.mahalanobis_sq_lanes(xt, mean, y));
        }
        for point in block[full * n..].chunks_exact(n) {
            out.push(self.mahalanobis_sq_slice(point, mean, &mut y[..n]));
        }
    }

    /// `ln det A = 2 Σ ln L_ii` — needed by the Gaussian log-density in EM.
    pub fn log_det(&self) -> f64 {
        // audit: order-exact — ascending-diagonal sum, the same order
        // every caller (serial or lane-batched) observes.
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Explicit inverse of the factorized matrix (rarely needed; prefer
    /// [`Cholesky::solve`]).
    pub fn inverse(&self) -> Matrix {
        let mut inv = Matrix::zeros(self.n, self.n);
        let mut e = vec![0.0; self.n];
        for j in 0..self.n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..self.n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]])
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        // Reconstruct L L^T and compare.
        let n = c.order();
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += c.l[i * n + k] * c.l[j * n + k];
                }
                assert!((v - a[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_direct_inverse() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_determinant() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - a.determinant().ln()).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn regularized_handles_singular() {
        // Rank-1 covariance: classic degenerate cluster.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::new_regularized(&a).expect("regularization should succeed");
        // Mahalanobis along the null direction must be finite and large-ish.
        let d = c.mahalanobis_sq(&[1.0, -1.0]);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn inverse_agrees_with_gauss_jordan() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv1 = c.inverse();
        let inv2 = a.inverse().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((inv1[(i, j)] - inv2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mahalanobis_of_zero_vector_is_zero() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert_eq!(c.mahalanobis_sq(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn solve_lower_into_matches_allocating_solve() {
        let c = Cholesky::new(&spd3()).unwrap();
        let b = [0.3, -1.7, 2.9];
        let mut y = Vec::new();
        c.solve_lower_into(&b, &mut y);
        assert_eq!(y, c.solve_lower(&b));
        // The buffer is reusable across calls of different sizes.
        c.solve_lower_into(&b, &mut y);
        assert_eq!(y, c.solve_lower(&b));
    }

    #[test]
    fn fused_mahalanobis_is_bit_identical() {
        let c = Cholesky::new(&spd3()).unwrap();
        let x = [0.9, -0.4, 1.3];
        let mean = [0.1, 0.2, -0.5];
        let diff: Vec<f64> = x.iter().zip(&mean).map(|(a, b)| a - b).collect();
        let mut scratch = Vec::new();
        let fused = c.mahalanobis_sq_scratch(&x, &mean, &mut scratch);
        assert_eq!(fused.to_bits(), c.mahalanobis_sq(&diff).to_bits());
    }

    /// Deterministic value stream for the lane tests (xorshift64*).
    fn stream(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.wrapping_mul(2685821657736338717).max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A well-conditioned SPD matrix of order `n` with off-diagonal mass.
    fn spd(n: usize, seed: u64) -> Matrix {
        let mut next = stream(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = (next() - 0.5) * 0.2;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] = 1.0 + next();
        }
        a
    }

    #[test]
    fn lane_solve_is_bit_identical_to_scalar() {
        for n in [1usize, 2, 3, 5, 10, 13] {
            let c = Cholesky::new(&spd(n, n as u64 + 1)).unwrap();
            let mut next = stream(7 * n as u64 + 3);
            let points: Vec<Vec<f64>> = (0..LANES)
                .map(|_| (0..n).map(|_| next() * 4.0 - 2.0).collect())
                .collect();
            let mut bt = vec![0.0; n * LANES];
            for (lane, p) in points.iter().enumerate() {
                for (i, &v) in p.iter().enumerate() {
                    bt[i * LANES + lane] = v;
                }
            }
            let mut y = vec![0.0; n * LANES];
            c.solve_lower_lanes(&bt, &mut y);
            for (lane, p) in points.iter().enumerate() {
                let scalar = c.solve_lower(p);
                for i in 0..n {
                    assert_eq!(
                        y[i * LANES + lane].to_bits(),
                        scalar[i].to_bits(),
                        "n={n}, lane={lane}, i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_mahalanobis_is_bit_identical_to_scalar() {
        for n in [1usize, 2, 4, 10] {
            let c = Cholesky::new(&spd(n, 31 + n as u64)).unwrap();
            let mut next = stream(n as u64 + 11);
            let mean: Vec<f64> = (0..n).map(|_| next()).collect();
            let group: Vec<f64> = (0..n * LANES).map(|_| next() * 3.0).collect();
            let mut scratch = LaneScratch::new();
            let (xt, y) = scratch.for_order(n);
            transpose_lane_group(&group, n, xt);
            let dists = c.mahalanobis_sq_lanes(xt, &mean, y);
            let mut ys = vec![0.0; n];
            for (lane, point) in group.chunks_exact(n).enumerate() {
                let scalar = c.mahalanobis_sq_slice(point, &mean, &mut ys);
                assert_eq!(
                    dists[lane].to_bits(),
                    scalar.to_bits(),
                    "n={n}, lane={lane}"
                );
            }
        }
    }

    #[test]
    fn block_mahalanobis_handles_tails_bit_identically() {
        let n = 6;
        let c = Cholesky::new(&spd(n, 5)).unwrap();
        let mut next = stream(77);
        let mean: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut scratch = LaneScratch::new();
        let mut out = Vec::new();
        // Below one lane-group, exactly one, ragged multi-group.
        for npts in [0usize, 1, 3, 7, 8, 9, 16, 23] {
            let block: Vec<f64> = (0..npts * n).map(|_| next() * 2.0).collect();
            c.mahalanobis_sq_block(&block, &mean, &mut scratch, &mut out);
            assert_eq!(out.len(), npts);
            let mut ys = vec![0.0; n];
            for (p, point) in block.chunks_exact(n).enumerate() {
                let scalar = c.mahalanobis_sq_slice(point, &mean, &mut ys);
                assert_eq!(out[p].to_bits(), scalar.to_bits(), "npts={npts}, p={p}");
            }
        }
    }
}
