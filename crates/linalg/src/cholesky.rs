//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Covariance matrices estimated from finite clusters are occasionally
//! rank-deficient (e.g. a cluster that is constant on an attribute), so the
//! factorization offers a regularized constructor that adds an escalating
//! ridge until the matrix becomes positive definite.

use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper part is zero).
    l: Vec<f64>,
    /// `1 / L_ii`, precomputed once so the solve paths — which run per
    /// point per component in the EM E-step — multiply instead of
    /// divide. Every solve variant uses the same reciprocal, so they
    /// all stay bit-identical to each other.
    inv_diag: Vec<f64>,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns `None` if the matrix is not (numerically) positive definite.
    pub fn new(a: &Matrix) -> Option<Self> {
        assert_eq!(a.rows(), a.cols(), "Cholesky of non-square matrix");
        let n = a.rows();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        let inv_diag = (0..n).map(|i| 1.0 / l[i * n + i]).collect();
        Some(Self { n, l, inv_diag })
    }

    /// Factorizes after adding an escalating ridge to the diagonal.
    ///
    /// Starts at `1e-9 * max_diag` and multiplies by 10 until the matrix
    /// factorizes or the ridge exceeds the largest diagonal entry, at which
    /// point `None` is returned (the matrix is hopeless).
    pub fn new_regularized(a: &Matrix) -> Option<Self> {
        if let Some(c) = Self::new(a) {
            return Some(c);
        }
        let max_diag = (0..a.rows())
            .map(|i| a[(i, i)].abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut ridge = max_diag * 1e-9;
        while ridge <= max_diag {
            let mut reg = a.clone();
            reg.add_ridge(ridge);
            if let Some(c) = Self::new(&reg) {
                return Some(c);
            }
            ridge *= 10.0;
        }
        None
    }

    /// Order of the factorized matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solves `L y = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * self.n + k] * y[k];
            }
            y[i] = sum * self.inv_diag[i];
        }
        y
    }

    /// Solves `A x = b` via forward then backward substitution.
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        // Back substitution with Lᵀ.
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..self.n {
                sum -= self.l[k * self.n + i] * x[k];
            }
            x[i] = sum * self.inv_diag[i];
        }
        x
    }

    /// Squared Mahalanobis length `diffᵀ A⁻¹ diff` of an offset vector.
    ///
    /// Uses `‖L⁻¹ diff‖²`, avoiding an explicit inverse.
    pub fn mahalanobis_sq(&self, diff: &[f64]) -> f64 {
        let y = self.solve_lower(diff);
        y.iter().map(|v| v * v).sum()
    }

    /// Forward-substitutes `L y = b` into a caller-owned buffer — the
    /// allocation-free form of [`Cholesky::solve_lower`].
    #[allow(clippy::needless_range_loop)] // indexed form mirrors the math
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        y.clear();
        y.resize(self.n, 0.0);
        for i in 0..self.n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * self.n + k] * y[k];
            }
            y[i] = sum * self.inv_diag[i];
        }
    }

    /// Squared Mahalanobis distance of `x` from `mean`, fusing the offset
    /// into the forward substitution: no `diff` vector, no allocation
    /// beyond the caller's scratch. The floating-point operation order is
    /// exactly that of `mahalanobis_sq(&(x - mean))`, so results are
    /// bit-identical to the allocating path.
    #[inline]
    pub fn mahalanobis_sq_scratch(&self, x: &[f64], mean: &[f64], scratch: &mut Vec<f64>) -> f64 {
        assert_eq!(x.len(), self.n);
        assert_eq!(mean.len(), self.n);
        scratch.clear();
        let mut dist = 0.0;
        for i in 0..self.n {
            let mut sum = x[i] - mean[i];
            // Zip over the triangular row and the solved prefix — the
            // same left-to-right subtraction sequence as the indexed
            // loop, but with the bounds checks hoisted out.
            let row = &self.l[i * self.n..i * self.n + i];
            for (lik, yk) in row.iter().zip(scratch.iter()) {
                sum -= lik * yk;
            }
            let yi = sum * self.inv_diag[i];
            scratch.push(yi);
            dist += yi * yi;
        }
        dist
    }

    /// [`Cholesky::mahalanobis_sq_scratch`] over a caller-owned slice of
    /// exactly `n` elements. Taking a plain slice (instead of a `Vec`)
    /// lets callers evaluating several factors against the same point
    /// hand each factor a *disjoint* scratch region, so the CPU can
    /// overlap the otherwise latency-bound forward substitutions.
    /// Identical floating-point sequence; bit-identical results.
    #[inline]
    pub fn mahalanobis_sq_slice(&self, x: &[f64], mean: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        assert_eq!(mean.len(), self.n);
        assert_eq!(y.len(), self.n);
        let mut dist = 0.0;
        for i in 0..self.n {
            let mut sum = x[i] - mean[i];
            let row = &self.l[i * self.n..i * self.n + i];
            for (lik, yk) in row.iter().zip(y[..i].iter()) {
                sum -= lik * yk;
            }
            let yi = sum * self.inv_diag[i];
            y[i] = yi;
            dist += yi * yi;
        }
        dist
    }

    /// `ln det A = 2 Σ ln L_ii` — needed by the Gaussian log-density in EM.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Explicit inverse of the factorized matrix (rarely needed; prefer
    /// [`Cholesky::solve`]).
    pub fn inverse(&self) -> Matrix {
        let mut inv = Matrix::zeros(self.n, self.n);
        let mut e = vec![0.0; self.n];
        for j in 0..self.n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..self.n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]])
    }

    #[test]
    fn factorization_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        // Reconstruct L L^T and compare.
        let n = c.order();
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += c.l[i * n + k] * c.l[j * n + k];
                }
                assert!((v - a[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_direct_inverse() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_determinant() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - a.determinant().ln()).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn regularized_handles_singular() {
        // Rank-1 covariance: classic degenerate cluster.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::new_regularized(&a).expect("regularization should succeed");
        // Mahalanobis along the null direction must be finite and large-ish.
        let d = c.mahalanobis_sq(&[1.0, -1.0]);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn inverse_agrees_with_gauss_jordan() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv1 = c.inverse();
        let inv2 = a.inverse().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((inv1[(i, j)] - inv2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mahalanobis_of_zero_vector_is_zero() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert_eq!(c.mahalanobis_sq(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn solve_lower_into_matches_allocating_solve() {
        let c = Cholesky::new(&spd3()).unwrap();
        let b = [0.3, -1.7, 2.9];
        let mut y = Vec::new();
        c.solve_lower_into(&b, &mut y);
        assert_eq!(y, c.solve_lower(&b));
        // The buffer is reusable across calls of different sizes.
        c.solve_lower_into(&b, &mut y);
        assert_eq!(y, c.solve_lower(&b));
    }

    #[test]
    fn fused_mahalanobis_is_bit_identical() {
        let c = Cholesky::new(&spd3()).unwrap();
        let x = [0.9, -0.4, 1.3];
        let mean = [0.1, 0.2, -0.5];
        let diff: Vec<f64> = x.iter().zip(&mean).map(|(a, b)| a - b).collect();
        let mut scratch = Vec::new();
        let fused = c.mahalanobis_sq_scratch(&x, &mean, &mut scratch);
        assert_eq!(fused.to_bits(), c.mahalanobis_sq(&diff).to_bits());
    }
}
