//! Property-based tests for the linear algebra kernel.

use p3c_linalg::{mahalanobis_sq, Cholesky, CovarianceAccumulator, Matrix};
use proptest::prelude::*;

/// Strategy producing a random SPD matrix as A = B Bᵀ + εI.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = &b * &b.transpose();
        a.add_ridge(0.1);
        a
    })
}

proptest! {
    #[test]
    fn mahalanobis_is_nonnegative(a in spd_matrix(3), x in prop::collection::vec(-5.0f64..5.0, 3), m in prop::collection::vec(-5.0f64..5.0, 3)) {
        let d = mahalanobis_sq(&x, &m, &a).unwrap();
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn mahalanobis_zero_iff_at_mean(a in spd_matrix(3), m in prop::collection::vec(-5.0f64..5.0, 3)) {
        let d = mahalanobis_sq(&m, &m, &a).unwrap();
        prop_assert!(d.abs() < 1e-9);
    }

    #[test]
    fn cholesky_solve_inverts_matvec(a in spd_matrix(4), x in prop::collection::vec(-3.0f64..3.0, 4)) {
        let b = a.mul_vec(&x);
        let c = Cholesky::new(&a).unwrap();
        let x2 = c.solve(&b);
        for (u, v) in x.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn inverse_roundtrip(a in spd_matrix(3)) {
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn covariance_accumulator_merge_associative(
        pts in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 4..40),
        at_ in 1usize..3,
    ) {
        let cut = (pts.len() * at_) / 3;
        let mut whole = CovarianceAccumulator::new(2);
        for p in &pts { whole.push(p, 1.0); }
        let mut left = CovarianceAccumulator::new(2);
        let mut right = CovarianceAccumulator::new(2);
        for (i, p) in pts.iter().enumerate() {
            if i < cut { left.push(p, 1.0) } else { right.push(p, 1.0) }
        }
        left.merge(&right);
        let mw = whole.mean().unwrap();
        let ml = left.mean().unwrap();
        for (u, v) in mw.iter().zip(&ml) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_is_psd(pts in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 3), 4..50)) {
        let mut acc = CovarianceAccumulator::new(3);
        for p in &pts { acc.push(p, 1.0); }
        if let Some(c) = acc.covariance() {
            prop_assert!(c.is_symmetric(1e-9));
            prop_assert!(Cholesky::new_regularized(&c).is_some());
        }
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(a in spd_matrix(3), b in spd_matrix(3)) {
        let ab = &a * &b;
        let lhs = ab.determinant();
        let rhs = a.determinant() * b.determinant();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-6);
    }
}
