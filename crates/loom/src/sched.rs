//! The cooperative scheduler behind [`crate::model`].
//!
//! Exactly one model thread runs at a time; the token is handed over at
//! *decision points* (one before every visible operation — an atomic
//! access, a mutex acquire, a spawn, a join). At each decision point the
//! running thread consults the replay schedule (or defaults to the
//! lowest-numbered runnable thread), records the choice and the number of
//! alternatives into the trace, wakes the chosen thread and parks itself.
//! [`crate::model`] backtracks over the recorded traces to enumerate every
//! schedule.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Message used when an execution is torn down (deadlock or a panic in
/// another model thread). [`crate::model`] recognises it and reports the
/// registry's recorded failure instead.
pub(crate) const ABORT_MSG: &str = "p3c-loom: execution aborted";

/// Scheduling state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Parked until the mutex with this id is released.
    BlockedOnMutex(usize),
    /// Parked until the thread with this id finishes.
    BlockedOnJoin(usize),
    /// Parked in `Condvar::wait` until the condvar with this id is
    /// notified. The associated mutex is released while parked.
    BlockedOnCondvar(usize),
    /// Ran to completion.
    Finished,
}

/// Shared state of one execution.
pub(crate) struct SchedState {
    pub statuses: Vec<Status>,
    /// The thread currently holding the run token.
    pub active: usize,
    /// Replay prefix: decision point `i` picks the `schedule[i]`-th
    /// runnable thread. Past the prefix the lowest index is chosen.
    pub schedule: Vec<usize>,
    pub step: usize,
    /// `(chosen index, number of runnable alternatives)` per decision.
    pub trace: Vec<(usize, usize)>,
    /// `Some(tid)` while the mutex with that table index is held.
    pub mutex_owner: Vec<Option<usize>>,
    /// Number of condvars registered with this execution. Condvars need
    /// no ownership table — only an id waiters can park against.
    pub condvar_count: usize,
    /// Set when the execution is being torn down; parked threads wake up
    /// and unwind instead of continuing.
    pub poisoned: bool,
    /// Human-readable reason for the teardown (deadlock, stray panic).
    pub failure: Option<String>,
}

/// One execution's scheduler: shared state plus the wake-up channel.
pub(crate) struct Registry {
    pub state: Mutex<SchedState>,
    pub cv: Condvar,
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_context(reg: Arc<Registry>, tid: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((reg, tid)));
}

pub(crate) fn clear_context() {
    CONTEXT.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the current thread's registry and thread id. Panics if
/// called outside [`crate::model`] — the shim primitives only work under
/// the model checker.
pub(crate) fn with_context<R>(f: impl FnOnce(&Arc<Registry>, usize) -> R) -> R {
    CONTEXT.with(|c| {
        let borrow = c.borrow();
        let (reg, tid) = borrow
            .as_ref()
            .expect("p3c-loom primitive used outside model()");
        f(reg, *tid)
    })
}

impl Registry {
    /// A fresh execution with the model closure registered as thread 0.
    pub fn new(schedule: Vec<usize>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SchedState {
                statuses: vec![Status::Runnable],
                active: 0,
                schedule,
                step: 0,
                trace: Vec::new(),
                mutex_owner: Vec::new(),
                condvar_count: 0,
                poisoned: false,
                failure: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn locked(&self) -> MutexGuard<'_, SchedState> {
        // The scheduler never panics while holding this lock except to
        // abort the whole execution, so poisoning is unrecoverable anyway.
        match self.state.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    fn abort_if_poisoned(&self, st: &SchedState) {
        if st.poisoned {
            panic!("{ABORT_MSG}");
        }
    }

    /// Picks the next thread among the runnable ones (minus `exclude`),
    /// recording the decision. Returns `false` if nothing is runnable.
    fn pick_next(&self, st: &mut SchedState, exclude: Option<usize>) -> bool {
        let runnable: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|&(i, s)| *s == Status::Runnable && Some(i) != exclude)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return false;
        }
        let choice = if st.step < st.schedule.len() {
            st.schedule[st.step]
        } else {
            0
        };
        st.trace.push((choice, runnable.len()));
        st.step += 1;
        st.active = runnable[choice];
        self.cv.notify_all();
        true
    }

    /// Tears the execution down: every parked thread wakes and unwinds.
    fn poison(&self, st: &mut SchedState, why: String) {
        st.poisoned = true;
        if st.failure.is_none() {
            st.failure = Some(why);
        }
        self.cv.notify_all();
    }

    /// Parks until this thread holds the run token again.
    fn park_until_active<'a>(
        &'a self,
        mut st: MutexGuard<'a, SchedState>,
        me: usize,
    ) -> MutexGuard<'a, SchedState> {
        loop {
            if st.poisoned {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.active == me && st.statuses[me] == Status::Runnable {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    /// Decision point before a visible operation of thread `me`.
    pub fn switch(&self, me: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        debug_assert_eq!(st.active, me, "switch by a thread without the token");
        // The runnable set always contains `me`, so this cannot fail.
        self.pick_next(&mut st, None);
        let _st = self.park_until_active(st, me);
    }

    /// Registers a freshly spawned thread and returns its id.
    pub fn register_thread(&self, me: usize) -> usize {
        // Spawning is a visible operation: decision point first.
        self.switch(me);
        let mut st = self.locked();
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    }

    /// First park of a spawned thread, before its closure runs.
    pub fn wait_first_schedule(&self, me: usize) {
        let st = self.locked();
        let _st = self.park_until_active(st, me);
    }

    /// Registers a mutex for the current execution and returns its id.
    pub fn register_mutex(&self) -> usize {
        let mut st = self.locked();
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    /// Blocking mutex acquire with a decision point before the attempt.
    pub fn mutex_lock(&self, me: usize, id: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        self.pick_next(&mut st, None);
        st = self.park_until_active(st, me);
        loop {
            if st.mutex_owner[id].is_none() {
                st.mutex_owner[id] = Some(me);
                return;
            }
            // Contended: park until the owner releases, then retry.
            st.statuses[me] = Status::BlockedOnMutex(id);
            if !self.pick_next(&mut st, Some(me)) {
                let why = self.describe_deadlock(&st);
                self.poison(&mut st, why);
                drop(st);
                panic!("{ABORT_MSG}");
            }
            st = self.park_until_active(st, me);
        }
    }

    /// Releases a mutex and wakes its waiters. Never panics — it runs
    /// from guard drops, possibly during unwinding.
    pub fn mutex_unlock(&self, me: usize, id: usize) {
        let mut st = self.locked();
        if st.mutex_owner[id] != Some(me) {
            // The guard is being dropped during unwinding after
            // `condvar_wait` aborted between releasing the mutex and
            // reacquiring it — nothing to release.
            return;
        }
        st.mutex_owner[id] = None;
        for s in &mut st.statuses {
            if *s == Status::BlockedOnMutex(id) {
                *s = Status::Runnable;
            }
        }
        // No decision point here: the caller's next visible operation
        // provides one, and the release is already observable then.
    }

    /// Registers a condvar for the current execution and returns its id.
    pub fn register_condvar(&self) -> usize {
        let mut st = self.locked();
        st.condvar_count += 1;
        st.condvar_count - 1
    }

    /// Atomically releases `mutex` and parks on condvar `cv`; reacquires
    /// the mutex after being notified, before returning to the caller.
    ///
    /// The release-and-park is a single step under the scheduler lock, so
    /// a notify between "release" and "park" cannot be lost — the same
    /// atomicity real condvars provide. A notify *before* this call is
    /// missed, exactly as with real condvars, which is why callers loop
    /// on a predicate.
    pub fn condvar_wait(&self, me: usize, cv: usize, mutex: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        debug_assert_eq!(st.mutex_owner[mutex], Some(me), "wait without the lock");
        st.mutex_owner[mutex] = None;
        for s in &mut st.statuses {
            if *s == Status::BlockedOnMutex(mutex) {
                *s = Status::Runnable;
            }
        }
        st.statuses[me] = Status::BlockedOnCondvar(cv);
        if !self.pick_next(&mut st, Some(me)) {
            let why = self.describe_deadlock(&st);
            self.poison(&mut st, why);
            drop(st);
            panic!("{ABORT_MSG}");
        }
        st = self.park_until_active(st, me);
        // Notified: contend for the mutex again before returning.
        loop {
            if st.mutex_owner[mutex].is_none() {
                st.mutex_owner[mutex] = Some(me);
                return;
            }
            st.statuses[me] = Status::BlockedOnMutex(mutex);
            if !self.pick_next(&mut st, Some(me)) {
                let why = self.describe_deadlock(&st);
                self.poison(&mut st, why);
                drop(st);
                panic!("{ABORT_MSG}");
            }
            st = self.park_until_active(st, me);
        }
    }

    /// Wakes every waiter parked on condvar `cv`. Like `mutex_unlock`,
    /// no decision point of its own: the notifier's next visible
    /// operation provides one, and the wake-up is observable then.
    pub fn condvar_notify_all(&self, cv: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        for s in &mut st.statuses {
            if *s == Status::BlockedOnCondvar(cv) {
                *s = Status::Runnable;
            }
        }
    }

    /// Wakes the lowest-numbered waiter parked on condvar `cv`, if any.
    pub fn condvar_notify_one(&self, cv: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        for s in &mut st.statuses {
            if *s == Status::BlockedOnCondvar(cv) {
                *s = Status::Runnable;
                break;
            }
        }
    }

    /// Parks until `target` finishes (with a decision point first).
    pub fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.locked();
        self.abort_if_poisoned(&st);
        self.pick_next(&mut st, None);
        st = self.park_until_active(st, me);
        while st.statuses[target] != Status::Finished {
            st.statuses[me] = Status::BlockedOnJoin(target);
            if !self.pick_next(&mut st, Some(me)) {
                let why = self.describe_deadlock(&st);
                self.poison(&mut st, why);
                drop(st);
                panic!("{ABORT_MSG}");
            }
            st = self.park_until_active(st, me);
        }
    }

    /// Marks a thread finished, wakes joiners, hands the token on.
    ///
    /// With `unwinding` set the thread died from a panic: if a joiner is
    /// waiting it is woken so `join` can propagate the payload; otherwise
    /// the execution is poisoned so the failure surfaces in `model`.
    pub fn thread_finished(&self, me: usize, unwinding: bool, detail: Option<String>) {
        let mut st = self.locked();
        st.statuses[me] = Status::Finished;
        let mut had_joiner = false;
        for s in &mut st.statuses {
            if *s == Status::BlockedOnJoin(me) {
                *s = Status::Runnable;
                had_joiner = true;
            }
        }
        if st.poisoned {
            self.cv.notify_all();
            return;
        }
        if unwinding && !had_joiner {
            let why = detail.unwrap_or_else(|| "a model thread panicked".to_string());
            self.poison(&mut st, why);
            return;
        }
        if !self.pick_next(&mut st, Some(me)) {
            // Nothing runnable. If every other thread has finished the
            // execution is simply over (the model closure is about to
            // observe that); otherwise the remaining threads are parked
            // forever — a deadlock.
            if st.statuses.iter().any(|s| !matches!(s, Status::Finished)) {
                let why = self.describe_deadlock(&st);
                self.poison(&mut st, why);
            }
        }
    }

    /// Called by `model` when the closure returns: every spawned thread
    /// must have been joined.
    pub fn check_quiescent(&self) -> Result<(), String> {
        let mut st = self.locked();
        let stray: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, s)| !matches!(s, Status::Finished))
            .map(|(i, _)| i)
            .collect();
        if stray.is_empty() {
            return Ok(());
        }
        let why = format!("model closure returned with running threads {stray:?}; join them");
        self.poison(&mut st, why.clone());
        Err(why)
    }

    /// Poisons the execution from the outside (model-closure panic) so
    /// parked threads unwind instead of leaking.
    pub fn teardown(&self, why: String) {
        let mut st = self.locked();
        if !st.poisoned {
            self.poison(&mut st, why);
        }
    }

    /// The completed trace and failure note of this execution.
    pub fn outcome(&self) -> (Vec<(usize, usize)>, Option<String>) {
        let st = self.locked();
        (st.trace.clone(), st.failure.clone())
    }

    fn describe_deadlock(&self, st: &SchedState) -> String {
        let parked: Vec<String> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(
                    s,
                    Status::BlockedOnMutex(_)
                        | Status::BlockedOnJoin(_)
                        | Status::BlockedOnCondvar(_)
                )
            })
            .map(|(i, s)| format!("thread {i} {s:?}"))
            .collect();
        format!(
            "deadlock: no runnable thread ({}); schedule so far: {:?}",
            parked.join(", "),
            st.trace.iter().map(|&(c, _)| c).collect::<Vec<_>>()
        )
    }
}
