//! A minimal exhaustive-interleaving model checker — an offline,
//! dependency-free stand-in for the `loom` crate, built for the engine's
//! concurrency kernels (see `p3c-mapreduce`'s `kernel` module).
//!
//! [`model`] runs a closure repeatedly, exploring **every** schedule of
//! the model threads it spawns via depth-first search with replay:
//! exactly one thread runs at a time, the scheduler inserts a decision
//! point before every visible operation (atomic access, mutex acquire,
//! spawn, join), and each execution's decision trace is backtracked to
//! produce the next unexplored schedule. Deadlocks (no runnable thread)
//! and assertion failures abort the search and report the failing
//! schedule.
//!
//! Scope, honestly stated:
//!
//! * Exploration is **sequentially consistent** — `Ordering` arguments
//!   are accepted but not modelled, so this checker proves interleaving
//!   properties (RMW atomicity, mutual exclusion, exactly-once hand-off),
//!   not weak-memory reordering properties.
//! * Model closures must be deterministic given the schedule (no I/O,
//!   wall-clock or ambient randomness), or replay diverges.
//! * Every spawned thread must be joined before the closure returns.
//!
//! # Example
//!
//! ```
//! use p3c_loom::{model, sync::atomic::{AtomicUsize, Ordering}, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&counter);
//!             thread::spawn(move || c.fetch_add(1, Ordering::Relaxed))
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join_unwrap();
//!     }
//!     // Holds under every interleaving:
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! ```
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

use std::panic::resume_unwind;

/// Default backstop on explored executions; override with the
/// `P3C_LOOM_MAX_EXECUTIONS` environment variable.
const DEFAULT_MAX_EXECUTIONS: usize = 2_000_000;

/// Checks `f` under every schedule of its model threads. Panics on the
/// first failing execution (assertion failure, deadlock, or leaked
/// thread), reporting the failing schedule. Returns the number of
/// executions explored.
pub fn model<F: Fn()>(f: F) -> usize {
    let max_executions = std::env::var("P3C_LOOM_MAX_EXECUTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_EXECUTIONS);
    let mut schedule: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= max_executions,
            "p3c-loom: exceeded {max_executions} executions without exhausting \
             the schedule space; shrink the model or raise P3C_LOOM_MAX_EXECUTIONS"
        );
        let (trace, failure, outcome) = thread::run_one(&f, schedule.clone());
        if let Err(payload) = outcome {
            let choices: Vec<usize> = trace.iter().map(|&(c, _)| c).collect();
            eprintln!(
                "p3c-loom: failure on execution {executions}, schedule {choices:?}: {}",
                failure
                    .clone()
                    .unwrap_or_else(|| thread::payload_str(payload.as_ref()).to_string())
            );
            if thread::is_abort(payload.as_ref()) {
                // The marker panic carries no context; the recorded
                // failure note (deadlock report, stray panic) does.
                panic!(
                    "{}",
                    failure.unwrap_or_else(|| "p3c-loom: execution aborted".to_string())
                );
            }
            resume_unwind(payload);
        }
        // Backtrack: bump the deepest decision that still has an
        // unexplored alternative, drop everything below it.
        let mut next = trace;
        loop {
            match next.last().copied() {
                None => return executions,
                Some((c, n)) if c + 1 < n => {
                    let last = next.len() - 1;
                    next[last].0 = c + 1;
                    break;
                }
                Some(_) => {
                    next.pop();
                }
            }
        }
        schedule = next.into_iter().map(|(c, _)| c).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Mutex;
    use super::{model, thread};
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn rmw_is_atomic_under_all_schedules() {
        let executions = model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join_unwrap();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
        assert!(
            executions > 1,
            "expected multiple schedules, got {executions}"
        );
    }

    #[test]
    fn explores_both_lock_orders() {
        let observed: StdMutex<BTreeSet<Vec<usize>>> = StdMutex::new(BTreeSet::new());
        model(|| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (1..=2)
                .map(|id| {
                    let log = Arc::clone(&log);
                    thread::spawn(move || log.lock().push(id))
                })
                .collect();
            for h in handles {
                h.join_unwrap();
            }
            let order = log.lock().clone();
            observed.lock().unwrap().insert(order);
        });
        let seen = observed.into_inner().unwrap();
        assert!(seen.contains(&vec![1, 2]), "missing order 1,2: {seen:?}");
        assert!(seen.contains(&vec![2, 1]), "missing order 2,1: {seen:?}");
    }

    #[test]
    fn load_store_race_shows_both_outcomes() {
        let outcomes: StdMutex<BTreeSet<usize>> = StdMutex::new(BTreeSet::new());
        model(|| {
            let cell = Arc::new(AtomicUsize::new(0));
            let writer = {
                let c = Arc::clone(&cell);
                thread::spawn(move || c.store(7, Ordering::Relaxed))
            };
            let seen = cell.load(Ordering::Relaxed);
            writer.join_unwrap();
            outcomes.lock().unwrap().insert(seen);
        });
        let seen = outcomes.into_inner().unwrap();
        assert_eq!(seen, BTreeSet::from([0, 7]), "expected both race outcomes");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn abba_deadlock_is_detected() {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join_unwrap();
        });
    }

    #[test]
    fn condvar_handoff_wakes_waiter_in_every_schedule() {
        use super::sync::Condvar;
        let executions = model(|| {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let s = Arc::clone(&slot);
                thread::spawn(move || {
                    let (m, cv) = &*s;
                    *m.lock() = true;
                    cv.notify_all();
                })
            };
            let (m, cv) = &*slot;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            drop(g);
            setter.join_unwrap();
        });
        assert!(
            executions > 1,
            "expected multiple schedules, got {executions}"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn condvar_wait_without_notify_deadlocks() {
        model(|| {
            let m = Mutex::new(());
            let cv = super::sync::Condvar::new();
            let mut g = m.lock();
            cv.wait(&mut g);
        });
    }

    #[test]
    #[should_panic(expected = "join them")]
    fn leaked_thread_is_reported() {
        model(|| {
            let _ = thread::spawn(|| ());
            // Returning without joining is a model bug.
        });
    }
}
