//! Model-checked stand-ins for `std::sync` / `parking_lot` primitives.
//!
//! API mirrors what the engine kernels use: `Mutex::lock` returns the
//! guard directly (parking_lot style, no poison result), atomics expose
//! the usual `load`/`store`/RMW surface. Every operation passes through a
//! scheduler decision point, so [`crate::model`] explores all
//! interleavings of these operations.
//!
//! The exploration is *sequentially consistent*: `Ordering` arguments are
//! accepted for source compatibility but all accesses are executed
//! SeqCst. Properties proven here are interleaving properties (atomicity
//! of read-modify-writes, mutual exclusion, ordering of lock hand-offs) —
//! not weak-memory reordering properties.

use crate::sched::with_context;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

pub mod atomic {
    //! Model-checked atomic integers and booleans.

    pub use std::sync::atomic::Ordering;

    use super::switch_point;
    use std::sync::atomic::Ordering as O;

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// A new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// Model-checked load (explored as SeqCst).
                pub fn load(&self, _order: O) -> $prim {
                    switch_point();
                    self.inner.load(O::SeqCst)
                }

                /// Model-checked store (explored as SeqCst).
                pub fn store(&self, v: $prim, _order: O) {
                    switch_point();
                    self.inner.store(v, O::SeqCst)
                }

                /// Model-checked swap (explored as SeqCst).
                pub fn swap(&self, v: $prim, _order: O) -> $prim {
                    switch_point();
                    self.inner.swap(v, O::SeqCst)
                }

                /// Model-checked compare-exchange (explored as SeqCst).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: O,
                    _failure: O,
                ) -> Result<$prim, $prim> {
                    switch_point();
                    self.inner.compare_exchange(current, new, O::SeqCst, O::SeqCst)
                }

                /// Consumes the atomic, returning the value (no decision
                /// point: requires exclusive ownership).
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    shim_atomic!(
        /// Model-checked `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    shim_atomic!(
        /// Model-checked `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    shim_atomic!(
        /// Model-checked `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );

    macro_rules! shim_fetch_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Model-checked fetch-add (explored as SeqCst).
                pub fn fetch_add(&self, v: $prim, _order: O) -> $prim {
                    switch_point();
                    self.inner.fetch_add(v, O::SeqCst)
                }

                /// Model-checked fetch-sub (explored as SeqCst).
                pub fn fetch_sub(&self, v: $prim, _order: O) -> $prim {
                    switch_point();
                    self.inner.fetch_sub(v, O::SeqCst)
                }
            }
        };
    }

    shim_fetch_arith!(AtomicUsize, usize);
    shim_fetch_arith!(AtomicU64, u64);
}

/// Decision point before a visible operation of the current thread.
fn switch_point() {
    with_context(|reg, me| reg.switch(me));
}

/// A model-checked mutex with a parking_lot-flavoured API.
///
/// Must be created inside [`crate::model`]: construction registers the
/// lock with the current execution's scheduler.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    cell: UnsafeCell<T>,
}

// Safety: the scheduler runs exactly one model thread at a time and the
// ownership table gates access to the cell, so aliased mutable access
// cannot occur.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new model-checked mutex guarding `value`.
    pub fn new(value: T) -> Self {
        let id = with_context(|reg, _| reg.register_mutex());
        Self {
            id,
            cell: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, parking this thread while it is contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_context(|reg, me| reg.mutex_lock(me, self.id));
        MutexGuard { mutex: self }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

/// RAII guard of a [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: guard existence implies ownership in the scheduler's
        // mutex table; only one guard per mutex can exist at a time.
        unsafe { &*self.mutex.cell.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as in `Deref`.
        unsafe { &mut *self.mutex.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        with_context(|reg, me| reg.mutex_unlock(me, self.mutex.id));
    }
}

/// A model-checked condition variable with a parking_lot-flavoured API.
///
/// `wait` atomically releases the guard's mutex and parks until a notify,
/// then reacquires the mutex before returning — the guard stays valid
/// across the call. As with real condvars a notify issued while no thread
/// is parked is lost, so callers must loop on a predicate.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// A new model-checked condvar, registered with the current
    /// execution's scheduler.
    pub fn new() -> Self {
        let id = with_context(|reg, _| reg.register_condvar());
        Self { id }
    }

    /// Releases the guard's mutex and parks until notified; the mutex is
    /// reacquired (contending if necessary) before this returns.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let mutex_id = guard.mutex.id;
        with_context(|reg, me| reg.condvar_wait(me, self.id, mutex_id));
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        with_context(|reg, _| reg.condvar_notify_all(self.id));
    }

    /// Wakes one parked waiter (the lowest-numbered, deterministically).
    pub fn notify_one(&self) {
        with_context(|reg, _| reg.condvar_notify_one(self.id));
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

// Re-exported so shimmed code can keep `Ordering` imports stable.
pub use std::sync::atomic::Ordering;
