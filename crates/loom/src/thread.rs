//! Model-checked thread spawning and joining.

use crate::sched::{clear_context, set_context, with_context, Registry, ABORT_MSG};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

type ThreadResult<T> = std::thread::Result<T>;

/// Handle to a model thread; joining yields the closure's return value.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<ThreadResult<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread running `f`. Must be called inside
/// [`crate::model`]; the new thread only runs when the scheduler hands it
/// the token. Every spawned thread must be joined before the model
/// closure returns.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (registry, tid) = with_context(|reg, me| (Arc::clone(reg), reg.register_thread(me)));
    let result: Arc<StdMutex<Option<ThreadResult<T>>>> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let reg = Arc::clone(&registry);
    let os = std::thread::Builder::new()
        .name(format!("p3c-loom-{tid}"))
        .spawn(move || {
            set_context(Arc::clone(&reg), tid);
            // If the execution was torn down before this thread ever ran,
            // the first park panics with ABORT_MSG; swallow it quietly.
            if catch_unwind(AssertUnwindSafe(|| reg.wait_first_schedule(tid))).is_err() {
                clear_context();
                return;
            }
            let out = catch_unwind(AssertUnwindSafe(f));
            let unwinding = out.is_err();
            let detail = match &out {
                Err(p) => Some(format!("model thread {tid} panicked: {}", payload_str(p))),
                Ok(_) => None,
            };
            match slot.lock() {
                Ok(mut s) => *s = Some(out),
                Err(e) => *e.into_inner() = Some(out),
            }
            reg.thread_finished(tid, unwinding, detail);
            clear_context();
        })
        .expect("spawn model thread");
    JoinHandle {
        tid,
        result,
        os: Some(os),
    }
}

impl<T> JoinHandle<T> {
    /// Parks until the thread finishes, then returns its result. A panic
    /// in the thread's closure is resumed here, as with `std` join.
    pub fn join(mut self) -> ThreadResult<T> {
        with_context(|reg, me| reg.join_wait(me, self.tid));
        if let Some(os) = self.os.take() {
            // The model thread has already run `thread_finished`; the OS
            // thread is exiting, so this join is prompt and safe.
            let _ = os.join();
        }
        let out = match self.result.lock() {
            Ok(mut s) => s.take(),
            Err(e) => e.into_inner().take(),
        };
        out.expect("finished model thread left no result")
    }

    /// Like [`JoinHandle::join`] but unwraps, resuming the thread's panic.
    pub fn join_unwrap(self) -> T {
        match self.join() {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }
}

pub(crate) fn payload_str(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// True when the payload is the scheduler's teardown marker rather than a
/// genuine model failure.
pub(crate) fn is_abort(p: &(dyn std::any::Any + Send)) -> bool {
    payload_str(p) == ABORT_MSG
}

/// One execution's result: the recorded `(thread, choice)` trace, the
/// scheduler's failure note, and the model closure's outcome.
pub(crate) type ExecutionResult = (
    Vec<(usize, usize)>,
    Option<String>,
    Result<(), Box<dyn std::any::Any + Send>>,
);

/// Runs one execution of `f` under the given replay schedule.
pub(crate) fn run_one<F: Fn()>(f: &F, schedule: Vec<usize>) -> ExecutionResult {
    let registry = Registry::new(schedule);
    set_context(Arc::clone(&registry), 0);
    let mut outcome: Result<(), Box<dyn std::any::Any + Send>> = catch_unwind(AssertUnwindSafe(f));
    if outcome.is_ok() {
        if let Err(why) = registry.check_quiescent() {
            outcome = Err(Box::new(why) as Box<dyn std::any::Any + Send>);
        }
    } else {
        // Wake parked threads so they unwind instead of leaking.
        registry.teardown("model closure panicked".to_string());
    }
    clear_context();
    let (trace, failure) = registry.outcome();
    (trace, failure, outcome)
}
