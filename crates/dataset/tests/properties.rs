//! Property tests for the dataset container and persistence formats.

use p3c_dataset::{persist, AttrInterval, Dataset};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..8, 0usize..40).prop_flat_map(|(d, n)| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, d), n)
            .prop_map(Dataset::from_rows)
    })
}

proptest! {
    #[test]
    fn normalization_maps_into_unit_cube(ds in arb_dataset()) {
        let (norm, _) = ds.normalize();
        prop_assert!(norm.is_normalized());
        prop_assert_eq!(norm.len(), ds.len());
        prop_assert_eq!(norm.dim(), ds.dim());
    }

    #[test]
    fn normalization_roundtrips_values(ds in arb_dataset()) {
        prop_assume!(!ds.is_empty());
        let (norm, map) = ds.normalize();
        for i in 0..ds.len() {
            for j in 0..ds.dim() {
                let back = map.denormalize(j, norm.get(i, j));
                // Constant attributes collapse to their single value.
                prop_assert!((back - ds.get(i, j)).abs() < 1e-9 * ds.get(i, j).abs().max(1.0));
            }
        }
    }

    #[test]
    fn text_roundtrip(ds in arb_dataset()) {
        let text = persist::to_text(&ds);
        let back = persist::from_text(&text).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        prop_assert_eq!(back.dim(), ds.dim());
        for (a, b) in back.as_slice().iter().zip(ds.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn binary_roundtrip_is_exact(ds in arb_dataset()) {
        let bytes = persist::to_bytes(&ds);
        let back = persist::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn subset_preserves_rows(ds in arb_dataset(), ids in prop::collection::vec(0usize..40, 0..10)) {
        prop_assume!(!ds.is_empty());
        let valid: Vec<usize> = ids.into_iter().filter(|&i| i < ds.len()).collect();
        let sub = ds.subset(&valid);
        prop_assert_eq!(sub.len(), valid.len());
        for (pos, &i) in valid.iter().enumerate() {
            prop_assert_eq!(sub.row(pos), ds.row(i));
        }
    }

    #[test]
    fn interval_union_contains_both(
        attr in 0usize..5,
        a in (0.0f64..0.5, 0.5f64..1.0),
        b in (0.0f64..0.5, 0.5f64..1.0),
    ) {
        let ia = AttrInterval::new(attr, a.0, a.1);
        let ib = AttrInterval::new(attr, b.0, b.1);
        let u = ia.union(&ib);
        prop_assert!(u.lo <= ia.lo && u.hi >= ia.hi);
        prop_assert!(u.lo <= ib.lo && u.hi >= ib.hi);
        prop_assert!(u.width() >= ia.width().max(ib.width()));
    }
}
