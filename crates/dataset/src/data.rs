//! The row-major dataset container.

use serde::{Deserialize, Serialize};

/// An `n × d` dataset stored row-major in one contiguous allocation.
///
/// The P3C model assumes every attribute normalized to `[0,1]`
/// (paper Section 3.1); [`Dataset::normalize`] produces that form and a
/// [`NormalizationMap`] for mapping results back to original coordinates.
///
/// ```
/// use p3c_dataset::Dataset;
///
/// let ds = Dataset::from_rows(vec![vec![0.0, 10.0], vec![4.0, 30.0]]);
/// let (normalized, map) = ds.normalize();
/// assert!(normalized.is_normalized());
/// assert_eq!(normalized.row(1), &[1.0, 1.0]);
/// assert_eq!(map.denormalize(1, 0.5), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * d`.
    pub fn new(n: usize, d: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * d, "row-major buffer has wrong length");
        Self { n, d, data }
    }

    /// Builds a dataset from row vectors (all of equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let d = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * d);
        for row in &rows {
            assert_eq!(row.len(), d, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { n, d, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Value of point `i` on attribute `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.d + j]
    }

    /// Iterator over row slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.d.max(1)).take(self.n)
    }

    /// Materialized row references — the MapReduce engine's input format
    /// (`&[&[f64]]` chunks into splits without copying point data).
    pub fn row_refs(&self) -> Vec<&[f64]> {
        self.rows().collect()
    }

    /// Raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Strided iterator over attribute `j`'s values, in row order — the
    /// column-scan access path of the histogram kernels.
    pub fn column(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.d, "attribute {j} out of range (d = {})", self.d);
        self.data[j..].iter().step_by(self.d).copied()
    }

    /// Consumes the dataset, returning `(n, d, row-major buffer)`.
    pub fn into_raw(self) -> (usize, usize, Vec<f64>) {
        (self.n, self.d, self.data)
    }

    /// Per-attribute minima and maxima; `None` on an empty dataset.
    pub fn attribute_ranges(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.n == 0 || self.d == 0 {
            return None;
        }
        let mut mins = vec![f64::INFINITY; self.d];
        let mut maxs = vec![f64::NEG_INFINITY; self.d];
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Some((mins, maxs))
    }

    /// Whether all values already lie in `[0,1]` (the P3C precondition).
    pub fn is_normalized(&self) -> bool {
        self.data.iter().all(|&v| (0.0..=1.0).contains(&v))
    }

    /// Min–max normalizes every attribute to `[0,1]`, returning the
    /// normalized dataset and the map back to original coordinates.
    /// Constant attributes map to `0.5`.
    pub fn normalize(&self) -> (Dataset, NormalizationMap) {
        let (mins, maxs) = match self.attribute_ranges() {
            Some(r) => r,
            None => {
                return (
                    self.clone(),
                    NormalizationMap {
                        mins: vec![],
                        scales: vec![],
                    },
                )
            }
        };
        let scales: Vec<f64> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 0.0 })
            .collect();
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                if scales[j] > 0.0 {
                    data.push((v - mins[j]) / scales[j]);
                } else {
                    data.push(0.5);
                }
            }
        }
        (
            Dataset::new(self.n, self.d, data),
            NormalizationMap { mins, scales },
        )
    }

    /// Extracts the sub-dataset of the given point ids (in the given order).
    pub fn subset(&self, ids: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(ids.len() * self.d);
        for &i in ids {
            data.extend_from_slice(self.row(i));
        }
        Dataset::new(ids.len(), self.d, data)
    }
}

/// The affine map produced by [`Dataset::normalize`]; lets interval bounds
/// found in normalized space be reported in original coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizationMap {
    mins: Vec<f64>,
    scales: Vec<f64>,
}

impl NormalizationMap {
    /// Maps a normalized value on attribute `j` back to the original scale.
    pub fn denormalize(&self, j: usize, v: f64) -> f64 {
        self.mins[j] + v * self.scales[j]
    }

    /// Maps an original value on attribute `j` into `[0,1]`.
    pub fn normalize(&self, j: usize, v: f64) -> f64 {
        if self.scales[j] > 0.0 {
            (v - self.mins[j]) / self.scales[j]
        } else {
            0.5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 40.0]])
    }

    #[test]
    fn shape_and_access() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.row(1), &[5.0, 20.0]);
        assert_eq!(ds.get(2, 1), 40.0);
        assert_eq!(ds.rows().count(), 3);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let (norm, map) = sample().normalize();
        assert!(norm.is_normalized());
        assert_eq!(norm.row(0), &[0.0, 0.0]);
        assert_eq!(norm.row(2), &[1.0, 1.0]);
        assert!((norm.get(1, 0) - 0.5).abs() < 1e-15);
        assert!((norm.get(1, 1) - 1.0 / 3.0).abs() < 1e-15);
        // Roundtrip through the map.
        assert!((map.denormalize(1, norm.get(1, 1)) - 20.0).abs() < 1e-12);
        assert!((map.normalize(0, 5.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn constant_attribute_maps_to_half() {
        let ds = Dataset::from_rows(vec![vec![7.0, 1.0], vec![7.0, 2.0]]);
        let (norm, map) = ds.normalize();
        assert_eq!(norm.get(0, 0), 0.5);
        assert_eq!(norm.get(1, 0), 0.5);
        assert_eq!(map.normalize(0, 7.0), 0.5);
    }

    #[test]
    fn subset_selects_rows_in_order() {
        let ds = sample();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.row(0), ds.row(2));
        assert_eq!(sub.row(1), ds.row(0));
    }

    #[test]
    fn attribute_ranges() {
        let (mins, maxs) = sample().attribute_ranges().unwrap();
        assert_eq!(mins, vec![0.0, 10.0]);
        assert_eq!(maxs, vec![10.0, 40.0]);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_rows(vec![]);
        assert!(ds.is_empty());
        assert!(ds.attribute_ranges().is_none());
        let (norm, _) = ds.normalize();
        assert!(norm.is_empty());
    }

    #[test]
    fn row_refs_chunk_into_splits() {
        let ds = sample();
        let refs = ds.row_refs();
        assert_eq!(refs.len(), 3);
        let splits: Vec<&[&[f64]]> = refs.chunks(2).collect();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0][1], ds.row(1));
    }

    #[test]
    #[should_panic(expected = "row-major buffer")]
    fn wrong_buffer_length_panics() {
        let _ = Dataset::new(2, 2, vec![0.0; 3]);
    }
}
