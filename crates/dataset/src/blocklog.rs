//! Append/retract metadata log for incrementally maintained datasets.
//!
//! The incremental clustering service stores a dataset not as one
//! mutable buffer but as an ordered log of immutable row blocks: an
//! `append` adds a block at the end, a `retract` removes a block by id.
//! The cumulative dataset at any instant is the concatenation of the
//! live blocks in log order — the exact dataset a from-scratch batch
//! run would see, which is what the service's byte-identity contract is
//! stated against. [`BlockLog`] tracks only metadata (ids, row counts,
//! dimensionality); the row payloads live in a `DatasetStore` so a
//! memory-budgeted cache can spill them independently.

use serde::{Deserialize, Serialize};

/// One live block of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The block's id, assigned at append time and never reused.
    pub id: u64,
    /// Rows in the block.
    pub rows: usize,
}

/// Ordered metadata log of the live blocks of one dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockLog {
    entries: Vec<BlockEntry>,
    next_id: u64,
    dim: Option<usize>,
}

impl BlockLog {
    /// Empty log; the dimensionality is fixed by the first non-empty
    /// append.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from persisted parts (snapshot restore).
    ///
    /// # Errors
    /// Rejects parts that could not have come from a real log: ids not
    /// strictly increasing, ids at or beyond `next_id`, or a missing
    /// width while non-empty blocks are live.
    pub fn from_parts(
        entries: Vec<BlockEntry>,
        next_id: u64,
        dim: Option<usize>,
    ) -> Result<Self, String> {
        for pair in entries.windows(2) {
            if pair[0].id >= pair[1].id {
                return Err(format!(
                    "block ids not strictly increasing: {} then {}",
                    pair[0].id, pair[1].id
                ));
            }
        }
        if let Some(last) = entries.last() {
            if last.id >= next_id {
                return Err(format!(
                    "block id {} is at or beyond next_id {next_id}",
                    last.id
                ));
            }
        }
        if dim.is_none() && entries.iter().any(|e| e.rows > 0) {
            return Err("log has non-empty blocks but no width".to_string());
        }
        Ok(Self {
            entries,
            next_id,
            dim,
        })
    }

    /// The id the next appended block would receive.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Records an appended block of `rows × dim` and returns its id.
    ///
    /// # Errors
    /// Rejects a block whose width disagrees with the log's established
    /// dimensionality. Zero-row blocks are only width-neutral when they
    /// carry no width at all (`dim == 0`); a zero-row block with a
    /// concrete mismatched width is rejected like any other, so a bad
    /// producer can't smuggle a wrong-width entry into the log.
    pub fn append(&mut self, rows: usize, dim: usize) -> Result<u64, String> {
        match self.dim {
            Some(d) if d != dim && (rows > 0 || dim != 0) => {
                return Err(format!(
                    "block width {dim} does not match dataset width {d}"
                ));
            }
            None if rows > 0 => self.dim = Some(dim),
            _ => {}
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(BlockEntry { id, rows });
        Ok(id)
    }

    /// Removes block `id` from the log, returning its row count;
    /// `None` if no live block has that id.
    pub fn retract(&mut self, id: u64) -> Option<usize> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(pos).rows)
    }

    /// Total rows across live blocks — the cumulative `n`.
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows).sum()
    }

    /// The dataset's dimensionality, once established.
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.entries.len()
    }

    /// The live blocks in log (row-id) order.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Whether block `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Global row offset of block `id` in the cumulative dataset —
    /// the sum of the row counts of the blocks before it in log order.
    pub fn offset_of(&self, id: u64) -> Option<usize> {
        let mut offset = 0;
        for e in &self.entries {
            if e.id == id {
                return Some(offset);
            }
            offset += e.rows;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotonic_ids_and_tracks_rows() {
        let mut log = BlockLog::new();
        let a = log.append(10, 3).unwrap();
        let b = log.append(5, 3).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.total_rows(), 15);
        assert_eq!(log.dim(), Some(3));
        assert_eq!(log.num_blocks(), 2);
        assert_eq!(log.offset_of(b), Some(10));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut log = BlockLog::new();
        log.append(10, 3).unwrap();
        assert!(log.append(4, 2).is_err());
        // Empty blocks are width-neutral.
        assert!(log.append(0, 0).is_ok());
    }

    #[test]
    fn zero_row_block_with_wrong_width_rejected() {
        // Regression: the width check used to be skipped whenever
        // `rows == 0`, silently logging a mismatched-width entry.
        let mut log = BlockLog::new();
        log.append(10, 3).unwrap();
        assert!(log.append(0, 2).is_err());
        assert!(log.append(0, 3).is_ok(), "matching width still fine");
        assert_eq!(log.num_blocks(), 2);
    }

    #[test]
    fn from_parts_validates_and_roundtrips() {
        let mut log = BlockLog::new();
        log.append(10, 3).unwrap();
        let b = log.append(5, 3).unwrap();
        log.retract(b);
        log.append(2, 3).unwrap();
        let rebuilt =
            BlockLog::from_parts(log.entries().to_vec(), log.next_id(), log.dim()).unwrap();
        assert_eq!(rebuilt.entries(), log.entries());
        assert_eq!(rebuilt.next_id(), log.next_id());
        assert_eq!(rebuilt.dim(), log.dim());
        assert_eq!(
            rebuilt.clone().append(1, 3).unwrap(),
            3,
            "id numbering continues after restore"
        );

        let e = |id, rows| BlockEntry { id, rows };
        assert!(BlockLog::from_parts(vec![e(1, 2), e(1, 2)], 5, Some(3)).is_err());
        assert!(BlockLog::from_parts(vec![e(2, 2), e(1, 2)], 5, Some(3)).is_err());
        assert!(BlockLog::from_parts(vec![e(4, 2)], 4, Some(3)).is_err());
        assert!(BlockLog::from_parts(vec![e(0, 2)], 1, None).is_err());
    }

    #[test]
    fn retract_removes_but_never_reuses_ids() {
        let mut log = BlockLog::new();
        let a = log.append(10, 2).unwrap();
        let b = log.append(6, 2).unwrap();
        assert_eq!(log.retract(a), Some(10));
        assert_eq!(log.retract(a), None);
        assert!(log.contains(b));
        assert_eq!(log.total_rows(), 6);
        assert_eq!(log.offset_of(b), Some(0));
        let c = log.append(1, 2).unwrap();
        assert_eq!(c, 2, "retracted ids are not recycled");
    }

    #[test]
    fn empty_log() {
        let log = BlockLog::new();
        assert_eq!(log.total_rows(), 0);
        assert_eq!(log.dim(), None);
        assert!(!log.contains(0));
        assert_eq!(log.offset_of(0), None);
    }
}
