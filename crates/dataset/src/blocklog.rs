//! Append/retract metadata log for incrementally maintained datasets.
//!
//! The incremental clustering service stores a dataset not as one
//! mutable buffer but as an ordered log of immutable row blocks: an
//! `append` adds a block at the end, a `retract` removes a block by id.
//! The cumulative dataset at any instant is the concatenation of the
//! live blocks in log order — the exact dataset a from-scratch batch
//! run would see, which is what the service's byte-identity contract is
//! stated against. [`BlockLog`] tracks only metadata (ids, row counts,
//! dimensionality); the row payloads live in a `DatasetStore` so a
//! memory-budgeted cache can spill them independently.

use serde::{Deserialize, Serialize};

/// One live block of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The block's id, assigned at append time and never reused.
    pub id: u64,
    /// Rows in the block.
    pub rows: usize,
}

/// Ordered metadata log of the live blocks of one dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockLog {
    entries: Vec<BlockEntry>,
    next_id: u64,
    dim: Option<usize>,
}

impl BlockLog {
    /// Empty log; the dimensionality is fixed by the first non-empty
    /// append.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an appended block of `rows × dim` and returns its id.
    ///
    /// # Errors
    /// Rejects a block whose width disagrees with the log's established
    /// dimensionality.
    pub fn append(&mut self, rows: usize, dim: usize) -> Result<u64, String> {
        match self.dim {
            Some(d) if rows > 0 && d != dim => {
                return Err(format!(
                    "block width {dim} does not match dataset width {d}"
                ));
            }
            None if rows > 0 => self.dim = Some(dim),
            _ => {}
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(BlockEntry { id, rows });
        Ok(id)
    }

    /// Removes block `id` from the log, returning its row count;
    /// `None` if no live block has that id.
    pub fn retract(&mut self, id: u64) -> Option<usize> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(pos).rows)
    }

    /// Total rows across live blocks — the cumulative `n`.
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows).sum()
    }

    /// The dataset's dimensionality, once established.
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.entries.len()
    }

    /// The live blocks in log (row-id) order.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }

    /// Whether block `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Global row offset of block `id` in the cumulative dataset —
    /// the sum of the row counts of the blocks before it in log order.
    pub fn offset_of(&self, id: u64) -> Option<usize> {
        let mut offset = 0;
        for e in &self.entries {
            if e.id == id {
                return Some(offset);
            }
            offset += e.rows;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotonic_ids_and_tracks_rows() {
        let mut log = BlockLog::new();
        let a = log.append(10, 3).unwrap();
        let b = log.append(5, 3).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.total_rows(), 15);
        assert_eq!(log.dim(), Some(3));
        assert_eq!(log.num_blocks(), 2);
        assert_eq!(log.offset_of(b), Some(10));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut log = BlockLog::new();
        log.append(10, 3).unwrap();
        assert!(log.append(4, 2).is_err());
        // Empty blocks are width-neutral.
        assert!(log.append(0, 0).is_ok());
    }

    #[test]
    fn retract_removes_but_never_reuses_ids() {
        let mut log = BlockLog::new();
        let a = log.append(10, 2).unwrap();
        let b = log.append(6, 2).unwrap();
        assert_eq!(log.retract(a), Some(10));
        assert_eq!(log.retract(a), None);
        assert!(log.contains(b));
        assert_eq!(log.total_rows(), 6);
        assert_eq!(log.offset_of(b), Some(0));
        let c = log.append(1, 2).unwrap();
        assert_eq!(c, 2, "retracted ids are not recycled");
    }

    #[test]
    fn empty_log() {
        let log = BlockLog::new();
        assert_eq!(log.total_rows(), 0);
        assert_eq!(log.dim(), None);
        assert!(!log.contains(0));
        assert_eq!(log.offset_of(0), None);
    }
}
