//! Dataset abstraction and the shared projected-clustering data model.
//!
//! * [`Dataset`] — a row-major `n × d` matrix of `f64` attributes,
//!   normalized to `[0,1]` as the paper assumes (Section 3.1), with
//!   row-slice access suited to the MapReduce engine's split inputs.
//! * [`RowBlock`] / [`Columns`] — the columnar data plane's carrier: the
//!   same flat buffer with free row views and materializable contiguous
//!   columns, seeded once per pipeline into the MapReduce `DatasetStore`.
//! * [`colseg`] — the segmented columnar spill codec (per-attribute
//!   column segments, XOR-delta + byte-shuffle + zero-RLE) and the
//!   [`ColumnSet`] projection view it decodes into, letting
//!   partially-relevant jobs reload only the columns they scan.
//! * [`AttrInterval`], [`ProjectedCluster`], [`Clustering`] — the result
//!   model shared by the algorithms (`p3c-core`), the baseline
//!   (`p3c-bow`), the generator's ground truth (`p3c-datagen`) and the
//!   quality measures (`p3c-eval`).
//! * [`persist`] — plain-text and binary round-tripping for staging data
//!   into the block store and onto disk.
//! * [`blocklog`] — the append/retract metadata log the incremental
//!   service keeps per dataset (block ids, row counts, log order).
//! * [`journal`] — the write-ahead journal and snapshot files backing
//!   durable tenants (checksummed records, atomic snapshot replace,
//!   torn-tail-tolerant recovery reads).
#![warn(missing_docs)]

pub mod blocklog;
pub mod colseg;
pub mod data;
pub mod journal;
pub mod model;
pub mod persist;
pub mod rowblock;

pub use blocklog::{BlockEntry, BlockLog};
pub use colseg::ColumnSet;
pub use data::{Dataset, NormalizationMap};
pub use model::{AttrInterval, Clustering, ProjectedCluster};
pub use rowblock::{Columns, RowBlock};
