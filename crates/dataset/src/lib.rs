//! Dataset abstraction and the shared projected-clustering data model.
//!
//! * [`Dataset`] — a row-major `n × d` matrix of `f64` attributes,
//!   normalized to `[0,1]` as the paper assumes (Section 3.1), with
//!   row-slice access suited to the MapReduce engine's split inputs.
//! * [`AttrInterval`], [`ProjectedCluster`], [`Clustering`] — the result
//!   model shared by the algorithms (`p3c-core`), the baseline
//!   (`p3c-bow`), the generator's ground truth (`p3c-datagen`) and the
//!   quality measures (`p3c-eval`).
//! * [`persist`] — plain-text and binary round-tripping for staging data
//!   into the block store and onto disk.

pub mod data;
pub mod model;
pub mod persist;
pub mod rowblock;

pub use data::{Dataset, NormalizationMap};
pub use model::{AttrInterval, Clustering, ProjectedCluster};
pub use rowblock::{Columns, RowBlock};
