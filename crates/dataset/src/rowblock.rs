//! The columnar data plane's carrier type.
//!
//! A [`RowBlock`] is an `n × d` block of `f64` attributes in one
//! contiguous row-major allocation — the unit the whole stack moves
//! around: produced by `p3c-datagen`, seeded once into the MapReduce
//! `DatasetStore`, scanned by the histogram and EM kernels. Row views
//! are free (`&data[i*d..(i+1)*d]`), per-attribute scans are strided
//! iterators, and [`RowBlock::columns`] materializes a column-major
//! transpose when a kernel wants truly contiguous per-attribute slices.

use serde::{Deserialize, Serialize};

use crate::Dataset;

/// A contiguous row-major `n × d` block of attribute values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowBlock {
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl RowBlock {
    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * d`.
    pub fn new(n: usize, d: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * d, "row-major buffer has wrong length");
        Self { n, d, data }
    }

    /// Builds a block from row vectors (all of equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let d = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * d);
        for row in rows {
            assert_eq!(row.len(), d, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { n, d, data }
    }

    /// Concatenates blocks (all of equal dimensionality) into one
    /// contiguous block, rows in argument order — how the incremental
    /// service materializes a cumulative dataset from its append log.
    /// Empty blocks are dimension-neutral; an empty input list yields
    /// the `0 × 0` block.
    pub fn concat(blocks: &[&RowBlock]) -> RowBlock {
        let d = blocks.iter().find(|b| b.n > 0).map_or(0, |b| b.d);
        let n: usize = blocks.iter().map(|b| b.n).sum();
        let mut data = Vec::with_capacity(n * d);
        for block in blocks {
            if block.n > 0 {
                assert_eq!(block.d, d, "concatenating blocks of different widths");
                data.extend_from_slice(&block.data);
            }
        }
        RowBlock::new(n, d, data)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Row `i` as a slice view into the block.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Iterator over all row views.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.d.max(1)).take(self.n)
    }

    /// Row views collected into a vector — the bridge to the MapReduce
    /// engine's `&[&[f64]]` split inputs.
    pub fn row_refs(&self) -> Vec<&[f64]> {
        self.rows().collect()
    }

    /// The whole block as a flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Strided iterator over attribute `j`'s values, in row order.
    /// Empty on an empty block.
    pub fn column(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.d, "attribute {j} out of range (d = {})", self.d);
        self.data
            .get(j..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.d)
            .copied()
    }

    /// Materializes the column-major transpose, giving each attribute a
    /// contiguous slice (see [`Columns::col`]).
    pub fn columns(&self) -> Columns {
        let (n, d) = (self.n, self.d);
        let mut data = vec![0.0; n * d];
        for (i, row) in self.rows().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                data[j * n + i] = v;
            }
        }
        Columns { n, d, data }
    }

    /// Consumes the block, returning the flat row-major buffer.
    pub fn into_raw(self) -> (usize, usize, Vec<f64>) {
        (self.n, self.d, self.data)
    }
}

impl From<Dataset> for RowBlock {
    fn from(ds: Dataset) -> Self {
        let (n, d, data) = ds.into_raw();
        Self { n, d, data }
    }
}

impl From<RowBlock> for Dataset {
    fn from(block: RowBlock) -> Self {
        Dataset::new(block.n, block.d, block.data)
    }
}

/// A column-major `d × n` transpose of a [`RowBlock`]: attribute `j` is
/// the contiguous slice `data[j*n..(j+1)*n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Columns {
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl Columns {
    /// Number of rows in the originating block.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the originating block had no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Attribute `j`'s values as one contiguous slice, in row order.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.n..(j + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_3x2() -> RowBlock {
        RowBlock::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn row_views() {
        let b = block_3x2();
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.row(1), &[3.0, 4.0]);
        assert_eq!(b.rows().count(), 3);
        assert_eq!(b.row_refs()[2], &[5.0, 6.0]);
    }

    #[test]
    fn column_iteration_matches_rows() {
        let b = block_3x2();
        let col0: Vec<f64> = b.column(0).collect();
        let col1: Vec<f64> = b.column(1).collect();
        assert_eq!(col0, vec![1.0, 3.0, 5.0]);
        assert_eq!(col1, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose_gives_contiguous_columns() {
        let b = block_3x2();
        let cols = b.columns();
        assert_eq!(cols.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(cols.col(1), &[2.0, 4.0, 6.0]);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.dim(), 2);
    }

    #[test]
    fn dataset_round_trip() {
        let ds = Dataset::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let block = RowBlock::from(ds.clone());
        assert_eq!(block.as_slice(), ds.as_slice());
        let back: Dataset = block.into();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_block() {
        let b = RowBlock::new(0, 0, vec![]);
        assert!(b.is_empty());
        assert_eq!(b.rows().count(), 0);
        assert!(b.columns().is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn length_mismatch_panics() {
        RowBlock::new(2, 2, vec![0.0; 3]);
    }
}
