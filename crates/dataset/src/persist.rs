//! Dataset persistence: a plain-text format and a compact binary format.
//!
//! The text format is one point per line, attributes space-separated, with
//! a `n d` header line — convenient for eyeballing small sets. The binary
//! format is a little-endian `u64 n`, `u64 d` header followed by `n·d`
//! `f64` values — the staging format for the block store.

use crate::data::Dataset;
use std::fmt::Write as _;

/// Errors when decoding persisted datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The text input had no `n d` header line.
    MissingHeader,
    /// The header line did not parse as two integers.
    BadHeader(String),
    /// A value token failed to parse as `f64`.
    BadValue {
        /// 1-based line of the bad token.
        line: usize,
        /// The token that failed to parse.
        token: String,
    },
    /// The input held a different number of values than the header claims.
    WrongCount {
        /// `n · d` per the header.
        expected: usize,
        /// Values actually present.
        got: usize,
    },
    /// The binary input ended before the header or values were complete.
    TooShort,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::MissingHeader => write!(f, "missing header line"),
            DecodeError::BadHeader(h) => write!(f, "unparsable header: {h:?}"),
            DecodeError::BadValue { line, token } => {
                write!(f, "unparsable value {token:?} on line {line}")
            }
            DecodeError::WrongCount { expected, got } => {
                write!(f, "expected {expected} values, found {got}")
            }
            DecodeError::TooShort => write!(f, "binary buffer shorter than its header claims"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a dataset as text (`n d` header + one row per line).
pub fn to_text(ds: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", ds.len(), ds.dim());
    for row in ds.rows() {
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

/// Decodes the text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<Dataset, DecodeError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(DecodeError::MissingHeader)?;
    let mut parts = header.split_whitespace();
    let parse_dim = |s: Option<&str>| -> Result<usize, DecodeError> {
        s.and_then(|t| t.parse().ok())
            .ok_or_else(|| DecodeError::BadHeader(header.to_string()))
    };
    let n = parse_dim(parts.next())?;
    let d = parse_dim(parts.next())?;
    let mut data = Vec::with_capacity(n * d);
    for (lineno, line) in lines {
        for token in line.split_whitespace() {
            let v: f64 = token.parse().map_err(|_| DecodeError::BadValue {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            data.push(v);
        }
    }
    if data.len() != n * d {
        return Err(DecodeError::WrongCount {
            expected: n * d,
            got: data.len(),
        });
    }
    Ok(Dataset::new(n, d, data))
}

/// Encodes a dataset as little-endian binary (`u64 n, u64 d, n·d f64`).
pub fn to_bytes(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ds.as_slice().len() * 8);
    out.extend_from_slice(&(ds.len() as u64).to_le_bytes());
    out.extend_from_slice(&(ds.dim() as u64).to_le_bytes());
    for v in ds.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes the binary format produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<Dataset, DecodeError> {
    if bytes.len() < 16 {
        return Err(DecodeError::TooShort);
    }
    let n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
    let d = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let need = 16 + n * d * 8;
    if bytes.len() < need {
        return Err(DecodeError::TooShort);
    }
    let mut data = Vec::with_capacity(n * d);
    for chunk in bytes[16..need].chunks_exact(8) {
        data.push(f64::from_le_bytes(chunk.try_into().unwrap()));
    }
    Ok(Dataset::new(n, d, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![0.25, 0.5], vec![0.75, 1.0], vec![0.0, 0.125]])
    }

    #[test]
    fn text_roundtrip() {
        let ds = sample();
        let text = to_text(&ds);
        let back = from_text(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn binary_roundtrip() {
        let ds = sample();
        let bytes = to_bytes(&ds);
        assert_eq!(bytes.len(), 16 + 6 * 8);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn text_errors() {
        assert_eq!(from_text("").unwrap_err(), DecodeError::MissingHeader);
        assert!(matches!(
            from_text("x y\n").unwrap_err(),
            DecodeError::BadHeader(_)
        ));
        assert!(matches!(
            from_text("1 2\n0.5 oops\n").unwrap_err(),
            DecodeError::BadValue { .. }
        ));
        assert!(matches!(
            from_text("2 2\n0.5 0.5\n").unwrap_err(),
            DecodeError::WrongCount {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn binary_errors() {
        assert_eq!(from_bytes(&[0u8; 8]).unwrap_err(), DecodeError::TooShort);
        let mut bytes = to_bytes(&sample());
        bytes.truncate(bytes.len() - 1);
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::TooShort);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::from_rows(vec![]);
        assert_eq!(from_text(&to_text(&ds)).unwrap(), ds);
        assert_eq!(from_bytes(&to_bytes(&ds)).unwrap(), ds);
    }
}
