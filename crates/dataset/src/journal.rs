//! Write-ahead journal and snapshot files for the incremental service.
//!
//! A durable tenant is persisted as one directory holding two files:
//!
//! * `journal.bin` — an append-only log of checksummed, length-prefixed
//!   records, one per mutation (`create`/`append`/`retract`/bin-rule
//!   step), written **before** the mutation is applied in memory. The
//!   frame format mirrors the distributed backend's wire protocol:
//!   `[u32 payload_len][u8 op][u64 seq][payload][u64 fnv1a]`, all
//!   little-endian, with the checksum taken over `op ‖ seq ‖ payload`.
//! * `snapshot.bin` — an atomically-replaced (`tmp` + `rename` + fsync)
//!   dump of the tenant's maintained statistics, stamped with the
//!   sequence number of the last journal record it covers. After a
//!   snapshot lands, the journal is truncated, so replay cost is
//!   bounded by the mutations since the last snapshot.
//!
//! Recovery reads the snapshot (if any), then replays the journal tail.
//! A torn final record — the expected artifact of a crash mid-`write` —
//! is detected by the length prefix or checksum and silently dropped,
//! along with everything after it; any *earlier* corruption is also cut
//! at that point, because a prefix of the journal is still a valid
//! history (the tenant merely loses its most recent mutations, exactly
//! as if the crash had happened a moment sooner). A corrupt *snapshot*
//! is a hard error: the journal records it covered were truncated, so
//! there is nothing left to replay from.
//!
//! The byte codec ([`put_u64`], [`ByteReader`], …) is deliberately the
//! same shape as `distrib/wire.rs`: little-endian integers, `f64` as raw
//! IEEE-754 bits, length-prefixed strings — exact round-trips so the
//! service's byte-identity contract survives a crash.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on a single record's payload (256 MiB). A longer length
/// prefix is treated as corruption, not an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 28;

/// Magic number opening a snapshot file (`b"P3CSNAP1"`).
pub const SNAPSHOT_MAGIC: u64 = u64::from_le_bytes(*b"P3CSNAP1");

/// File name of the journal within a tenant directory.
pub const JOURNAL_FILE: &str = "journal.bin";
/// File name of the snapshot within a tenant directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

// ----------------------------------------------------------- checksum ---

/// FNV-1a over a byte slice — same function the distributed backend
/// uses for shuffle partitions; pinned by tests, must never drift.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// --------------------------------------------------------- byte codec ---

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as 8 bytes so layouts agree across platforms.
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` as its raw IEEE-754 bits — exact round-trip.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u64(buf, v.len() as u64);
    buf.extend_from_slice(v);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

/// Bounded cursor over an encoded payload. Every read is
/// bounds-checked; errors are strings so callers can wrap them with
/// tenant context without an error-type dependency.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or errors if the buffer is short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes, {} remain",
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    /// Reads one `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `usize` that traveled as 8 bytes.
    pub fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("value {v} overflows usize"))
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(format!("bad bool tag {t}")),
        }
    }

    /// Reads a length-prefixed byte string; the prefix is checked
    /// against the bytes actually remaining before any allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(format!(
                "length prefix {n} exceeds remaining payload {}",
                self.remaining()
            ));
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| "invalid utf-8 string".to_string())
    }

    /// Errors unless the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing bytes after value", self.remaining()));
        }
        Ok(())
    }
}

// ------------------------------------------------------------ journal ---

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic per-tenant sequence number; survives truncation, so a
    /// snapshot's `covered_seq` totally orders snapshot vs. tail.
    pub seq: u64,
    /// Operation tag — opaque to this module, owned by the service.
    pub op: u8,
    /// Operation payload, encoded with the byte codec above.
    pub payload: Vec<u8>,
}

fn record_checksum(op: u8, seq: u64, payload: &[u8]) -> u64 {
    let mut head = Vec::with_capacity(9 + payload.len());
    head.push(op);
    put_u64(&mut head, seq);
    head.extend_from_slice(payload);
    fnv1a64(&head)
}

fn encode_record(op: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + 1 + 8 + payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    frame.push(op);
    put_u64(&mut frame, seq);
    frame.extend_from_slice(payload);
    put_u64(&mut frame, record_checksum(op, seq, payload));
    frame
}

/// Reads every intact record of a journal file.
///
/// Returns the records plus the byte length of the valid prefix; a torn
/// or corrupt tail (the expected artifact of a crash mid-append) is cut
/// at the first bad frame. A missing file is an empty journal.
///
/// # Errors
/// Only genuine I/O failures (permissions, hardware) error; corruption
/// never does — a valid prefix is still a valid history.
pub fn read_journal(path: &Path) -> io::Result<(Vec<JournalRecord>, u64)> {
    let buf = match fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.len() < 4 + 1 + 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_LEN || rest.len() < 4 + 1 + 8 + len + 8 {
            break;
        }
        let op = rest[4];
        let seq = u64::from_le_bytes(rest[5..13].try_into().unwrap());
        let payload = &rest[13..13 + len];
        let stored = u64::from_le_bytes(rest[13 + len..13 + len + 8].try_into().unwrap());
        if stored != record_checksum(op, seq, payload) {
            break;
        }
        records.push(JournalRecord {
            seq,
            op,
            payload: payload.to_vec(),
        });
        pos += 4 + 1 + 8 + len + 8;
    }
    Ok((records, pos as u64))
}

/// Appending side of a tenant's journal.
///
/// Every [`record`](JournalWriter::record) writes one framed record and
/// flushes it to the OS **and** the device (`sync_data`) before
/// returning — the write-ahead property the recovery contract rests on.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    next_seq: u64,
}

impl JournalWriter {
    /// Opens (creating if absent) the journal at `path` for appending,
    /// with sequence numbering starting at `next_seq`.
    pub fn create(path: &Path, next_seq: u64) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file, next_seq })
    }

    /// Reopens an existing journal after recovery: truncates the file
    /// to its `valid_len` intact prefix (chopping any torn tail) and
    /// resumes appending with sequence numbering from `next_seq`.
    pub fn open_end(path: &Path, valid_len: u64, next_seq: u64) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            // Truncation to the validated prefix is explicit, below.
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(Self { file, next_seq })
    }

    /// The sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record and syncs it to the device; returns the
    /// sequence number it was stamped with.
    pub fn record(&mut self, op: u8, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let frame = encode_record(op, seq, payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Empties the journal after a successful snapshot. Sequence
    /// numbering continues monotonically — it never restarts — so the
    /// snapshot's `covered_seq` stays comparable with later records.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()
    }
}

// ----------------------------------------------------------- snapshot ---

const SNAPSHOT_VERSION: u32 = 1;

/// Atomically replaces the snapshot at `path` with `state`, stamped as
/// covering every journal record with `seq <= covered_seq`.
///
/// The bytes go to a sibling `*.tmp` file first, are synced, and only
/// then renamed over the target — a crash at any point leaves either
/// the old snapshot or the new one, never a torn hybrid.
pub fn write_snapshot(path: &Path, covered_seq: u64, state: &[u8]) -> io::Result<()> {
    let mut body = Vec::with_capacity(8 + 4 + 8 + 8 + state.len() + 8);
    put_u64(&mut body, SNAPSHOT_MAGIC);
    put_u32(&mut body, SNAPSHOT_VERSION);
    put_u64(&mut body, covered_seq);
    put_bytes(&mut body, state);
    let mut check = Vec::with_capacity(8 + state.len());
    put_u64(&mut check, covered_seq);
    check.extend_from_slice(state);
    put_u64(&mut body, fnv1a64(&check));

    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; ignore platforms/filesystems that
        // refuse to open a directory for syncing.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads the snapshot at `path`; `None` if no snapshot was ever taken.
///
/// # Errors
/// A snapshot that exists but fails its magic, version, or checksum is
/// an `InvalidData` error — unlike a torn journal tail there is no
/// valid fallback, because the records it covered are gone.
pub fn read_snapshot(path: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    let buf = match fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt snapshot {}: {what}", path.display()),
        )
    };
    let mut r = ByteReader::new(&buf);
    let parse = (|| -> Result<(u64, Vec<u8>), String> {
        if r.u64()? != SNAPSHOT_MAGIC {
            return Err("bad magic".into());
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let covered_seq = r.u64()?;
        let state = r.bytes()?.to_vec();
        let stored = r.u64()?;
        r.finish()?;
        let mut check = Vec::with_capacity(8 + state.len());
        put_u64(&mut check, covered_seq);
        check.extend_from_slice(&state);
        if stored != fnv1a64(&check) {
            return Err("checksum mismatch".into());
        }
        Ok((covered_seq, state))
    })();
    parse.map(Some).map_err(|e| corrupt(&e))
}

// ---------------------------------------------------------- dir names ---

/// Escapes a tenant name into a filesystem-safe directory component.
///
/// ASCII alphanumerics, `_`, `-`, and non-leading `.` pass through;
/// every other byte (including `%` itself, so the map is injective)
/// becomes `%XX` uppercase hex. The empty name maps to `"%-"`, which no
/// non-empty name can produce (`-` is not a hex digit).
pub fn sanitize_component(name: &str) -> String {
    if name.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(name.len());
    for (i, b) in name.bytes().enumerate() {
        let plain = b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || (b == b'.' && i > 0);
        if plain {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// The directory holding one tenant's journal and snapshot.
pub fn tenant_dir(data_dir: &Path, name: &str) -> PathBuf {
    data_dir.join(sanitize_component(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p3c-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn byte_codec_roundtrips_exactly() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_usize(&mut buf, 42);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x7ff8_dead_beef_0001));
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, b"");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn byte_reader_rejects_truncation_and_hostile_prefixes() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // length prefix far beyond payload
        let mut r = ByteReader::new(&buf);
        assert!(r.bytes().is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(r.bool().is_err());
    }

    #[test]
    fn journal_roundtrip_and_seq_numbering() {
        let dir = tmpdir("roundtrip");
        let path = dir.join(JOURNAL_FILE);
        let mut w = JournalWriter::create(&path, 5).unwrap();
        assert_eq!(w.record(1, b"alpha").unwrap(), 5);
        assert_eq!(w.record(2, b"").unwrap(), 6);
        assert_eq!(w.record(3, &[0u8; 100]).unwrap(), 7);
        assert_eq!(w.next_seq(), 8);
        drop(w);
        let (records, valid) = read_journal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 5);
        assert_eq!(records[0].op, 1);
        assert_eq!(records[0].payload, b"alpha");
        assert_eq!(records[2].payload, vec![0u8; 100]);
        assert_eq!(valid, fs::metadata(&path).unwrap().len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let dir = tmpdir("missing");
        let (records, valid) = read_journal(&dir.join("nope.bin")).unwrap();
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_at_every_possible_boundary() {
        // Chop the file at randomized byte offsets: every truncation
        // must recover exactly the records whose frames fit whole.
        let dir = tmpdir("torn");
        let path = dir.join(JOURNAL_FILE);
        let mut w = JournalWriter::create(&path, 0).unwrap();
        let mut frame_ends = Vec::new();
        let mut total = 0u64;
        for i in 0..6u8 {
            let payload = vec![i; (i as usize) * 7 + 1];
            w.record(10 + i, &payload).unwrap();
            total += (4 + 1 + 8 + payload.len() + 8) as u64;
            frame_ends.push(total);
        }
        drop(w);
        let full = fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, total);
        let mut rng = SplitMix64(0xfeed_beef);
        for _ in 0..40 {
            let cut = (rng.next() % (total + 1)) as u64;
            let chopped = dir.join("chopped.bin");
            fs::write(&chopped, &full[..cut as usize]).unwrap();
            let (records, valid) = read_journal(&chopped).unwrap();
            let expect = frame_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(records.len(), expect, "cut at {cut}");
            assert_eq!(
                valid,
                frame_ends.get(expect.wrapping_sub(1)).copied().unwrap_or(0)
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_good_frame() {
        let dir = tmpdir("corrupt");
        let path = dir.join(JOURNAL_FILE);
        let mut w = JournalWriter::create(&path, 0).unwrap();
        w.record(1, b"good").unwrap();
        w.record(2, b"flipped").unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        let first = 4 + 1 + 8 + 4 + 8;
        bytes[first + 14] ^= 0x40; // flip one payload bit of record 2
        fs::write(&path, &bytes).unwrap();
        let (records, valid) = read_journal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"good");
        assert_eq!(valid, first as u64);
        // open_end chops the corrupt tail; the next append lands clean.
        let mut w = JournalWriter::open_end(&path, valid, 2).unwrap();
        w.record(3, b"after").unwrap();
        drop(w);
        let (records, _) = read_journal(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].seq, 2);
        assert_eq!(records[1].payload, b"after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_allocation() {
        let dir = tmpdir("oversized");
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_RECORD_LEN + 1) as u32);
        bytes.extend_from_slice(&[0u8; 64]);
        fs::write(&path, &bytes).unwrap();
        let (records, valid) = read_journal(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_but_keeps_seq_monotonic() {
        let dir = tmpdir("reset");
        let path = dir.join(JOURNAL_FILE);
        let mut w = JournalWriter::create(&path, 0).unwrap();
        w.record(1, b"a").unwrap();
        w.record(1, b"b").unwrap();
        w.reset().unwrap();
        assert_eq!(w.record(1, b"c").unwrap(), 2, "seq survives reset");
        drop(w);
        let (records, _) = read_journal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_roundtrip_and_atomic_replace() {
        let dir = tmpdir("snap");
        let path = dir.join(SNAPSHOT_FILE);
        assert_eq!(read_snapshot(&path).unwrap(), None);
        write_snapshot(&path, 41, b"state-v1").unwrap();
        write_snapshot(&path, 97, b"state-v2").unwrap();
        let (covered, state) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(covered, 97);
        assert_eq!(state, b"state-v2");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = tmpdir("snapbad");
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, 7, b"precious").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 1; // inside the state/checksum region
        fs::write(&path, &bytes).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation is equally fatal.
        let good = {
            write_snapshot(&path, 7, b"precious").unwrap();
            fs::read(&path).unwrap()
        };
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(read_snapshot(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitize_is_injective_on_tricky_names() {
        assert_eq!(sanitize_component("plain-name_1.v2"), "plain-name_1.v2");
        assert_eq!(sanitize_component("a/b"), "a%2Fb");
        assert_eq!(sanitize_component("a%2Fb"), "a%252Fb");
        assert_eq!(sanitize_component(".."), "%2E.");
        assert_eq!(sanitize_component("."), "%2E");
        assert_eq!(sanitize_component(""), "%-");
        let names = ["a/b", "a%2Fb", "..", ".", "", "a b", "a\nb", "ü"];
        let mut seen = std::collections::BTreeSet::new();
        for n in names {
            assert!(seen.insert(sanitize_component(n)), "collision on {n:?}");
        }
    }
}
