//! The projected-clustering result model shared across the workspace.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A closed interval `[lo, hi]` on one attribute — the building block of
/// the paper's output signatures (Definition 1 / interval tightening step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttrInterval {
    /// The attribute (dimension index) the interval constrains.
    pub attr: usize,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl AttrInterval {
    /// Creates `[lo, hi]` on `attr`; panics if the bounds are out of order.
    pub fn new(attr: usize, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Self { attr, lo, hi }
    }

    /// `width(I) = iu − il` (Definition 1).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a point's coordinate on this attribute falls inside.
    #[inline]
    pub fn contains(&self, point: &[f64]) -> bool {
        let v = point[self.attr];
        self.lo <= v && v <= self.hi
    }

    /// Whether two intervals on the same attribute overlap.
    pub fn overlaps(&self, other: &AttrInterval) -> bool {
        self.attr == other.attr && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Smallest interval covering both (same attribute only).
    pub fn union(&self, other: &AttrInterval) -> AttrInterval {
        assert_eq!(
            self.attr, other.attr,
            "union of intervals on different attributes"
        );
        AttrInterval::new(self.attr, self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

/// A projected cluster `C = (X, Y)`: a set of points and their relevant
/// attributes (Definition 3), plus the tightened output intervals on those
/// attributes (the paper's output signature `S^output`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProjectedCluster {
    /// Member point ids (sorted, unique).
    pub points: Vec<usize>,
    /// Relevant attributes `Y`.
    pub attributes: BTreeSet<usize>,
    /// Output intervals, one per relevant attribute, sorted by attribute.
    pub intervals: Vec<AttrInterval>,
}

impl ProjectedCluster {
    /// Builds a cluster, normalizing the point list to sorted/unique order
    /// and the interval list to attribute order.
    pub fn new(
        mut points: Vec<usize>,
        attributes: BTreeSet<usize>,
        mut intervals: Vec<AttrInterval>,
    ) -> Self {
        points.sort_unstable();
        points.dedup();
        intervals.sort_by_key(|iv| iv.attr);
        Self {
            points,
            attributes,
            intervals,
        }
    }

    /// Number of member points.
    pub fn size(&self) -> usize {
        self.points.len()
    }

    /// Number of (point, attribute) subobjects — the unit of the E4SC /
    /// RNIA / CE measures.
    pub fn num_subobjects(&self) -> usize {
        self.points.len() * self.attributes.len()
    }

    /// Whether the point id is a member (binary search on the sorted list).
    pub fn contains_point(&self, id: usize) -> bool {
        self.points.binary_search(&id).is_ok()
    }

    /// Whether a point's coordinates fall inside all output intervals.
    pub fn covers(&self, point: &[f64]) -> bool {
        self.intervals.iter().all(|iv| iv.contains(point))
    }

    /// The interval on a given attribute, if it is relevant.
    pub fn interval_on(&self, attr: usize) -> Option<&AttrInterval> {
        self.intervals.iter().find(|iv| iv.attr == attr)
    }
}

/// A complete clustering: clusters plus explicit outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Clustering {
    /// The projected clusters.
    pub clusters: Vec<ProjectedCluster>,
    /// Points assigned to no cluster.
    pub outliers: Vec<usize>,
}

impl Clustering {
    /// Creates a clustering, sorting and deduplicating the outlier list.
    pub fn new(clusters: Vec<ProjectedCluster>, mut outliers: Vec<usize>) -> Self {
        outliers.sort_unstable();
        outliers.dedup();
        Self { clusters, outliers }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total subobjects over all clusters.
    pub fn total_subobjects(&self) -> usize {
        self.clusters
            .iter()
            .map(ProjectedCluster::num_subobjects)
            .sum()
    }

    /// The union of all attributes relevant to at least one cluster —
    /// the paper's `A_rel` (Equation 3).
    pub fn relevant_attributes(&self) -> BTreeSet<usize> {
        self.clusters
            .iter()
            .flat_map(|c| c.attributes.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(attr: usize, lo: f64, hi: f64) -> AttrInterval {
        AttrInterval::new(attr, lo, hi)
    }

    #[test]
    fn interval_basics() {
        let iv = interval(2, 0.2, 0.5);
        assert!((iv.width() - 0.3).abs() < 1e-15);
        assert!(iv.contains(&[9.0, 9.0, 0.35]));
        assert!(iv.contains(&[9.0, 9.0, 0.2])); // closed bounds
        assert!(!iv.contains(&[9.0, 9.0, 0.55]));
    }

    #[test]
    fn interval_overlap_and_union() {
        let a = interval(0, 0.1, 0.4);
        let b = interval(0, 0.3, 0.6);
        let c = interval(0, 0.5, 0.9);
        let d = interval(1, 0.1, 0.4);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d)); // different attribute
        let u = a.union(&b);
        assert_eq!((u.lo, u.hi), (0.1, 0.6));
    }

    #[test]
    fn cluster_normalizes_points_and_intervals() {
        let c = ProjectedCluster::new(
            vec![5, 1, 3, 1],
            BTreeSet::from([1, 0]),
            vec![interval(1, 0.0, 1.0), interval(0, 0.2, 0.3)],
        );
        assert_eq!(c.points, vec![1, 3, 5]);
        assert_eq!(c.intervals[0].attr, 0);
        assert!(c.contains_point(3));
        assert!(!c.contains_point(2));
        assert_eq!(c.num_subobjects(), 6);
    }

    #[test]
    fn cluster_covers_requires_all_intervals() {
        let c = ProjectedCluster::new(
            vec![0],
            BTreeSet::from([0, 1]),
            vec![interval(0, 0.0, 0.5), interval(1, 0.5, 1.0)],
        );
        assert!(c.covers(&[0.3, 0.8]));
        assert!(!c.covers(&[0.3, 0.3]));
        assert_eq!(c.interval_on(1).unwrap().lo, 0.5);
        assert!(c.interval_on(2).is_none());
    }

    #[test]
    fn clustering_relevant_attributes_union() {
        let c1 = ProjectedCluster::new(vec![0], BTreeSet::from([0, 2]), vec![]);
        let c2 = ProjectedCluster::new(vec![1], BTreeSet::from([2, 4]), vec![]);
        let cl = Clustering::new(vec![c1, c2], vec![9, 7, 9]);
        assert_eq!(cl.relevant_attributes(), BTreeSet::from([0, 2, 4]));
        assert_eq!(cl.outliers, vec![7, 9]);
        assert_eq!(cl.num_clusters(), 2);
        assert_eq!(cl.total_subobjects(), 4);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_panics() {
        let _ = interval(0, 0.7, 0.2);
    }
}
