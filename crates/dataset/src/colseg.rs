//! Segmented columnar spill codec: per-attribute column segments with
//! XOR-delta + byte-shuffle + zero-RLE encoding.
//!
//! This is the on-disk form the MapReduce `DatasetStore` uses when it
//! spills a [`RowBlock`] to the block store. Instead of one opaque
//! whole-buffer file, a spilled block becomes a tiny *header* (`n`, `d`)
//! plus `d` independent *column segments*, so a partially-relevant job —
//! the histogram scan reads a few attributes, RSSC proving touches only a
//! candidate's subspace — can reload exactly the columns it scans and
//! skip the rest (DESIGN.md §9).
//!
//! The encoding is deliberately dependency-free and **bit-exact**: every
//! `f64` is treated as its IEEE-754 bit pattern, so NaN payloads and
//! signed infinities round-trip unchanged and a full reload reassembles
//! the original buffer byte-for-byte — the invariant the DAG pipelines'
//! byte-identity tests rest on.
//!
//! Per column, the encoder
//! 1. XOR-deltas consecutive bit patterns (similar neighbours → deltas
//!    with many zero bytes; constant columns become all-zero deltas),
//! 2. byte-shuffles the deltas into 8 little-endian byte planes (zeros
//!    cluster per plane: sign/exponent planes of `[0,1]`-normalized data
//!    are almost entirely zero),
//! 3. run-length-encodes the zeros of each plane, leaving other bytes as
//!    literal runs.
//!
//! The format is pinned by a byte-snapshot test so it stays build-stable.

use std::sync::Arc;

use crate::RowBlock;

/// Current version byte of the segment format. Bumped on any change to
/// the encoding; [`decode_header`] rejects other versions.
pub const SEGMENT_FORMAT_VERSION: u8 = 1;

/// Magic prefix of a segment header file.
const MAGIC: &[u8; 4] = b"P3CS";

/// Zero runs shorter than this are cheaper inside a literal run than as
/// a separate `(token, varint)` pair.
const MIN_ZERO_RUN: usize = 3;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], at: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*at];
        *at += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        assert!(shift < 64, "corrupt segment: varint overflow");
    }
    v
}

/// Encodes the header of a segmented spill: magic, format version, and
/// the `n × d` shape the column segments reassemble into.
pub fn encode_header(n: usize, d: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(MAGIC);
    out.push(SEGMENT_FORMAT_VERSION);
    push_varint(&mut out, n as u64);
    push_varint(&mut out, d as u64);
    out
}

/// Decodes a header written by [`encode_header`], returning `(n, d)`.
///
/// # Panics
/// Panics on a bad magic prefix or an unsupported format version —
/// spilled bytes are process-internal, so corruption is a logic error.
pub fn decode_header(bytes: &[u8]) -> (usize, usize) {
    assert!(
        bytes.len() >= 5 && &bytes[..4] == MAGIC,
        "corrupt segment header: bad magic"
    );
    assert_eq!(
        bytes[4], SEGMENT_FORMAT_VERSION,
        "unsupported segment format version"
    );
    let mut at = 5;
    let n = read_varint(bytes, &mut at) as usize;
    let d = read_varint(bytes, &mut at) as usize;
    (n, d)
}

fn encode_plane(plane: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < plane.len() {
        if plane[i] == 0 {
            let mut j = i;
            while j < plane.len() && plane[j] == 0 {
                j += 1;
            }
            if j - i >= MIN_ZERO_RUN || j == plane.len() {
                out.push(0x00);
                push_varint(out, (j - i) as u64);
                i = j;
                continue;
            }
        }
        // Literal run: everything up to the next zero run worth a token.
        let start = i;
        while i < plane.len() {
            if plane[i] == 0 {
                let mut j = i;
                while j < plane.len() && plane[j] == 0 {
                    j += 1;
                }
                if j - i >= MIN_ZERO_RUN || j == plane.len() {
                    break;
                }
                i = j; // short zero run: absorb into the literal
            } else {
                i += 1;
            }
        }
        out.push(0x01);
        push_varint(out, (i - start) as u64);
        out.extend_from_slice(&plane[start..i]);
    }
}

fn decode_plane(bytes: &[u8], at: &mut usize, n: usize, out: &mut Vec<u8>) {
    let start = out.len();
    while out.len() - start < n {
        let token = bytes[*at];
        *at += 1;
        let len = read_varint(bytes, at) as usize;
        match token {
            0x00 => out.resize(out.len() + len, 0),
            0x01 => {
                out.extend_from_slice(&bytes[*at..*at + len]);
                *at += len;
            }
            t => panic!("corrupt column segment: unknown token {t:#x}"),
        }
    }
    assert_eq!(
        out.len() - start,
        n,
        "corrupt column segment: run overshoots the column length"
    );
}

/// Encodes one attribute column as a standalone segment.
///
/// Layout: `varint(n)`, then 8 zero-RLE'd byte planes of the XOR-delta'd
/// IEEE-754 bit patterns (least-significant byte plane first). The
/// segment carries its own length, so it decodes without the header.
pub fn encode_column(values: &[f64]) -> Vec<u8> {
    let n = values.len();
    let mut deltas = Vec::with_capacity(n);
    let mut prev = 0u64;
    for &v in values {
        let bits = v.to_bits();
        deltas.push(bits ^ prev);
        prev = bits;
    }
    let mut out = Vec::with_capacity(16 + n);
    push_varint(&mut out, n as u64);
    let mut plane = Vec::with_capacity(n);
    for p in 0..8 {
        plane.clear();
        plane.extend(deltas.iter().map(|&delta| (delta >> (8 * p)) as u8));
        encode_plane(&plane, &mut out);
    }
    out
}

/// Decodes a segment written by [`encode_column`], reproducing the
/// original values bit-exactly (including NaN payloads and infinities).
///
/// # Panics
/// Panics on corrupt input (see [`decode_header`] for the rationale).
pub fn decode_column(bytes: &[u8]) -> Vec<f64> {
    let mut at = 0;
    let n = read_varint(bytes, &mut at) as usize;
    let mut planes = Vec::with_capacity(8 * n);
    for _ in 0..8 {
        decode_plane(bytes, &mut at, n, &mut planes);
    }
    let mut values = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let mut delta = 0u64;
        for (p, chunk) in planes.chunks_exact(n).enumerate() {
            delta |= u64::from(chunk[i]) << (8 * p);
        }
        prev ^= delta;
        values.push(f64::from_bits(prev));
    }
    values
}

/// A projected, column-oriented view of a [`RowBlock`]: the subset of
/// attribute columns a partially-relevant job asked for, each as one
/// contiguous slice in row order.
///
/// Produced either by projecting an in-memory block
/// ([`ColumnSet::from_block`]) or by decoding only the requested
/// segments of a spilled one (`DatasetStore::get_columns`); both paths
/// yield bit-identical values, so consumers cannot tell which served
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSet {
    n: usize,
    d: usize,
    cols: Vec<(usize, Arc<Vec<f64>>)>,
}

impl ColumnSet {
    /// Builds a view over the given `(attribute index, column)` pairs of
    /// an `n × d` block. Columns are kept sorted by attribute index.
    ///
    /// # Panics
    /// Panics if an attribute index repeats or is `≥ d`, or if a column's
    /// length is not `n`.
    pub fn new(n: usize, d: usize, mut cols: Vec<(usize, Arc<Vec<f64>>)>) -> Self {
        cols.sort_by_key(|&(j, _)| j);
        for w in cols.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate attribute {}", w[0].0);
        }
        for (j, col) in &cols {
            assert!(*j < d, "attribute {j} out of range (d = {d})");
            assert_eq!(col.len(), n, "column {j} has wrong length");
        }
        Self { n, d, cols }
    }

    /// Projects `attrs` out of an in-memory block — the cache-hit
    /// counterpart of decoding spilled segments.
    pub fn from_block(block: &RowBlock, attrs: &[usize]) -> Self {
        let cols = attrs
            .iter()
            .map(|&j| (j, Arc::new(block.column(j).collect::<Vec<f64>>())))
            .collect();
        Self::new(block.len(), block.dim(), cols)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the view holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the *originating* block (not the projection).
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of projected columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The projected attribute indices, ascending.
    pub fn attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.cols.iter().map(|&(j, _)| j)
    }

    /// Attribute `j`'s values as a contiguous slice in row order; `None`
    /// if `j` was not part of the projection.
    pub fn col(&self, j: usize) -> Option<&[f64]> {
        self.cols
            .binary_search_by_key(&j, |&(attr, _)| attr)
            .ok()
            .map(|idx| self.cols[idx].1.as_slice())
    }

    /// Transposes the projection into a row-major `n × width` buffer
    /// (columns in ascending attribute order) — the bridge back to the
    /// MapReduce engine's row-slice split inputs.
    pub fn projected_rows(&self) -> Vec<f64> {
        let w = self.cols.len();
        let mut out = vec![0.0; self.n * w];
        for (k, (_, col)) in self.cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                out[i * w + k] = v;
            }
        }
        out
    }
}

/// [`encode_header`] for a block — the shape half of the segmented form.
pub fn block_header(block: &RowBlock) -> Vec<u8> {
    encode_header(block.len(), block.dim())
}

/// Encodes attribute `j` of a block as a standalone column segment.
pub fn encode_block_column(block: &RowBlock, j: usize) -> Vec<u8> {
    encode_column(&block.column(j).collect::<Vec<f64>>())
}

/// Reassembles a full [`RowBlock`] from its header and *all* `d` decoded
/// columns (in attribute order) — the spill-reload "upgrade" path. The
/// result is byte-identical to the block that was encoded.
///
/// # Panics
/// Panics if the column count or any column length disagrees with the
/// header.
pub fn assemble_block(header: &[u8], cols: Vec<Arc<Vec<f64>>>) -> RowBlock {
    let (n, d) = decode_header(header);
    assert_eq!(cols.len(), d, "segment count disagrees with header");
    let mut data = vec![0.0; n * d];
    for (j, col) in cols.iter().enumerate() {
        assert_eq!(col.len(), n, "segment {j} has wrong length");
        for (i, &v) in col.iter().enumerate() {
            data[i * d + j] = v;
        }
    }
    RowBlock::new(n, d, data)
}

/// Builds a [`ColumnSet`] from a header and a subset of decoded columns
/// — the projected spill-reload path.
pub fn assemble_column_set(header: &[u8], cols: Vec<(usize, Arc<Vec<f64>>)>) -> ColumnSet {
    let (n, d) = decode_header(header);
    ColumnSet::new(n, d, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[f64]) {
        let encoded = encode_column(values);
        let decoded = decode_column(&encoded);
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact roundtrip");
        }
    }

    #[test]
    fn empty_and_singleton_columns() {
        roundtrip(&[]);
        roundtrip(&[0.0]);
        roundtrip(&[-0.0]);
        roundtrip(&[42.125]);
    }

    #[test]
    fn constant_column_compresses_to_near_nothing() {
        let values = vec![0.623_f64; 10_000];
        let encoded = encode_column(&values);
        roundtrip(&values);
        // One raw bit pattern + zero runs: far below 8 bytes/value.
        assert!(
            encoded.len() < 64,
            "constant column encoded to {} bytes",
            encoded.len()
        );
    }

    #[test]
    fn special_values_roundtrip_exactly() {
        roundtrip(&[
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324, // subnormal
            0.0,
            -0.0,
        ]);
    }

    #[test]
    fn header_roundtrip() {
        for (n, d) in [(0, 0), (1, 1), (1_000_000, 200), (usize::MAX >> 8, 7)] {
            let h = encode_header(n, d);
            assert_eq!(decode_header(&h), (n, d));
        }
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn bad_magic_rejected() {
        decode_header(b"NOPE\x01\x00\x00");
    }

    #[test]
    #[should_panic(expected = "unsupported segment format version")]
    fn wrong_version_rejected() {
        decode_header(b"P3CS\x63\x00\x00");
    }

    #[test]
    fn column_set_projection_matches_block() {
        let block = RowBlock::new(4, 3, (0..12).map(f64::from).collect());
        let set = ColumnSet::from_block(&block, &[2, 0]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.dim(), 3);
        assert_eq!(set.width(), 2);
        assert_eq!(set.attrs().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(set.col(0).unwrap(), &[0.0, 3.0, 6.0, 9.0]);
        assert_eq!(set.col(2).unwrap(), &[2.0, 5.0, 8.0, 11.0]);
        assert!(set.col(1).is_none());
        // Projected row-major transpose keeps ascending attribute order.
        assert_eq!(
            set.projected_rows(),
            vec![0.0, 2.0, 3.0, 5.0, 6.0, 8.0, 9.0, 11.0]
        );
    }

    #[test]
    fn full_assembly_is_byte_identical() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let block = RowBlock::new(8, 5, data);
        let header = block_header(&block);
        let cols: Vec<Arc<Vec<f64>>> = (0..5)
            .map(|j| Arc::new(decode_column(&encode_block_column(&block, j))))
            .collect();
        let back = assemble_block(&header, cols);
        assert_eq!(back.as_slice(), block.as_slice());
        assert_eq!(back.len(), block.len());
        assert_eq!(back.dim(), block.dim());
    }

    #[test]
    fn projection_equals_full_decode() {
        let data: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).fract()).collect();
        let block = RowBlock::new(12, 5, data);
        let header = block_header(&block);
        let attrs = [1usize, 4];
        // Spilled-projection path: decode only the requested segments.
        let spilled = assemble_column_set(
            &header,
            attrs
                .iter()
                .map(|&j| (j, Arc::new(decode_column(&encode_block_column(&block, j)))))
                .collect(),
        );
        // In-memory path: project the live block.
        let live = ColumnSet::from_block(&block, &attrs);
        assert_eq!(spilled, live);
    }

    #[test]
    fn degenerate_shapes() {
        // n = 0: header-only reassembly.
        let empty = RowBlock::new(0, 3, vec![]);
        let cols: Vec<Arc<Vec<f64>>> = (0..3)
            .map(|j| Arc::new(decode_column(&encode_block_column(&empty, j))))
            .collect();
        assert_eq!(assemble_block(&block_header(&empty), cols), empty);
        // d = 1: a single segment carries the whole block.
        let thin = RowBlock::new(5, 1, vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        let back = assemble_block(
            &block_header(&thin),
            vec![Arc::new(decode_column(&encode_block_column(&thin, 0)))],
        );
        assert_eq!(back.as_slice(), thin.as_slice());
        // d = 0: no segments at all.
        let flat = RowBlock::new(4, 0, vec![]);
        assert_eq!(assemble_block(&block_header(&flat), vec![]), flat);
    }

    #[test]
    fn segment_bytes_are_pinned() {
        // Build-stability snapshot: if this test breaks, the on-disk
        // format changed — bump SEGMENT_FORMAT_VERSION.
        let encoded = encode_column(&[0.5, 0.5, 0.75, 0.0]);
        let expected: Vec<u8> = vec![
            0x04, // n = 4
            0x00, 0x04, // plane 0 (LSB): four zero bytes
            0x00, 0x04, // plane 1
            0x00, 0x04, // plane 2
            0x00, 0x04, // plane 3
            0x00, 0x04, // plane 4
            0x00, 0x04, // plane 5
            0x01, 0x04, 0xe0, 0x00, 0x08, 0xe8, // plane 6: one literal run
            0x01, 0x04, 0x3f, 0x00, 0x00, 0x3f, // plane 7 (MSB): short zero run absorbed
        ];
        assert_eq!(encoded, expected, "on-disk segment format drifted");
    }

    proptest! {
        #[test]
        fn prop_any_bit_patterns_roundtrip(bits in proptest::collection::vec(any::<u64>(), 0..200)) {
            let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            let decoded = decode_column(&encode_column(&values));
            let back: Vec<u64> = decoded.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, back);
        }

        #[test]
        fn prop_projection_equals_full_decode(
            n in 0usize..40,
            d in 1usize..8,
            seed in any::<u64>(),
        ) {
            // Cheap deterministic data from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let data: Vec<f64> = (0..n * d).map(|_| next()).collect();
            let block = RowBlock::new(n, d, data);
            let header = block_header(&block);
            let attrs: Vec<usize> = (0..d).filter(|j| j % 2 == 0).collect();
            let spilled = assemble_column_set(
                &header,
                attrs.iter()
                    .map(|&j| (j, Arc::new(decode_column(&encode_block_column(&block, j)))))
                    .collect(),
            );
            let live = ColumnSet::from_block(&block, &attrs);
            prop_assert_eq!(spilled, live);
        }
    }
}
