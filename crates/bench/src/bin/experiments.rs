//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [--scale F] [--dims D] [--seed S] [--smoke] [--out DIR]
//!             [EXPERIMENT...]
//!
//! EXPERIMENT ∈ {fig1, fig4, fig5, fig6, fig7, huge, colon, bins, measures,
//!               stragglers, dag, kernels, codec, backend, service,
//!               recovery, all}
//! ```
//!
//! Results are printed and written to `<out>/<id>.{json,md}`
//! (default `results/`).

use p3c_bench::{experiments, report::Report, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = Scale::default();
    let mut out = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale.factor = parse_or_die(args.next(), "--scale"),
            "--dims" => scale.dims = parse_or_die(args.next(), "--dims"),
            "--seed" => scale.seed = parse_or_die(args.next(), "--seed"),
            "--smoke" => scale = Scale::smoke(),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a value")))
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = [
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "huge",
            "colon",
            "bins",
            "measures",
            "stragglers",
            "dag",
            "kernels",
            "codec",
            "backend",
            "service",
            "recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!(
        "# P3C+-MR experiment suite — scale {:.2}, {} dims, seed {}",
        scale.factor, scale.dims, scale.seed
    );
    for name in &selected {
        let start = std::time::Instant::now();
        eprintln!("## running {name} …");
        let report: Report = match name.as_str() {
            "fig1" => experiments::fig1(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig5" => experiments::fig5(&scale),
            "fig6" => experiments::fig6(&scale),
            "fig7" => experiments::fig7(&scale),
            "huge" => experiments::huge(&scale),
            "colon" => experiments::colon(&scale),
            "bins" => experiments::bins(&scale),
            "measures" => experiments::measures(&scale),
            "stragglers" => experiments::stragglers(&scale),
            "dag" => experiments::dag(&scale),
            "kernels" => experiments::kernels(&scale),
            "codec" => experiments::codec(&scale),
            "backend" => experiments::backend(&scale),
            "service" => experiments::service(&scale),
            "recovery" => experiments::recovery(&scale),
            other => die(&format!("unknown experiment {other}")),
        };
        println!("{}", report.to_markdown());
        if let Err(e) = report.write_to(&out) {
            eprintln!("warning: could not write report files: {e}");
        }
        eprintln!("## {name} done in {:.1}s", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn parse_or_die<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    print_help();
    std::process::exit(2);
}

fn print_help() {
    eprintln!(
        "usage: experiments [--scale F] [--dims D] [--seed S] [--smoke] [--out DIR] [EXPERIMENT...]\n\
         experiments: fig1 fig4 fig5 fig6 fig7 huge colon bins measures stragglers dag kernels codec backend service recovery all (default: all)"
    );
}
